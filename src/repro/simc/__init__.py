"""repro.simc — compiled-simulation backend (FLASH-style specialization).

Translates RTL modules (:mod:`repro.simc.rtlgen`) and function schedules
(:mod:`repro.simc.schedgen`) into specialized Python source compiled once
per design, with bit-identical semantics to the interpreted simulators.
This package is the single place backend selection lives:

* :func:`resolve_backend` validates a ``--sim-backend`` value;
* :func:`make_rtl_sim` / :func:`make_process_exec` construct the chosen
  backend, automatically falling back to the interpreter (with an
  ``RPR-K101`` warning diagnostic) when a design cannot be specialized —
  unless the caller asked for ``strict`` compiled semantics, as the
  difftest lockstep legs do.

Generated source is content-addressed through the :mod:`repro.lab` cache
(:mod:`repro.simc.codecache`), so sweeps and campaigns pay codegen once
per distinct design.
"""

from __future__ import annotations

from repro.errors import SimCompileError
from repro.hls.cyclemodel import ProcessExec
from repro.rtl.sim import RtlSim

from .codecache import cached_source, clear_memo, compile_source, memo_stats
from .rtlgen import (
    BatchedRtlSim,
    CompiledRtlSim,
    batched_rtl_source,
    generate_batched_rtl_source,
    generate_rtl_source,
    rtl_sim_source,
)
from .schedgen import (
    BatchedProcessExec,
    CompiledProcessExec,
    batched_sched_source,
    generate_batched_sched_source,
    generate_sched_source,
    sched_exec_source,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BatchedProcessExec",
    "BatchedRtlSim",
    "CompiledProcessExec",
    "CompiledRtlSim",
    "batched_rtl_source",
    "batched_sched_source",
    "cached_source",
    "clear_memo",
    "compile_source",
    "fallback_diagnostic",
    "generate_batched_rtl_source",
    "generate_batched_sched_source",
    "generate_rtl_source",
    "generate_sched_source",
    "make_process_exec",
    "make_rtl_sim",
    "memo_stats",
    "resolve_backend",
    "rtl_sim_source",
    "sched_exec_source",
]

BACKENDS = ("interp", "compiled")
DEFAULT_BACKEND = "compiled"

#: diagnostic code for an automatic compiled->interp fallback
FALLBACK_CODE = "RPR-K101"


def resolve_backend(name: str | None) -> str:
    """Normalize a ``--sim-backend`` value; ``None`` means the default."""
    if name is None or name == "":
        return DEFAULT_BACKEND
    if name not in BACKENDS:
        raise SimCompileError(
            f"unknown sim backend {name!r}; expected one of "
            f"{'/'.join(BACKENDS)}", code="RPR-K001")
    return name


def fallback_diagnostic(what: str, exc: SimCompileError) -> dict:
    """Structured warning dict recording a compiled->interp fallback."""
    from repro.diagnostics.core import Diagnostic

    return Diagnostic(
        code=FALLBACK_CODE,
        severity="warning",
        message=f"{what}: compiled backend unavailable, using interpreter",
        notes=(f"[{exc.code}] {exc.message}",),
        hint="run with --sim-backend=interp to silence, or report the "
             "construct so the compiled backend can learn it",
    ).to_dict()


def make_rtl_sim(
    module,
    streams,
    ext_hdl=None,
    injector=None,
    *,
    backend: str | None = None,
    cache=None,
    strict: bool = False,
    diagnostics: list | None = None,
) -> RtlSim:
    """Construct an RTL simulator with the requested backend.

    ``diagnostics`` (when given) collects fallback warning dicts. With
    ``strict=True`` a compiled-backend failure raises instead of falling
    back — the difftest lockstep legs use this so an unsupported
    construct is loud, never silently re-tested through the interpreter.
    """
    backend = resolve_backend(backend)
    if backend == "interp":
        return RtlSim(module, streams, ext_hdl, injector)
    try:
        return CompiledRtlSim(module, streams, ext_hdl, injector, cache=cache)
    except SimCompileError as exc:
        if strict:
            raise
        if diagnostics is not None:
            diagnostics.append(
                fallback_diagnostic(f"module {module.name}", exc))
        return RtlSim(module, streams, ext_hdl, injector)


def make_process_exec(
    fsched,
    streams,
    taps=None,
    ext_funcs=None,
    name=None,
    *,
    backend: str | None = None,
    cache=None,
    strict: bool = False,
    diagnostics: list | None = None,
) -> ProcessExec:
    """Construct a cycle-model executor with the requested backend.

    Same fallback contract as :func:`make_rtl_sim`. Pipelined regions
    compile too (per-stage ready/exec functions plus a specialized
    ``_tick_pipe`` replaying the interpreter's initiation/drain
    protocol); a pipeline the generator cannot specialize falls back
    like any other construct.
    """
    backend = resolve_backend(backend)
    if backend == "interp":
        return ProcessExec(fsched, streams, taps, ext_funcs, name)
    try:
        return CompiledProcessExec(fsched, streams, taps, ext_funcs, name,
                                   cache=cache)
    except SimCompileError as exc:
        if strict:
            raise
        if diagnostics is not None:
            diagnostics.append(
                fallback_diagnostic(f"process {name or fsched.func.name}",
                                    exc))
        return ProcessExec(fsched, streams, taps, ext_funcs, name)
