"""Content-addressed caching for generated simulator source.

Specializing a design to Python source is itself work (tree walks over
every state and schedule step), and sweeps/campaigns/difftest construct
thousands of simulators for a handful of distinct designs. Generated
source is therefore cached at two levels:

* an in-process memo keyed by the content fingerprint, so repeated
  constructions inside one process pay codegen once;
* the existing :class:`repro.lab.cache.SynthesisCache` (the process-wide
  handle configured by ``REPRO_LAB_CACHE``, or any handle the caller
  passes), so parallel sweep workers and warm reruns share one codegen
  across processes.

Compiled code objects are additionally memoized per source text, so the
common path from a warm construction to a running simulator is two dict
hits and one ``exec`` of an already-compiled code object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.idgen import stable_fingerprint

__all__ = ["MemoStats", "cached_source", "compile_source", "clear_memo",
           "memo_stats"]

#: bump to invalidate every cached generated source on a codegen change
CODEGEN_SCHEMA = 2

_SOURCE_MEMO: dict[str, str] = {}
_CODE_MEMO: dict[tuple[str, str], object] = {}


@dataclass
class MemoStats:
    """In-process memo counters — the observable the serve daemon's
    warm-process win rests on: across repeated jobs in one process the
    hit counts rise while the miss counts stay flat."""

    source_hits: int = 0
    source_misses: int = 0
    code_hits: int = 0
    code_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "source_hits": self.source_hits,
            "source_misses": self.source_misses,
            "code_hits": self.code_hits,
            "code_misses": self.code_misses,
        }

    def reset(self) -> None:
        self.source_hits = self.source_misses = 0
        self.code_hits = self.code_misses = 0


#: process-wide counters (reset alongside the memos by :func:`clear_memo`)
memo_stats = MemoStats()


def clear_memo() -> None:
    """Drop the in-process memos (tests exercise cold codegen with this)."""
    _SOURCE_MEMO.clear()
    _CODE_MEMO.clear()
    memo_stats.reset()


def _default_cache():
    from repro.lab.bench import session_cache

    return session_cache()


def cached_source(
    kind: str,
    key_parts: tuple,
    generate: Callable[[], str],
    cache=None,
) -> str:
    """Return generated source for ``key_parts``, memoized + disk-cached.

    ``kind`` namespaces the key (``rtl`` vs ``sched``); ``generate`` runs
    only on a full miss. ``cache=None`` uses the process-wide lab cache
    (disabled unless ``REPRO_LAB_CACHE`` is set), so call sites need no
    conditionals.
    """
    from repro import __version__

    fp = stable_fingerprint("simc", kind, CODEGEN_SCHEMA, __version__,
                            *key_parts)
    key = f"simc-{kind}-{fp:016x}"
    src = _SOURCE_MEMO.get(key)
    if src is not None:
        memo_stats.source_hits += 1
        return src
    memo_stats.source_misses += 1
    if cache is None:
        cache = _default_cache()
    if cache is not None and cache.enabled:
        obj = cache.get(key)
        if isinstance(obj, str):
            _SOURCE_MEMO[key] = obj
            return obj
    src = generate()
    _SOURCE_MEMO[key] = src
    if cache is not None and cache.enabled:
        cache.put(key, src)
    return src


def compile_source(source: str, filename: str):
    """``compile()`` with a per-source memo (bytecode is design-invariant)."""
    key = (filename, source)
    code = _CODE_MEMO.get(key)
    if code is None:
        memo_stats.code_misses += 1
        code = compile(source, filename, "exec")
        _CODE_MEMO[key] = code
    else:
        memo_stats.code_hits += 1
    return code
