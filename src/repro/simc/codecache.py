"""Content-addressed caching for generated simulator source.

Specializing a design to Python source is itself work (tree walks over
every state and schedule step), and sweeps/campaigns/difftest construct
thousands of simulators for a handful of distinct designs. Generated
source is therefore cached at two levels:

* an in-process memo keyed by the content fingerprint, so repeated
  constructions inside one process pay codegen once;
* the existing :class:`repro.lab.cache.SynthesisCache` (the process-wide
  handle configured by ``REPRO_LAB_CACHE``, or any handle the caller
  passes), so parallel sweep workers and warm reruns share one codegen
  across processes.

Compiled code objects are additionally memoized per source text, so the
common path from a warm construction to a running simulator is two dict
hits and one ``exec`` of an already-compiled code object.
"""

from __future__ import annotations

from typing import Callable

from repro.utils.idgen import stable_fingerprint

__all__ = ["cached_source", "compile_source", "clear_memo"]

#: bump to invalidate every cached generated source on a codegen change
CODEGEN_SCHEMA = 2

_SOURCE_MEMO: dict[str, str] = {}
_CODE_MEMO: dict[tuple[str, str], object] = {}


def clear_memo() -> None:
    """Drop the in-process memos (tests exercise cold codegen with this)."""
    _SOURCE_MEMO.clear()
    _CODE_MEMO.clear()


def _default_cache():
    from repro.lab.bench import session_cache

    return session_cache()


def cached_source(
    kind: str,
    key_parts: tuple,
    generate: Callable[[], str],
    cache=None,
) -> str:
    """Return generated source for ``key_parts``, memoized + disk-cached.

    ``kind`` namespaces the key (``rtl`` vs ``sched``); ``generate`` runs
    only on a full miss. ``cache=None`` uses the process-wide lab cache
    (disabled unless ``REPRO_LAB_CACHE`` is set), so call sites need no
    conditionals.
    """
    from repro import __version__

    fp = stable_fingerprint("simc", kind, CODEGEN_SCHEMA, __version__,
                            *key_parts)
    key = f"simc-{kind}-{fp:016x}"
    src = _SOURCE_MEMO.get(key)
    if src is not None:
        return src
    if cache is None:
        cache = _default_cache()
    if cache is not None and cache.enabled:
        obj = cache.get(key)
        if isinstance(obj, str):
            _SOURCE_MEMO[key] = obj
            return obj
    src = generate()
    _SOURCE_MEMO[key] = src
    if cache is not None and cache.enabled:
        cache.put(key, src)
    return src


def compile_source(source: str, filename: str):
    """``compile()`` with a per-source memo (bytecode is design-invariant)."""
    key = (filename, source)
    code = _CODE_MEMO.get(key)
    if code is None:
        code = compile(source, filename, "exec")
        _CODE_MEMO[key] = code
    return code
