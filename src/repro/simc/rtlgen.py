"""Compiled RTL simulation: specialize an :class:`R.Module` to Python source.

The interpreted :class:`repro.rtl.sim.RtlSim` re-walks the expression AST
of every datapath assignment on every clock cycle. This module performs
that walk **once**, at simulator construction, emitting one specialized
Python function per FSM state — truncation masks folded to hex literals,
sign extension as the branchless ``(v ^ C) - C`` pattern, stream ports
resolved to direct :class:`Channel` attribute references, and the
deferred register-update protocol compiled to sentinel locals — then
compiles the whole thing with :func:`compile` and drives it from an
inherited ``tick``/``run`` API.

Bit-identity with the interpreter is the contract: every construct is
translated to code with exactly the interpreter's masking, evaluation
order, laziness (``CondExpr`` branches), strictness (``&&``/``||``
operands are eager, as in ``RtlSim.eval``), error codes, and side-effect
ordering — enforced end to end by the difftest lockstep oracle running
both backends in the same cycle loop. Anything outside the translatable
subset raises :class:`SimCompileError` (``RPR-K``) at construction, which
backend selection turns into an interpreter fallback plus a warning
diagnostic.

Fault-injector hooks survive compilation because word movement still goes
through :meth:`Channel.push`/:meth:`Channel.pop`/:meth:`Channel.can_push`
method calls (those carry the hooks), while hook-free predicates
(``can_pop`` is ``bool(queue)``) are inlined as deque truthiness.
"""

from __future__ import annotations

from repro.errors import SimCompileError, SimulationError
from repro.hls.cyclemodel import Channel
from repro.rtl import core as R
from repro.rtl.sim import RtlSim
from repro.utils.bitops import mask

from .codecache import cached_source, compile_source

__all__ = ["BatchedRtlSim", "CompiledRtlSim", "batched_rtl_source",
           "generate_batched_rtl_source", "generate_rtl_source",
           "rtl_sim_source"]


class _Emitter:
    """Accumulates generated source lines with explicit indentation."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self._temp = 0

    def fresh(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def put(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)


def _sext_src(var: str, width: int) -> str:
    """Branchless sign extension of an already-masked ``width``-bit value."""
    if width <= 0:
        return "0"
    c = 1 << (width - 1)
    return f"(({var} ^ {hex(c)}) - {hex(c)})"


class _RtlCompiler:
    """Translates one module (with a fixed stream classification) to source."""

    def __init__(self, module: R.Module, readers: tuple[str, ...],
                 writers: tuple[str, ...], batched: bool = False) -> None:
        #: structure-of-arrays mode: state functions take a lane index list
        #: and advance all lanes parked in that state in one call, writing
        #: per-lane status slots instead of returning a scalar status
        self.batched = batched
        self.module = module
        self.readers = tuple(readers)
        self.writers = tuple(writers)
        self.static_regs = {"state"}
        for sig in module.regs:
            self.static_regs.add(sig.name)
        self.mem_locals: dict[str, str] = {
            mem.name: f"_m{i}" for i, mem in enumerate(module.memories)
        }
        self.mem_depths: dict[str, int] = {
            mem.name: mem.depth for mem in module.memories
        }
        # stream ports resolvable at compile time -> inline source fragments
        self.port_exprs: dict[str, str] = {}
        # strobe name -> action emitter
        self.strobes: dict[str, tuple[str, str]] = {}
        for i, name in enumerate(self.readers):
            q = f"_r{i}_q"
            self.port_exprs[f"{name}_data"] = f"({q}[0] if {q} else 0)"
            self.port_exprs[f"{name}_empty"] = f"(0 if {q} else 1)"
            self.port_exprs[f"{name}_eos"] = f"(1 if _r{i}.closed else 0)"
            self.strobes[f"{name}_re"] = ("pop", f"_r{i}")
        for i, name in enumerate(self.writers):
            self.port_exprs[f"{name}_full"] = f"(0 if _w{i}_can() else 1)"
            self.strobes[f"{name}_we"] = ("push", f"_w{i}")
            self.strobes[f"{name}_close"] = ("close", f"_w{i}")

    # ---- expressions ----------------------------------------------------------

    def expr(self, em: _Emitter, e: R.Expr) -> str:
        """Emit code computing ``e``; returns the variable/literal source.

        The returned fragment always holds exactly what ``RtlSim.eval``
        would return for this node: the unsigned pattern truncated to the
        node's width (comparisons and logical ops yield raw 0/1).
        """
        m = mask(e.width)
        if isinstance(e, R.Lit):
            return hex(e.value & m)
        if isinstance(e, R.Ref):
            name = e.signal.name
            if name in self.static_regs:
                return self._bind(em, f"(R[{name!r}] & {hex(m)})")
            port = self.port_exprs.get(name)
            if port is not None:
                return self._bind(em, f"({port} & {hex(m)})")
            # resolved at run time like the interpreter: a dynamically
            # created register if present, else a port (unknown ports
            # raise RPR-X103 from the shared dispatch table)
            return self._bind(em, f"(_dyn({name!r}) & {hex(m)})")
        if isinstance(e, R.UnExpr):
            v = self.expr(em, e.operand)
            if e.op == "-":
                return self._bind(em, f"((-{v}) & {hex(m)})")
            if e.op == "~":
                return self._bind(em, f"((~{v}) & {hex(m)})")
            if e.op == "!":
                return self._bind(em, f"(1 if {v} == 0 else 0)")
            if e.op == "zext":
                if e.width >= e.operand.width:
                    return v
                return self._bind(em, f"({v} & {hex(m)})")
            if e.op == "sext":
                s = _sext_src(v, e.operand.width)
                return self._bind(em, f"({s} & {hex(m)})")
            raise SimCompileError(
                f"{self.module.name}: unsupported unary op {e.op!r}",
                code="RPR-K010")
        if isinstance(e, R.BinExpr):
            return self._binexpr(em, e, m)
        if isinstance(e, R.CondExpr):
            c = self.expr(em, e.cond)
            out = em.fresh()
            em.put(f"if {c}:")
            em.indent += 1
            t = self.expr(em, e.iftrue)
            em.put(f"{out} = {t} & {hex(m)}")
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            f = self.expr(em, e.iffalse)
            em.put(f"{out} = {f} & {hex(m)}")
            em.indent -= 1
            return out
        if isinstance(e, R.SliceExpr):
            v = self.expr(em, e.operand)
            sm = mask(e.msb - e.lsb + 1)
            if e.lsb:
                return self._bind(em, f"(({v} >> {e.lsb}) & {hex(sm)})")
            return self._bind(em, f"({v} & {hex(sm)})")
        if isinstance(e, R.MemRead):
            idx = self.expr(em, e.index)
            if e.memory == "$ext_hdl":
                return self._bind(em, f"(_X({idx}) & {hex(m)})")
            local = self.mem_locals.get(e.memory)
            if local is None:
                raise SimCompileError(
                    f"{self.module.name}: read of unknown memory "
                    f"{e.memory!r}", code="RPR-K011")
            depth = self.mem_depths[e.memory]
            return self._bind(em, f"{local}[{idx} % {depth}]")
        raise SimCompileError(
            f"{self.module.name}: unsupported RTL expression "
            f"{type(e).__name__}", code="RPR-K010")

    def _bind(self, em: _Emitter, src: str) -> str:
        var = em.fresh()
        em.put(f"{var} = {src}")
        return var

    def _binexpr(self, em: _Emitter, e: R.BinExpr, m: int) -> str:
        # both operands evaluate eagerly, left first — RtlSim.eval does the
        # same even for '&&'/'||', so a poisoned right operand (division by
        # zero, unknown port) must still raise
        a = self.expr(em, e.left)
        b = self.expr(em, e.right)
        op = e.op
        if op == "+":
            return self._bind(em, f"(({a} + {b}) & {hex(m)})")
        if op == "-":
            return self._bind(em, f"(({a} - {b}) & {hex(m)})")
        if op == "*":
            return self._bind(em, f"(({a} * {b}) & {hex(m)})")
        if op in ("/", "%"):
            if e.signed_cmp:
                a = self._bind(em, _sext_src(a, e.left.width))
                b = self._bind(em, _sext_src(b, e.right.width))
            fn = "_div" if op == "/" else "_mod"
            return self._bind(em, f"({fn}({a}, {b}) & {hex(m)})")
        if op in ("&", "|", "^"):
            src = f"({a} {op} {b})"
            if e.width < max(e.left.width, e.right.width):
                src = f"({src} & {hex(m)})"
            return self._bind(em, src)
        if op == "<<":
            return self._bind(em, f"(({a} << ({b} % 64)) & {hex(m)})")
        if op == ">>":
            src = f"({a} >> ({b} % 64))"
            if e.width < e.left.width:
                src = f"({src} & {hex(m)})"
            return self._bind(em, src)
        if op == ">>>":
            s = _sext_src(a, e.left.width)
            return self._bind(em, f"(({s} >> ({b} % 64)) & {hex(m)})")
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if e.signed_cmp:
                a = self._bind(em, _sext_src(a, e.left.width))
                b = self._bind(em, _sext_src(b, e.right.width))
            return self._bind(em, f"(1 if {a} {op} {b} else 0)")
        if op == "&&":
            return self._bind(em, f"(1 if {a} and {b} else 0)")
        if op == "||":
            return self._bind(em, f"(1 if {a} or {b} else 0)")
        if op == "concat":
            return self._bind(
                em, f"((({a} << {e.right.width}) | {b}) & {hex(m)})")
        raise SimCompileError(
            f"{self.module.name}: unsupported binary op {op!r}",
            code="RPR-K010")

    # ---- statements -----------------------------------------------------------

    def stmt(self, em: _Emitter, s: R.Stmt, pending: dict[str, str]) -> None:
        if isinstance(s, R.BlockingAssign):
            v = self.expr(em, s.expr)
            tm = mask(s.target.width)
            em.put(f"R[{s.target.name!r}] = {v} & {hex(tm)}")
            return
        if isinstance(s, R.RegAssign):
            v = self.expr(em, s.expr)
            tm = mask(s.target.width)
            slot = pending.get(s.target.name)
            if slot is None:
                slot = f"_p{len(pending)}"
                pending[s.target.name] = slot
            em.put(f"{slot} = {v} & {hex(tm)}")
            return
        if isinstance(s, R.MemWrite):
            local = self.mem_locals.get(s.memory)
            if local is None:
                raise SimCompileError(
                    f"{self.module.name}: write to unknown memory "
                    f"{s.memory!r}", code="RPR-K011")
            idx = self.expr(em, s.index)
            val = self.expr(em, s.value)
            em.put(f"{local}[{idx} % {self.mem_depths[s.memory]}] = {val}")
            return
        if isinstance(s, R.If):
            c = self.expr(em, s.cond)
            em.put(f"if {c}:")
            em.indent += 1
            if s.then:
                for sub in s.then:
                    self.stmt(em, sub, pending)
            else:
                em.put("pass")
            em.indent -= 1
            if s.otherwise:
                em.put("else:")
                em.indent += 1
                for sub in s.otherwise:
                    self.stmt(em, sub, pending)
                em.indent -= 1
            return
        raise SimCompileError(
            f"{self.module.name}: unsupported RTL statement "
            f"{type(s).__name__}", code="RPR-K010")

    # ---- states ---------------------------------------------------------------

    def _collect_pending(self, stmts, out: set[str]) -> None:
        for s in stmts:
            if isinstance(s, R.RegAssign):
                out.add(s.target.name)
            elif isinstance(s, R.If):
                self._collect_pending(s.then, out)
                self._collect_pending(s.otherwise, out)

    def state_fn(self, em: _Emitter, sc: R.StateCase) -> str:
        fname = f"_s{sc.index}"
        if self.batched:
            return self._state_fn_batched(em, fname, sc)
        em.put(f"def {fname}():")
        em.indent += 1
        em.put(f"# state {sc.index} ({sc.label})")
        self._state_body(em, sc,
                         stall=("S.stalled += 1", "return 'stalled'"),
                         active=("return 'active'",))
        em.indent -= 1
        em.put("")
        return fname

    def _state_body(self, em: _Emitter, sc: R.StateCase,
                    stall: tuple, active: tuple) -> None:
        if sc.stall is not None:
            c = self.expr(em, sc.stall)
            em.put(f"if {c}:")
            em.indent += 1
            for line in stall:
                em.put(line)
            em.indent -= 1
        # deferred register updates: one sentinel local per target,
        # initialized before the body so an untaken conditional assign
        # leaves it unset (matching the interpreter's deferred list)
        targets: set[str] = set()
        self._collect_pending(sc.body, targets)
        pending: dict[str, str] = {
            name: f"_p{i}" for i, name in enumerate(sorted(targets))
        }
        for slot in pending.values():
            em.put(f"{slot} = _U")
        for s in sc.body:
            self.stmt(em, s, pending)
        if sc.next_state is not None:
            ns = self.expr(em, sc.next_state)
        else:
            ns = str(sc.index)
        # interface strobes see post-datapath blocking values but the
        # pre-transition registers; commits and the state write come after
        for sig, expr in self.module.assigns:
            v = self.expr(em, expr)
            self._strobe(em, sig.name, v)
        for name, slot in pending.items():
            em.put(f"if {slot} is not _U:")
            em.indent += 1
            em.put(f"R[{name!r}] = {slot}")
            em.indent -= 1
        em.put(f"R['state'] = {ns}")
        for line in active:
            em.put(line)

    def _state_fn_batched(self, em: _Emitter, fname: str,
                          sc: R.StateCase) -> str:
        """Lane-looped variant of :meth:`state_fn`: one call advances every
        lane currently parked in this FSM state. A stalling lane writes
        its status slot and ``continue``s without blocking siblings."""
        body = _Emitter()
        body.indent = em.indent + 2  # inside `def` + `for l in ls:`
        body.put(f"# state {sc.index} ({sc.label})")
        self._state_body(body, sc,
                         stall=("S.stalled += 1", "_st[l] = 'stalled'",
                                "continue"),
                         active=("_st[l] = 'active'",))
        em.put(f"def {fname}(ls, _st):")
        em.indent += 1
        em.put("for l in ls:")
        em.indent += 1
        for line in self.lane_aliases(body.lines):
            em.put(line)
        em.indent -= 2
        em.lines.extend(body.lines)
        em.put("")
        return fname

    # ---- lane aliasing (batched mode) ------------------------------------------

    def lane_aliases(self, lines: list[str]) -> list[str]:
        """Per-lane alias assignments for one generated state body.

        Batched bodies are emitted with the *same* names the scalar
        generator uses (``R``, ``_r0_q`` ...), then wrapped in a
        ``for l in ls:`` loop whose head rebinds each used name to lane
        ``l``'s slot of the corresponding structure-of-arrays list. Only
        names the body actually mentions are rebound. Width masks
        (``_w{i}_m``) and ``_div``/``_mod``/``_U`` are design-invariant
        and stay bound once at build level.
        """
        text = "\n".join(lines)
        out = ["R = _RN[l]"]
        if "S." in text:
            out.append("S = _SN[l]")
        if "T." in text:
            out.append("T = _TN[l]")
        if "_dyn(" in text:
            out.append("_dyn = _dynN[l]")
        if "_X(" in text:
            out.append("_X = _XN[l]")
        for i in range(len(self.readers)):
            if f"_r{i}." in text:
                out.append(f"_r{i} = _r{i}N[l]")
            if f"_r{i}_q" in text:
                out.append(f"_r{i}_q = _r{i}_qN[l]")
            if f"_r{i}_pop(" in text:
                out.append(f"_r{i}_pop = _r{i}_popN[l]")
        for i in range(len(self.writers)):
            if f"_w{i}_push(" in text:
                out.append(f"_w{i}_push = _w{i}_pushN[l]")
            if f"_w{i}_can(" in text:
                out.append(f"_w{i}_can = _w{i}_canN[l]")
            if f"_w{i}_close(" in text:
                out.append(f"_w{i}_close = _w{i}_closeN[l]")
        for local in self.mem_locals.values():
            if f"{local}[" in text:
                out.append(f"{local} = {local}N[l]")
        return out

    def _strobe(self, em: _Emitter, name: str, value: str) -> None:
        action = self.strobes.get(name)
        if action is not None:
            kind, ch = action
            if kind == "pop":
                em.put(f"if {value} and {ch}_q:")
                em.indent += 1
                em.put(f"{ch}_pop()")
                em.indent -= 1
            elif kind == "push":
                stream = name[: -len("_we")]
                em.put(f"if {value}:")
                em.indent += 1
                em.put(f"{ch}_push(R[{stream + '_data_r'!r}] & {ch}_m)")
                em.indent -= 1
            else:  # close
                em.put(f"if {value}:")
                em.indent += 1
                em.put(f"{ch}_close()")
                em.indent -= 1
            return
        if name.startswith("tap_") and name.endswith("_valid"):
            channel = name[len("tap_"):-len("_valid")]
            reg = f"tap_{channel}_r"
            em.put(f"if {value}:")
            em.indent += 1
            # setdefault keeps tap dict keys lazy: a channel appears only
            # once its valid strobe actually fires, exactly like the
            # interpreter's taps dict
            em.put(f"T.setdefault({channel!r}, []).append"
                   f"(R.get({reg!r}, 0))")
            em.indent -= 1
        # any other assign target: value computed (side effects/errors
        # preserved), no interface action — same as _interface_strobe

    # ---- whole module ---------------------------------------------------------

    def generate(self) -> str:
        em = _Emitter()
        if self.batched:
            em.put(f"# batched (SoA lanes) RTL simulation of module "
                   f"{self.module.name!r} ({len(self.module.states)} states)")
            em.put("def _build_batched(bx):")
            em.indent += 1
            em.put("_SN = bx.lanes")
            em.put("_RN = [s.regs for s in _SN]")
            em.put("_TN = [s.taps for s in _SN]")
            em.put("_dynN = [s._dyn_ref for s in _SN]")
            em.put("_XN = [s.ext_hdl for s in _SN]")
            em.put("_U = _SENTINEL")
            # pure value helpers; their error text only names the module,
            # which is identical across lanes
            em.put("_div = _SN[0]._div")
            em.put("_mod = _SN[0]._mod")
            for i, name in enumerate(self.readers):
                em.put(f"_r{i}N = [s.streams[{name!r}] for s in _SN]")
                em.put(f"_r{i}_qN = [c.queue for c in _r{i}N]")
                em.put(f"_r{i}_popN = [c.pop for c in _r{i}N]")
            for i, name in enumerate(self.writers):
                em.put(f"_w{i}N = [s.streams[{name!r}] for s in _SN]")
                em.put(f"_w{i}_pushN = [c.push for c in _w{i}N]")
                em.put(f"_w{i}_canN = [c.can_push for c in _w{i}N]")
                em.put(f"_w{i}_closeN = [c.close for c in _w{i}N]")
                # widths are a property of the design, identical per lane
                em.put(f"_w{i}_m = (1 << _w{i}N[0].width) - 1")
            for mem in self.module.memories:
                em.put(f"{self.mem_locals[mem.name]}N = "
                       f"[s.memories[{mem.name!r}] for s in _SN]")
            em.put("")
        else:
            em.put(f"# compiled RTL simulation of module "
                   f"{self.module.name!r} ({len(self.module.states)} states)")
            em.put("def _build(sim):")
            em.indent += 1
            em.put("R = sim.regs")
            em.put("T = sim.taps")
            em.put("S = sim")
            em.put("_U = _SENTINEL")
            em.put("_dyn = sim._dyn_ref")
            em.put("_div = sim._div")
            em.put("_mod = sim._mod")
            em.put("_X = sim.ext_hdl")
            for i, name in enumerate(self.readers):
                em.put(f"_r{i} = sim.streams[{name!r}]")
                em.put(f"_r{i}_q = _r{i}.queue")
                em.put(f"_r{i}_pop = _r{i}.pop")
            for i, name in enumerate(self.writers):
                em.put(f"_w{i} = sim.streams[{name!r}]")
                em.put(f"_w{i}_push = _w{i}.push")
                em.put(f"_w{i}_can = _w{i}.can_push")
                em.put(f"_w{i}_close = _w{i}.close")
                em.put(f"_w{i}_m = (1 << _w{i}.width) - 1")
            for mem in self.module.memories:
                em.put(f"{self.mem_locals[mem.name]} = "
                       f"sim.memories[{mem.name!r}]")
            em.put("")
        fnames = {}
        for sc in self.module.states:
            fnames[sc.index] = self.state_fn(em, sc)
        table = ", ".join(f"{idx}: {fn}" for idx, fn in fnames.items())
        em.put(f"return {{{table}}}")
        em.indent -= 1
        return "\n".join(em.lines) + "\n"


def generate_rtl_source(module: R.Module, readers: tuple[str, ...],
                        writers: tuple[str, ...]) -> str:
    """Generate (uncached) specialized simulation source for ``module``."""
    return _RtlCompiler(module, readers, writers).generate()


def rtl_sim_source(module: R.Module, readers: tuple[str, ...],
                   writers: tuple[str, ...], cache=None) -> str:
    """Cached variant of :func:`generate_rtl_source`.

    The key covers the full module structure plus the stream
    classification (the generated source hard-codes both).
    """
    return cached_source(
        "rtl",
        (repr(module), tuple(readers), tuple(writers)),
        lambda: generate_rtl_source(module, readers, writers),
        cache=cache,
    )


def generate_batched_rtl_source(module: R.Module, readers: tuple[str, ...],
                                writers: tuple[str, ...]) -> str:
    """Generate (uncached) N-lane structure-of-arrays source for
    ``module``. The emitted module is lane-count independent: the batch
    width is fixed only when ``_build_batched`` binds a concrete lane
    list, so one cached source serves every batch size."""
    return _RtlCompiler(module, readers, writers, batched=True).generate()


def batched_rtl_source(module: R.Module, readers: tuple[str, ...],
                       writers: tuple[str, ...], cache=None) -> str:
    """Cached variant of :func:`generate_batched_rtl_source`.

    Cached under the distinct ``rtl-batch`` kind — the fingerprint
    namespace guarantees scalar and batched source can never alias in the
    in-process memo or the disk cache even though both are keyed by the
    same module identity.
    """
    return cached_source(
        "rtl-batch",
        (repr(module), tuple(readers), tuple(writers)),
        lambda: generate_batched_rtl_source(module, readers, writers),
        cache=cache,
    )


#: unique "no deferred write" marker bound into generated builders
_SENTINEL = object()


class CompiledRtlSim(RtlSim):
    """Drop-in :class:`RtlSim` with the FSM compiled to Python bytecode.

    Construction performs (or fetches from cache) the specialization and
    raises :class:`SimCompileError` on untranslatable designs; after that
    every ``tick`` dispatches straight into the compiled state function.
    All observable state (``regs``, ``taps``, ``memories``, ``cycles``,
    ``stalled``, channel contents/stats) matches the interpreter bit for
    bit.
    """

    backend = "compiled"

    def __init__(
        self,
        module: R.Module,
        streams: dict[str, Channel],
        ext_hdl=None,
        injector=None,
        cache=None,
    ) -> None:
        super().__init__(module, streams, ext_hdl, injector)
        source = rtl_sim_source(
            module,
            tuple(sorted(self._readers)),
            tuple(sorted(self._writers)),
            cache=cache,
        )
        self.source = source
        code = compile_source(source, f"<simc-rtl:{module.name}>")
        ns = {"__builtins__": {}, "_SENTINEL": _SENTINEL}
        exec(code, ns)
        self._state_fns = ns["_build"](self)
        self._done_state = module.meta.get("done_state")

    # _dyn_ref/_div/_mod (referenced from generated code) are inherited from
    # RtlSim so interpreted lanes can serve batched generated code too.

    # ---- clocking --------------------------------------------------------------

    def tick(self) -> str:
        if self.done:
            return "done"
        state = self.regs["state"]
        if state == self._done_state:
            self.done = True
            return "done"
        self.cycles += 1
        if self.injector is not None:
            self.injector.tick()
        fn = self._state_fns.get(state)
        if fn is None:
            raise SimulationError(
                f"{self.module.name}: no state {state}", code="RPR-X109")
        return fn()


class BatchedRtlSim:
    """N interpreter lanes advanced in lockstep by generated SoA code.

    Each lane is a plain :class:`RtlSim` (so fault injectors attached to a
    lane's channels and per-lane ``taps``/``regs``/``memories`` work
    unchanged), but clocking goes through one generated function per FSM
    state that loops over exactly the lanes currently parked there. After
    any number of ``tick_lanes`` calls, lane ``i`` is bit-identical (regs,
    taps, memories, counters, channel traffic) to a scalar run fed the
    same stimulus.
    """

    backend = "batched"

    def __init__(
        self,
        module: R.Module,
        lane_streams: list[dict[str, Channel]],
        lane_ext_hdl: list | None = None,
        lane_injectors: list | None = None,
        cache=None,
    ) -> None:
        n = len(lane_streams)
        if n < 1:
            raise SimCompileError(
                f"{module.name}: batch needs at least one lane",
                code="RPR-K030")
        ext_l = lane_ext_hdl if lane_ext_hdl is not None else [None] * n
        inj_l = lane_injectors if lane_injectors is not None else [None] * n
        self.module = module
        self.lanes: list[RtlSim] = [
            RtlSim(module, lane_streams[i], ext_l[i], inj_l[i])
            for i in range(n)
        ]
        for sim in self.lanes:
            sim.backend = "batched"  # shadow the class attr for stats
        self.n = n
        # the classification is a pure function of the module's ports, so
        # every lane agrees with lane 0 by construction
        source = batched_rtl_source(
            module,
            tuple(sorted(self.lanes[0]._readers)),
            tuple(sorted(self.lanes[0]._writers)),
            cache=cache,
        )
        self.source = source
        code = compile_source(source, f"<simc-rtl-batch:{module.name}>")
        ns = {"__builtins__": {}, "_SENTINEL": _SENTINEL}
        exec(code, ns)
        self._state_fns = ns["_build_batched"](self)
        self._done_state = module.meta.get("done_state")

    def tick_lanes(self, lane_ids, statuses: list) -> None:
        """Advance every lane in ``lane_ids`` one clock.

        ``statuses[l]`` receives ``'active'`` / ``'stalled'`` / ``'done'``
        — exactly what ``RtlSim.tick()`` would have returned for that
        lane. Lanes are grouped by FSM state so each generated function is
        entered once per cycle, however many lanes sit there.
        """
        lanes = self.lanes
        groups: dict = {}
        for l in lane_ids:
            sim = lanes[l]
            if sim.done:
                statuses[l] = "done"
                continue
            state = sim.regs["state"]
            if state == self._done_state:
                sim.done = True
                statuses[l] = "done"
                continue
            sim.cycles += 1
            if sim.injector is not None:
                sim.injector.tick()
            fn = self._state_fns.get(state)
            if fn is None:
                raise SimulationError(
                    f"{self.module.name}: no state {state}", code="RPR-X109")
            grp = groups.get(fn)
            if grp is None:
                groups[fn] = [l]
            else:
                grp.append(l)
        for fn, ls in groups.items():
            fn(ls, statuses)

    def tick_all(self) -> list:
        """Convenience: tick every lane, returning the status list."""
        statuses: list = [None] * self.n
        self.tick_lanes(range(self.n), statuses)
        return statuses
