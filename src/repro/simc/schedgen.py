"""Compiled cycle-model simulation: specialize a ``FunctionSchedule``.

The interpreted :class:`repro.hls.cyclemodel.ProcessExec` dispatches every
instruction of every control step through :mod:`repro.ir.semantics` on
every cycle — re-deriving C usual-arithmetic-conversion types, widths and
masks that are all compile-time constants of the schedule. This module
walks the schedule **once**, emitting one Python function per
``(block, step)`` pair with those conversions constant-folded: operand
interpretation becomes a branchless sign-extension or nothing, masks
become hex literals, constant operands fold to their converted values, and
stream handshakes become direct bound-method calls on the
:class:`Channel` objects.

Pipelined regions compile too: each modulo-scheduled stage becomes one
overlay-passing function (stage-register semantics via the same
``overlay`` + ``_pending_env`` discipline the interpreter uses), and the
per-block tick function replays ``_tick_pipe``'s initiation / squash /
drain protocol with the per-stage instruction lists resolved at compile
time. Any block the codegen skipped falls back to the interpreted path
mid-run. Everything observable (``env`` contents, stall/cycle counters,
``stream_ops``, channel stats, watchdog/fault hooks including
``upset_register``) is shared with the base class, which is what lets the
difftest lockstep oracle compare the two backends cycle by cycle.
"""

from __future__ import annotations

from repro.errors import SimCompileError, SimulationError
from repro.frontend.ctypes_ import CType, common_type
from repro.hls.cyclemodel import Channel, ProcessExec
from repro.hls.schedule import FunctionSchedule
from repro.ir import semantics
from repro.ir.instr import Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, Temp, Value
from repro.utils.bitops import mask, truncate

from .codecache import cached_source, compile_source
from .rtlgen import _Emitter, _sext_src

__all__ = ["BatchedProcessExec", "CompiledProcessExec",
           "batched_sched_source", "generate_batched_sched_source",
           "generate_sched_source", "sched_exec_source"]


def _identity(v):
    return v


class _Opnd:
    """One IR operand: either a literal (folded) or a source fragment.

    For :class:`Temp` operands the fragment reads ``env`` and — by the
    ``_write`` invariant — always holds the unsigned pattern truncated to
    the temp's declared width. :class:`Const` operands keep their raw
    value so the exact interpreter conversions can be replayed on them at
    compile time.
    """

    __slots__ = ("src", "ty", "lit")

    def __init__(self, src: str | None, ty: CType, lit: int | None) -> None:
        self.src = src
        self.ty = ty
        self.lit = lit


class _SchedCompiler:
    def __init__(self, fsched: FunctionSchedule, batched: bool = False) -> None:
        #: structure-of-arrays mode: every generated function takes a lane
        #: index list and advances all lanes in one call, with per-lane
        #: status slots instead of a scalar return value
        self.batched = batched
        self.fsched = fsched
        self.func = fsched.func
        self.name = self.func.name
        # ("stream"|"tap", channel name) -> local variable prefix
        self.channels: dict[tuple[str, str], str] = {}
        self.mem_locals: dict[str, str] = {
            name: f"_m{i}" for i, name in enumerate(self.func.arrays)
        }
        self.mem_sizes: dict[str, int] = {
            name: arr.size for name, arr in self.func.arrays.items()
        }
        self.mem_widths: dict[str, int] = {
            name: arr.elem.width for name, arr in self.func.arrays.items()
        }
        #: when set (pipelined-stage codegen), reads check the iteration
        #: overlay dict of this name first and writes go through it plus
        #: ``_pending_env`` — the interpreter's ``_read``/``_write``
        #: overlay discipline, resolved at compile time
        self.ov: str | None = None

    # ---- operands -------------------------------------------------------------

    def opnd(self, v: Value) -> _Opnd:
        if isinstance(v, Const):
            return _Opnd(None, v.ty, v.value)
        if isinstance(v, Temp):
            if self.ov is not None:
                n = v.name
                return _Opnd(
                    f"({self.ov}[{n!r}] if {n!r} in {self.ov} "
                    f"else E[{n!r}])", v.ty, None)
            return _Opnd(f"E[{v.name!r}]", v.ty, None)
        raise SimCompileError(
            f"{self.name}: bad operand {v!r}", code="RPR-K020")

    def chan(self, instr: Instr) -> str:
        if "stream" in instr.attrs:
            key = ("stream", instr.attrs["stream"])
        else:
            key = ("tap", instr.attrs["channel"])
        local = self.channels.get(key)
        if local is None:
            local = f"_c{len(self.channels)}"
            self.channels[key] = local
        return local

    def value_src(self, em: _Emitter, o: _Opnd, ct: CType) -> str:
        """Source for ``interpret(truncate(interpret(x, xty), ct.w), ct)``.

        The mathematical value of the operand after the C usual arithmetic
        conversions to ``ct`` — possibly negative when ``ct`` is signed.
        """
        if o.lit is not None:
            return repr(semantics.interpret(
                truncate(semantics.interpret(o.lit, o.ty), ct.width), ct))
        cm = mask(ct.width)
        if o.ty.signed:
            s = em.fresh()
            em.put(f"{s} = {_sext_src(o.src, o.ty.width)} & {hex(cm)}")
            masked_at = ct.width
        elif ct.width < o.ty.width:
            s = em.fresh()
            em.put(f"{s} = {o.src} & {hex(cm)}")
            masked_at = ct.width
        else:
            s = o.src
            masked_at = o.ty.width
        if ct.signed and masked_at >= ct.width:
            if s == o.src:
                v = em.fresh()
                em.put(f"{v} = {s}")
                s = v
            out = em.fresh()
            em.put(f"{out} = {_sext_src(s, ct.width)}")
            return out
        return s

    def pattern_src(self, em: _Emitter, o: _Opnd, ct: CType) -> str:
        """Like :meth:`value_src` but stops at the ``ct``-width pattern
        (the final signed interpretation elided) — for bitwise ops, which
        re-truncate both converted operands anyway."""
        if o.lit is not None:
            return hex(truncate(
                truncate(semantics.interpret(o.lit, o.ty), ct.width),
                ct.width))
        cm = mask(ct.width)
        if o.ty.signed:
            s = em.fresh()
            em.put(f"{s} = {_sext_src(o.src, o.ty.width)} & {hex(cm)}")
            return s
        if ct.width < o.ty.width:
            s = em.fresh()
            em.put(f"{s} = {o.src} & {hex(cm)}")
            return s
        return o.src

    # ---- instruction execution -------------------------------------------------

    def _store(self, em: _Emitter, dest: Temp, src: str,
               fits_width: int | None = None) -> None:
        """``E[dest] = src`` with the ``_write`` truncation; the mask is
        elided when the value provably fits (non-negative, ``fits_width``
        bits). In overlay mode the write lands in the iteration overlay
        and is journaled for the end-of-cycle ``_pending_env`` commit."""
        if fits_width is not None and fits_width <= dest.ty.width:
            rhs = src
        else:
            rhs = f"{src} & {hex(mask(dest.ty.width))}"
        if self.ov is None:
            em.put(f"E[{dest.name!r}] = {rhs}")
        else:
            v = em.fresh()
            em.put(f"{v} = {rhs}")
            em.put(f"{self.ov}[{dest.name!r}] = {v}")
            em.put(f"_pend(({dest.name!r}, {v}))")

    def _store_lit(self, em: _Emitter, dest: Temp, value: int) -> None:
        lit = truncate(value, dest.ty.width)
        if self.ov is None:
            em.put(f"E[{dest.name!r}] = {lit}")
        else:
            em.put(f"{self.ov}[{dest.name!r}] = {lit}")
            em.put(f"_pend(({dest.name!r}, {lit}))")

    def exec_instr(self, em: _Emitter, instr: Instr) -> None:
        pred = instr.attrs.get("pred")
        if pred is not None:
            p = self.opnd(pred)
            if p.lit is not None:
                if p.lit == 0:
                    return  # statically squashed
            else:
                em.put(f"if {p.src}:")
                em.indent += 1
                self._exec_body(em, instr)
                em.indent -= 1
                return
        self._exec_body(em, instr)

    def _exec_body(self, em: _Emitter, instr: Instr) -> None:
        op = instr.op
        if op in (OpKind.MOV, OpKind.TRUNC, OpKind.ZEXT, OpKind.SEXT):
            o = self.opnd(instr.args[0])
            d = instr.dest
            if o.lit is not None:
                self._store_lit(em, d, semantics.cast(op, o.lit, o.ty))
            elif op == OpKind.SEXT:
                self._store(em, d, f"({_sext_src(o.src, o.ty.width)})")
            else:
                self._store(em, d, o.src, fits_width=o.ty.width)
            return
        if op in (OpKind.NEG, OpKind.NOT, OpKind.LNOT):
            o = self.opnd(instr.args[0])
            d = instr.dest
            if o.lit is not None:
                self._store_lit(em, d, semantics.unop(op, o.lit, o.ty))
            elif op == OpKind.NEG:
                v = (_sext_src(o.src, o.ty.width) if o.ty.signed else o.src)
                self._store(em, d, f"(-({v}))")
            elif op == OpKind.NOT:
                self._store(em, d, f"(~{o.src})")
            else:  # LNOT
                self._store(em, d, f"(1 if {o.src} == 0 else 0)",
                            fits_width=1)
            return
        if op == OpKind.SELECT:
            cond, a, b = (self.opnd(x) for x in instr.args)
            d = instr.dest
            chosen = []
            for o in (a, b):
                if o.lit is not None:
                    chosen.append((repr(semantics.interpret(o.lit, o.ty)),
                                   None))
                elif o.ty.signed:
                    chosen.append((f"({_sext_src(o.src, o.ty.width)})", None))
                else:
                    chosen.append((o.src, o.ty.width))
            if cond.lit is not None:
                src, fits = chosen[0] if cond.lit != 0 else chosen[1]
                self._store(em, d, src, fits_width=fits)
                return
            em.put(f"if {cond.src}:")
            em.indent += 1
            self._store(em, d, chosen[0][0], fits_width=chosen[0][1])
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            self._store(em, d, chosen[1][0], fits_width=chosen[1][1])
            em.indent -= 1
            return
        if op in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
                  OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.SHL, OpKind.SHR):
            self._binop(em, instr)
            return
        if op in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
                  OpKind.GT, OpKind.GE):
            self._compare(em, instr)
            return
        if op == OpKind.LOAD:
            arr = instr.attrs["array"]
            local = self.mem_locals.get(arr)
            if local is None:
                raise SimCompileError(
                    f"{self.name}: load from unknown array {arr!r}",
                    code="RPR-K020")
            idx = self._index_src(em, self.opnd(instr.args[0]), arr)
            self._store(em, instr.dest, f"{local}[{idx}]",
                        fits_width=self.mem_widths[arr])
            return
        if op == OpKind.STORE:
            arr = instr.attrs["array"]
            local = self.mem_locals.get(arr)
            if local is None:
                raise SimCompileError(
                    f"{self.name}: store to unknown array {arr!r}",
                    code="RPR-K020")
            idx = self._index_src(em, self.opnd(instr.args[0]), arr)
            o = self.opnd(instr.args[1])
            ew = self.mem_widths[arr]
            if o.lit is not None:
                val = hex(truncate(o.lit, ew))
            elif ew < o.ty.width:
                val = f"({o.src} & {hex(mask(ew))})"
            else:
                val = o.src
            if self.ov is None:
                em.put(f"{local}[{idx}] = {val}")
            else:  # stage writes commit at end of cycle
                em.put(f"_pendm(({arr!r}, {idx}, {val}))")
            return
        if op == OpKind.STREAM_READ:
            ch = self.chan(instr)
            ok_t, val_t = instr.dests
            em.put(f"if {ch}_q:")
            em.indent += 1
            em.put("P.stream_ops += 1")
            self._store_lit(em, ok_t, 1)
            self._store(em, val_t, f"{ch}_pop()")
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            self._store_lit(em, ok_t, 0)
            self._store_lit(em, val_t, 0)
            em.indent -= 1
            return
        if op == OpKind.TAP_READ:
            ch = self.chan(instr)
            em.put(f"if {ch}_q:")
            em.indent += 1
            rec = em.fresh()
            em.put(f"{rec} = {ch}_pop()")
            self._store_lit(em, instr.dests[0], 1)
            for k, dest in enumerate(instr.dests[1:]):
                # zip() semantics: a short record leaves later dests alone
                em.put(f"if {k} < _len({rec}):")
                em.indent += 1
                self._store(em, dest, f"{rec}[{k}]")
                em.indent -= 1
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            for dest in instr.dests:
                self._store_lit(em, dest, 0)
            em.indent -= 1
            return
        if op == OpKind.STREAM_WRITE:
            ch = self.chan(instr)
            o = self.opnd(instr.args[0])
            if o.lit is not None:
                em.put(f"{ch}_push({o.lit} & {ch}_m)")
            else:
                em.put(f"{ch}_push({o.src} & {ch}_m)")
            em.put("P.stream_ops += 1")
            return
        if op == OpKind.STREAM_CLOSE:
            em.put(f"{self.chan(instr)}_close()")
            return
        if op == OpKind.TAP:
            ch = self.chan(instr)
            parts = []
            for a in instr.args:
                o = self.opnd(a)
                if o.lit is not None:
                    parts.append(repr(truncate(o.lit, o.ty.width)))
                else:
                    parts.append(o.src)
            tup = ", ".join(parts)
            if len(parts) == 1:
                tup += ","
            em.put(f"{ch}_push(({tup}))")
            return
        if op == OpKind.EXT_HDL:
            o = self.opnd(instr.args[0])
            if o.lit is not None:
                arg = hex(truncate(o.lit, 64))
            elif o.ty.width > 64:
                arg = f"({o.src} & {hex(mask(64))})"
            else:
                arg = o.src
            self._store(em, instr.dest, f"_ext({arg})")
            return
        raise SimCompileError(
            f"{self.name}: op {op} is outside the compiled-model subset",
            code="RPR-K020")

    def _index_src(self, em: _Emitter, o: _Opnd, arr: str) -> str:
        size = self.mem_sizes[arr]
        if o.lit is not None:
            return repr(semantics.interpret(o.lit, o.ty) % size)
        if o.ty.signed:
            return f"{_sext_src(o.src, o.ty.width)} % {size}"
        return f"{o.src} % {size}"

    def _binop(self, em: _Emitter, instr: Instr) -> None:
        op = instr.op
        a, b = (self.opnd(x) for x in instr.args)
        d = instr.dest
        if a.lit is not None and b.lit is not None:
            try:
                self._store_lit(em, d, semantics.binop(
                    op, a.lit, a.ty, b.lit, b.ty, where=self.name))
                return
            except SimulationError:
                pass  # e.g. constant division by zero: must raise at runtime
        if op in (OpKind.SHL, OpKind.SHR):
            if b.lit is not None:
                amt = repr(truncate(b.lit, b.ty.width) % 64)
            else:
                amt = f"({b.src} % 64)"
            if op == OpKind.SHL:
                x = (repr(semantics.interpret(a.lit, a.ty))
                     if a.lit is not None else
                     f"({_sext_src(a.src, a.ty.width)})" if a.ty.signed
                     else a.src)
                self._store(em, d, f"({x} << {amt})")
            elif a.ty.signed:
                x = (repr(semantics.interpret(a.lit, a.ty))
                     if a.lit is not None else
                     f"({_sext_src(a.src, a.ty.width)})")
                self._store(em, d, f"({x} >> {amt})")
            else:
                x = (hex(truncate(a.lit, a.ty.width))
                     if a.lit is not None else a.src)
                self._store(em, d, f"({x} >> {amt})",
                            fits_width=a.ty.width)
            return
        ct = common_type(a.ty, b.ty)
        if op in (OpKind.AND, OpKind.OR, OpKind.XOR):
            pya = self.pattern_src(em, a, ct)
            pyb = self.pattern_src(em, b, ct)
            pyop = {OpKind.AND: "&", OpKind.OR: "|", OpKind.XOR: "^"}[op]
            self._store(em, d, f"({pya} {pyop} {pyb})", fits_width=ct.width)
            return
        va = self.value_src(em, a, ct)
        vb = self.value_src(em, b, ct)
        if op == OpKind.ADD:
            self._store(em, d, f"({va} + {vb})")
        elif op == OpKind.SUB:
            self._store(em, d, f"({va} - {vb})")
        elif op == OpKind.MUL:
            self._store(em, d, f"({va} * {vb})")
        elif op == OpKind.DIV:
            self._store(em, d, f"_div({va}, {vb})")
        else:  # MOD
            self._store(em, d, f"_mod({va}, {vb})")

    def _compare(self, em: _Emitter, instr: Instr) -> None:
        op = instr.op
        a, b = (self.opnd(x) for x in instr.args)
        d = instr.dest
        force = instr.attrs.get("force_compare_width")
        if a.lit is not None and b.lit is not None:
            self._store_lit(em, d, semantics.compare(
                op, a.lit, a.ty, b.lit, b.ty, force_width=force))
            return
        if force is not None:
            va = self._forced_src(em, a, force)
            vb = self._forced_src(em, b, force)
        else:
            ct = common_type(a.ty, b.ty)
            va = self.value_src(em, a, ct)
            vb = self.value_src(em, b, ct)
        pyop = {OpKind.EQ: "==", OpKind.NE: "!=", OpKind.LT: "<",
                OpKind.LE: "<=", OpKind.GT: ">", OpKind.GE: ">="}[op]
        self._store(em, d, f"(1 if {va} {pyop} {vb} else 0)", fits_width=1)

    def _forced_src(self, em: _Emitter, o: _Opnd, force: int) -> str:
        """``truncate(interpret(x, xty), force)`` — the narrow-compare
        translation fault."""
        if o.lit is not None:
            return hex(truncate(semantics.interpret(o.lit, o.ty), force))
        fm = mask(force)
        if o.ty.signed:
            s = em.fresh()
            em.put(f"{s} = {_sext_src(o.src, o.ty.width)} & {hex(fm)}")
            return s
        if force < o.ty.width:
            s = em.fresh()
            em.put(f"{s} = {o.src} & {hex(fm)}")
            return s
        return o.src

    # ---- lane aliasing (batched mode) -------------------------------------------

    def lane_aliases(self, lines: list[str]) -> list[str]:
        """Per-lane alias assignments for one generated function body.

        Batched bodies are emitted with the *same* names the scalar
        generator uses (``E``, ``P``, ``_c0_q`` ...), then wrapped in a
        ``for l in ls:`` loop whose head rebinds each used name to lane
        ``l``'s slot of the corresponding structure-of-arrays list. Only
        names the body actually mentions are rebound, keeping per-lane
        loop overhead proportional to what the step touches.
        """
        text = "\n".join(lines)
        out = ["P = _PN[l]", "E = _EN[l]"]
        if "_div(" in text:
            out.append("_div = P._sc_div")
        if "_mod(" in text:
            out.append("_mod = P._sc_mod")
        if "_ext(" in text:
            out.append("_ext = _EXTN[l]")
        if "_pend(" in text:
            out.append("_pend = _PENDN[l]")
        if "_pendm(" in text:
            out.append("_pendm = _PENDMN[l]")
        for local in self.channels.values():
            if f"{local}.closed" in text:
                out.append(f"{local} = {local}N[l]")
            if f"{local}_q" in text:
                out.append(f"{local}_q = {local}_qN[l]")
            if f"{local}_pop(" in text:
                out.append(f"{local}_pop = {local}_popN[l]")
            if f"{local}_push(" in text:
                out.append(f"{local}_push = {local}_pushN[l]")
            if f"{local}_can(" in text:
                out.append(f"{local}_can = {local}_canN[l]")
            if f"{local}_close(" in text:
                out.append(f"{local}_close = {local}_closeN[l]")
        for local in self.mem_locals.values():
            if f"{local}[" in text:
                out.append(f"{local} = {local}N[l]")
        return out

    # ---- readiness --------------------------------------------------------------

    def ready_check(self, em: _Emitter, instr: Instr,
                    fail: str | tuple = "return 'stalled'") -> None:
        if instr.op not in (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
                            OpKind.TAP_READ):
            return  # close (and non-stream ops) never stall
        pred = instr.attrs.get("pred")
        indent = 0
        if pred is not None:
            p = self.opnd(pred)
            if p.lit is not None:
                if p.lit == 0:
                    return  # squashed handshake never stalls
            else:
                em.put(f"if {p.src}:")
                em.indent += 1
                indent = 1
        ch = self.chan(instr)
        if instr.op in (OpKind.STREAM_READ, OpKind.TAP_READ):
            cond = f"not ({ch}_q or {ch}.closed)"
        else:
            cond = f"not {ch}_can()"
        em.put(f"if {cond}:")
        em.indent += 1
        for line in ((fail,) if isinstance(fail, str) else fail):
            em.put(line)
        em.indent -= 1
        em.indent -= indent

    @staticmethod
    def _is_streamlike(instr: Instr) -> bool:
        return instr.op in (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
                            OpKind.TAP_READ)

    # ---- step functions ---------------------------------------------------------

    def step_fn(self, em: _Emitter, fid: int, block_name: str,
                step: int) -> str:
        bs = self.fsched.blocks[block_name]
        block = self.func.blocks[block_name]
        indices = bs.steps[step] if step < len(bs.steps) else []
        instrs = [block.instrs[i] for i in indices]
        fname = f"_f{fid}"
        if self.batched:
            return self._step_fn_batched(em, fname, block_name, step,
                                         bs, block, instrs)
        em.put(f"def {fname}():")
        em.indent += 1
        em.put(f"# {block_name}[{step}]")
        for instr in instrs:
            self.ready_check(em, instr)
        for instr in instrs:
            self.exec_instr(em, instr)
        em.put(f"P.step = {step + 1}")
        if step + 1 >= bs.length:
            term = block.term
            if isinstance(term, Jump):
                em.put(f"P._enter_block({term.target!r})")
            elif isinstance(term, Branch):
                c = self.opnd(term.cond)
                if c.lit is not None:
                    target = term.iftrue if c.lit != 0 else term.iffalse
                    em.put(f"P._enter_block({target!r})")
                else:
                    em.put(f"if {c.src}:")
                    em.indent += 1
                    em.put(f"P._enter_block({term.iftrue!r})")
                    em.indent -= 1
                    em.put("else:")
                    em.indent += 1
                    em.put(f"P._enter_block({term.iffalse!r})")
                    em.indent -= 1
            elif isinstance(term, Return):
                em.put("P.done = True")
                em.put("return 'done'")
            else:
                raise SimCompileError(
                    f"{self.name}: unsupported terminator "
                    f"{type(term).__name__}", code="RPR-K020")
        em.put("return 'active'")
        em.indent -= 1
        em.put("")
        return fname

    def _step_fn_batched(self, em: _Emitter, fname: str, block_name: str,
                         step: int, bs, block, instrs) -> str:
        """Lane-looped variant of :meth:`step_fn`: one call advances every
        lane currently parked at ``(block, step)``. A stalling or
        finishing lane writes its status slot and ``continue``s, so no
        lane ever blocks a sibling."""
        body = _Emitter()
        body.indent = em.indent + 2  # inside `def` + `for l in ls:`
        body.put(f"# {block_name}[{step}]")
        for instr in instrs:
            self.ready_check(body, instr,
                             fail=("_st[l] = 'stalled'", "continue"))
        for instr in instrs:
            self.exec_instr(body, instr)
        body.put(f"P.step = {step + 1}")
        if step + 1 >= bs.length:
            term = block.term
            if isinstance(term, Jump):
                body.put(f"P._enter_block({term.target!r})")
            elif isinstance(term, Branch):
                c = self.opnd(term.cond)
                if c.lit is not None:
                    target = term.iftrue if c.lit != 0 else term.iffalse
                    body.put(f"P._enter_block({target!r})")
                else:
                    body.put(f"if {c.src}:")
                    body.indent += 1
                    body.put(f"P._enter_block({term.iftrue!r})")
                    body.indent -= 1
                    body.put("else:")
                    body.indent += 1
                    body.put(f"P._enter_block({term.iffalse!r})")
                    body.indent -= 1
            elif isinstance(term, Return):
                body.put("P.done = True")
                body.put("_st[l] = 'done'")
                body.put("continue")
            else:
                raise SimCompileError(
                    f"{self.name}: unsupported terminator "
                    f"{type(term).__name__}", code="RPR-K020")
        body.put("_st[l] = 'active'")
        em.put(f"def {fname}(ls, _st):")
        em.indent += 1
        em.put("for l in ls:")
        em.indent += 1
        for line in self.lane_aliases(body.lines):
            em.put(line)
        em.indent -= 2
        em.lines.extend(body.lines)
        em.put("")
        return fname

    # ---- pipelined blocks -------------------------------------------------------

    def pipe_fn(self, em: _Emitter, fid: int, block_name: str) -> str:
        """Compile one modulo-scheduled loop: per-stage ready/exec
        functions plus a tick function replaying the interpreter's
        initiation / squash / drain protocol with the stage instruction
        lists resolved at compile time."""
        ps = self.fsched.pipelines[block_name]
        stage_ops: dict[int, list[Instr]] = {}
        for stage in range(ps.latency):
            # same comprehension as the interpreted _tick_pipe: plan order
            # is instr_step iteration order, one list per stage
            ops = [ps.instrs[i] for i, s in ps.instr_step.items()
                   if s == stage]
            if ops:
                stage_ops[stage] = ops

        self.ov = "o"
        rdy_fns: dict[int, str] = {}
        ex_fns: dict[int, str] = {}
        try:
            for stage, ops in stage_ops.items():
                if any(self._is_streamlike(i) for i in ops):
                    fname = f"_p{fid}r{stage}"
                    if self.batched:
                        self._emit_stage_fn(
                            em, fname, None,
                            lambda b: [self.ready_check(b, i,
                                                        fail="return False")
                                       for i in ops] and None,
                            tail="return True")
                    else:
                        em.put(f"def {fname}(o):")
                        em.indent += 1
                        for instr in ops:
                            self.ready_check(em, instr, fail="return False")
                        em.put("return True")
                        em.indent -= 1
                        em.put("")
                    rdy_fns[stage] = fname
                fname = f"_p{fid}x{stage}"
                if self.batched:
                    self._emit_stage_fn(
                        em, fname, f"# {block_name} stage {stage}",
                        lambda b: [self.exec_instr(b, i)
                                   for i in ops] and None,
                        tail="return None")
                else:
                    em.put(f"def {fname}(o):")
                    em.indent += 1
                    em.put(f"# {block_name} stage {stage}")
                    for instr in ops:
                        self.exec_instr(em, instr)
                    em.put("return None")
                    em.indent -= 1
                    em.put("")
                ex_fns[stage] = fname
        finally:
            self.ov = None

        rdy_tbl = ", ".join(f"{s}: {f}" for s, f in rdy_fns.items())
        ex_tbl = ", ".join(f"{s}: {f}" for s, f in ex_fns.items())
        fname = f"_pipe{fid}"
        ok = ps.ok.name if ps.ok is not None else None
        em.put(f"_p{fid}rd = {{{rdy_tbl}}}")
        em.put(f"_p{fid}ex = {{{ex_tbl}}}")
        if self.batched:
            return self._pipe_protocol_batched(em, fid, fname, block_name,
                                               ps, rdy_fns, ex_fns, ok)
        em.put(f"def {fname}():")
        em.indent += 1
        em.put(f"# pipelined block {block_name!r} "
               f"(ii={ps.ii}, latency={ps.latency})")
        em.put("inflight = P._inflight")
        em.put(f"_rd = _p{fid}rd")
        em.put(f"_ex = _p{fid}ex")
        # a handshake stuck mid-pipeline stalls everything
        em.put("for it in inflight:")
        em.indent += 1
        em.put("if it['squashed']:")
        em.indent += 1
        em.put("continue")
        em.indent -= 1
        em.put("r = _rd.get(it['stage'])")
        em.put("if r is not None and not r(it['overlay']):")
        em.indent += 1
        em.put("return 'stalled'")
        em.indent -= 2
        # initiation: starvation skips this cycle's initiation (a bubble)
        em.put("new_iter = None")
        em.put(f"if not P._draining and P._since_init + 1 >= {ps.ii}:")
        em.indent += 1
        em.put("o = {}")
        rdy0 = rdy_fns.get(0)
        if rdy0 is not None:
            em.put(f"if {rdy0}(o):")
            em.indent += 1
            em.put("new_iter = {'stage': 0, 'overlay': o, "
                   "'squashed': False}")
            em.indent -= 1
            em.put("elif not inflight:")
            em.indent += 1
            em.put("return 'stalled'  # nothing to advance: pipeline idles")
            em.indent -= 1
        else:
            em.put("new_iter = {'stage': 0, 'overlay': o, "
                   "'squashed': False}")
        em.indent -= 1
        em.put("for it in inflight:")
        em.indent += 1
        em.put("if it['squashed']:")
        em.indent += 1
        em.put("continue")
        em.indent -= 1
        em.put("f = _ex.get(it['stage'])")
        em.put("if f is not None:")
        em.indent += 1
        em.put("f(it['overlay'])")
        em.indent -= 2
        em.put("if new_iter is not None:")
        em.indent += 1
        ex0 = ex_fns.get(0)
        if ex0 is not None:
            em.put(f"{ex0}(new_iter['overlay'])")
        if ok is not None:
            em.put(f"if (new_iter['overlay'][{ok!r}] if {ok!r} in "
                   f"new_iter['overlay'] else E.get({ok!r}, 0)) == 0:")
            em.indent += 1
            em.put("new_iter['squashed'] = True")
            em.put("P._draining = True")
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            em.put("P.iterations_started += 1")
            em.indent -= 1
        else:
            em.put("P.iterations_started += 1")
        em.put("inflight.append(new_iter)")
        em.put("P._since_init = 0")
        em.indent -= 1
        em.put("else:")
        em.indent += 1
        em.put("P._since_init += 1")
        em.indent -= 1
        em.put("for it in inflight:")
        em.indent += 1
        em.put("it['stage'] += 1")
        em.indent -= 1
        em.put(f"P._inflight = [it for it in inflight if it['stage'] < "
               f"{ps.latency} and not it['squashed']]")
        # commit end-of-cycle register/memory writes
        em.put("_pel = P._pending_env")
        em.put("if _pel:")
        em.indent += 1
        em.put("for name, value in _pel:")
        em.indent += 1
        em.put("E[name] = value")
        em.indent -= 1
        em.put("_pel.clear()")
        em.indent -= 1
        em.put("_pml = P._pending_mem")
        em.put("if _pml:")
        em.indent += 1
        em.put("_mems = P.memories")
        em.put("for mem_name, idx, value in _pml:")
        em.indent += 1
        em.put("_mems[mem_name][idx] = value")
        em.indent -= 1
        em.put("_pml.clear()")
        em.indent -= 1
        em.put("if P._draining and not P._inflight:")
        em.indent += 1
        em.put(f"P._enter_block({ps.exit_block!r})")
        em.indent -= 1
        em.put("return 'active'")
        em.indent -= 1
        em.put("")
        return fname

    def _emit_stage_fn(self, em: _Emitter, fname: str, comment: str | None,
                       emit_body, tail: str) -> None:
        """Batched pipeline stage function: same body as the scalar stage
        function, wrapped in per-lane aliases and taking the lane index
        explicitly (stage functions run per (lane, in-flight iteration))."""
        body = _Emitter()
        body.indent = em.indent + 1  # inside `def`
        if comment:
            body.put(comment)
        emit_body(body)
        body.put(tail)
        em.put(f"def {fname}(l, o):")
        em.indent += 1
        for line in self.lane_aliases(body.lines):
            em.put(line)
        em.indent -= 1
        em.lines.extend(body.lines)
        em.put("")

    def _pipe_protocol_batched(self, em: _Emitter, fid: int, fname: str,
                               block_name: str, ps, rdy_fns, ex_fns,
                               ok) -> str:
        """Lane-looped initiation/squash/drain protocol. Each lane replays
        exactly the scalar compiled protocol against its own ``_inflight``
        list; a stalling lane parks (status slot) without blocking
        siblings."""
        em.put(f"def {fname}(ls, _st):")
        em.indent += 1
        em.put(f"# pipelined block {block_name!r} "
               f"(ii={ps.ii}, latency={ps.latency}) [batched]")
        em.put(f"_rd = _p{fid}rd")
        em.put(f"_ex = _p{fid}ex")
        em.put("for l in ls:")
        em.indent += 1
        em.put("P = _PN[l]")
        em.put("E = _EN[l]")
        em.put("inflight = P._inflight")
        # a handshake stuck mid-pipeline stalls everything (in this lane)
        em.put("_ok = True")
        em.put("for it in inflight:")
        em.indent += 1
        em.put("if it['squashed']:")
        em.indent += 1
        em.put("continue")
        em.indent -= 1
        em.put("r = _rd.get(it['stage'])")
        em.put("if r is not None and not r(l, it['overlay']):")
        em.indent += 1
        em.put("_ok = False")
        em.put("break")
        em.indent -= 2
        em.put("if not _ok:")
        em.indent += 1
        em.put("_st[l] = 'stalled'")
        em.put("continue")
        em.indent -= 1
        # initiation: starvation skips this cycle's initiation (a bubble)
        em.put("new_iter = None")
        em.put(f"if not P._draining and P._since_init + 1 >= {ps.ii}:")
        em.indent += 1
        em.put("o = {}")
        rdy0 = rdy_fns.get(0)
        if rdy0 is not None:
            em.put(f"if {rdy0}(l, o):")
            em.indent += 1
            em.put("new_iter = {'stage': 0, 'overlay': o, "
                   "'squashed': False}")
            em.indent -= 1
            em.put("elif not inflight:")
            em.indent += 1
            em.put("_st[l] = 'stalled'  # nothing to advance: lane idles")
            em.put("continue")
            em.indent -= 1
        else:
            em.put("new_iter = {'stage': 0, 'overlay': o, "
                   "'squashed': False}")
        em.indent -= 1
        em.put("for it in inflight:")
        em.indent += 1
        em.put("if it['squashed']:")
        em.indent += 1
        em.put("continue")
        em.indent -= 1
        em.put("f = _ex.get(it['stage'])")
        em.put("if f is not None:")
        em.indent += 1
        em.put("f(l, it['overlay'])")
        em.indent -= 2
        em.put("if new_iter is not None:")
        em.indent += 1
        ex0 = ex_fns.get(0)
        if ex0 is not None:
            em.put(f"{ex0}(l, new_iter['overlay'])")
        if ok is not None:
            em.put(f"if (new_iter['overlay'][{ok!r}] if {ok!r} in "
                   f"new_iter['overlay'] else E.get({ok!r}, 0)) == 0:")
            em.indent += 1
            em.put("new_iter['squashed'] = True")
            em.put("P._draining = True")
            em.indent -= 1
            em.put("else:")
            em.indent += 1
            em.put("P.iterations_started += 1")
            em.indent -= 1
        else:
            em.put("P.iterations_started += 1")
        em.put("inflight.append(new_iter)")
        em.put("P._since_init = 0")
        em.indent -= 1
        em.put("else:")
        em.indent += 1
        em.put("P._since_init += 1")
        em.indent -= 1
        em.put("for it in inflight:")
        em.indent += 1
        em.put("it['stage'] += 1")
        em.indent -= 1
        em.put(f"P._inflight = [it for it in inflight if it['stage'] < "
               f"{ps.latency} and not it['squashed']]")
        # commit end-of-cycle register/memory writes (this lane only)
        em.put("_pel = P._pending_env")
        em.put("if _pel:")
        em.indent += 1
        em.put("for name, value in _pel:")
        em.indent += 1
        em.put("E[name] = value")
        em.indent -= 1
        em.put("_pel.clear()")
        em.indent -= 1
        em.put("_pml = P._pending_mem")
        em.put("if _pml:")
        em.indent += 1
        em.put("_mems = P.memories")
        em.put("for mem_name, idx, value in _pml:")
        em.indent += 1
        em.put("_mems[mem_name][idx] = value")
        em.indent -= 1
        em.put("_pml.clear()")
        em.indent -= 1
        em.put("if P._draining and not P._inflight:")
        em.indent += 1
        em.put(f"P._enter_block({ps.exit_block!r})")
        em.indent -= 1
        em.put("_st[l] = 'active'")
        em.indent -= 2
        em.put("")
        return fname

    # ---- whole schedule ---------------------------------------------------------

    def generate(self) -> str:
        body = _Emitter()
        body.indent = 1
        table: dict[str, list[str]] = {}
        pipe_table: dict[str, str] = {}
        fid = 0
        for block_name in self.func.blocks:
            if block_name in self.fsched.pipelines:
                pipe_table[block_name] = self.pipe_fn(body, fid, block_name)
                fid += 1
                continue
            bs = self.fsched.blocks.get(block_name)
            if bs is None:
                continue
            fns = []
            for step in range(bs.length):
                fns.append(self.step_fn(body, fid, block_name, step))
                fid += 1
            table[block_name] = fns

        em = _Emitter()
        if self.batched:
            em.put(f"# batched (SoA lanes) cycle model of process "
                   f"{self.name!r} ({fid} step/pipeline functions)")
            em.put("def _build_batched(bx):")
            em.indent += 1
            em.put("_PN = bx.lanes")
            em.put("_EN = [p.env for p in _PN]")
            em.put("_EXTN = [p.ext_funcs.get('ext_hdl', _IDENT) "
                   "for p in _PN]")
            em.put("_PENDN = [p._pending_env.append for p in _PN]")
            em.put("_PENDMN = [p._pending_mem.append for p in _PN]")
            for (kind, name), local in self.channels.items():
                src = "streams" if kind == "stream" else "taps"
                em.put(f"{local}N = [p.{src}[{name!r}] for p in _PN]")
                em.put(f"{local}_qN = [c.queue for c in {local}N]")
                em.put(f"{local}_popN = [c.pop for c in {local}N]")
                em.put(f"{local}_pushN = [c.push for c in {local}N]")
                em.put(f"{local}_canN = [c.can_push for c in {local}N]")
                em.put(f"{local}_closeN = [c.close for c in {local}N]")
                # widths are a property of the design, identical per lane
                em.put(f"{local}_m = (1 << {local}N[0].width) - 1")
            for name, local in self.mem_locals.items():
                em.put(f"{local}N = [p.memories[{name!r}] for p in _PN]")
            em.put("")
        else:
            em.put(f"# compiled cycle model of process {self.name!r} "
                   f"({fid} step/pipeline functions)")
            em.put("def _build(pe):")
            em.indent += 1
            em.put("P = pe")
            em.put("E = pe.env")
            em.put("_div = pe._sc_div")
            em.put("_mod = pe._sc_mod")
            em.put("_ext = pe.ext_funcs.get('ext_hdl', _IDENT)")
            em.put("_pend = pe._pending_env.append")
            em.put("_pendm = pe._pending_mem.append")
            for (kind, name), local in self.channels.items():
                src = "streams" if kind == "stream" else "taps"
                em.put(f"{local} = pe.{src}[{name!r}]")
                em.put(f"{local}_q = {local}.queue")
                em.put(f"{local}_pop = {local}.pop")
                em.put(f"{local}_push = {local}.push")
                em.put(f"{local}_can = {local}.can_push")
                em.put(f"{local}_close = {local}.close")
                em.put(f"{local}_m = (1 << {local}.width) - 1")
            for name, local in self.mem_locals.items():
                em.put(f"{local} = pe.memories[{name!r}]")
            em.put("")
        em.lines.extend(body.lines)
        rows = []
        for block_name, fns in table.items():
            rows.append(f"{block_name!r}: ({', '.join(fns)}"
                        f"{',' if len(fns) == 1 else ''})")
        prows = [f"{name!r}: {fn}" for name, fn in pipe_table.items()]
        em.put(f"return {{{', '.join(rows)}}}, {{{', '.join(prows)}}}")
        em.indent -= 1
        return "\n".join(em.lines) + "\n"


def _schedule_digest(fsched: FunctionSchedule) -> str:
    """Deterministic textual identity of everything the codegen consumes."""
    func = fsched.func
    parts = [func.name, func.entry]
    parts.append(repr(sorted(
        (n, t.width, t.signed) for n, t in func.scalars.items())))
    parts.append(repr(sorted(
        (n, a.size, a.elem.width, a.elem.signed, tuple(a.init or ()))
        for n, a in func.arrays.items())))
    for bname in sorted(func.blocks):
        block = func.blocks[bname]
        parts.append(f"== {bname}")
        parts.append(str(block.term))
        for instr in block.instrs:
            parts.append(repr(instr.op.value))
            parts.append(repr(instr.dests))
            parts.append(repr(instr.args))
            parts.append(repr(sorted(
                (k, repr(v)) for k, v in instr.attrs.items())))
        bs = fsched.blocks.get(bname)
        if bs is None:
            parts.append("pipelined")
        else:
            parts.append(repr((bs.length, bs.steps)))
        ps = fsched.pipelines.get(bname)
        if ps is not None:
            parts.append(repr((ps.header, ps.exit_block,
                               ps.ok.name if ps.ok is not None else None,
                               ps.ii, ps.latency,
                               tuple(ps.instr_step.items()))))
            for instr in ps.instrs:
                parts.append(repr(instr.op.value))
                parts.append(repr(instr.dests))
                parts.append(repr(instr.args))
                parts.append(repr(sorted(
                    (k, repr(v)) for k, v in instr.attrs.items())))
    return "\n".join(parts)


def generate_sched_source(fsched: FunctionSchedule) -> str:
    """Generate (uncached) compiled cycle-model source for ``fsched``."""
    return _SchedCompiler(fsched).generate()


def sched_exec_source(fsched: FunctionSchedule, cache=None) -> str:
    """Cached variant of :func:`generate_sched_source`."""
    return cached_source(
        "sched",
        (_schedule_digest(fsched),),
        lambda: generate_sched_source(fsched),
        cache=cache,
    )


def generate_batched_sched_source(fsched: FunctionSchedule) -> str:
    """Generate (uncached) N-lane structure-of-arrays source for
    ``fsched``. The emitted module is lane-count independent: the batch
    width is fixed only when ``_build_batched`` binds a concrete lane
    list, so one cached source serves every batch size."""
    return _SchedCompiler(fsched, batched=True).generate()


def batched_sched_source(fsched: FunctionSchedule, cache=None) -> str:
    """Cached variant of :func:`generate_batched_sched_source`.

    Cached under the distinct ``sched-batch`` kind — the fingerprint
    namespace guarantees scalar and batched source can never alias in the
    in-process memo or the disk cache even though both are keyed by the
    same schedule digest.
    """
    return cached_source(
        "sched-batch",
        (_schedule_digest(fsched),),
        lambda: generate_batched_sched_source(fsched),
        cache=cache,
    )


class CompiledProcessExec(ProcessExec):
    """Hybrid :class:`ProcessExec` with blocks compiled to bytecode.

    ``_tick_seq`` dispatches to a compiled per-``(block, step)`` function
    and ``_tick_pipe`` to a compiled per-pipeline tick function; any block
    the codegen skipped falls back to the interpreted path mid-run (same
    semantics, shared state). Raises :class:`SimCompileError` when the
    schedule cannot be specialized.
    """

    backend = "compiled"

    def __init__(
        self,
        fsched: FunctionSchedule,
        streams: dict[str, Channel],
        taps: dict[str, Channel] | None = None,
        ext_funcs=None,
        name: str | None = None,
        cache=None,
    ) -> None:
        super().__init__(fsched, streams, taps, ext_funcs, name)
        source = sched_exec_source(fsched, cache=cache)
        self.source = source
        code = compile_source(source, f"<simc-sched:{self.func.name}>")
        ns = {"__builtins__": {}, "_IDENT": _identity, "_len": len}
        exec(code, ns)
        try:
            self._seq_fns, self._pipe_fns = ns["_build"](self)
        except KeyError as exc:
            # an unbound tap channel the interpreter would only touch on
            # first use; fall back so the lazier behaviour is preserved
            raise SimCompileError(
                f"{self.name}: cannot bind channel {exc} during "
                "specialization", code="RPR-K021") from exc

    # _sc_div/_sc_mod (referenced from generated code) are inherited from
    # ProcessExec so interpreted lanes can serve batched generated code too.

    # ---- clocking --------------------------------------------------------------

    def _tick_seq(self) -> str:
        fns = self._seq_fns.get(self.block)
        if fns is None:
            return ProcessExec._tick_seq(self)
        return fns[self.step]()

    def _tick_pipe(self) -> str:
        fn = self._pipe_fns.get(self.block)
        if fn is None:
            return ProcessExec._tick_pipe(self)
        return fn()


class BatchedProcessExec:
    """N interpreter lanes advanced in lockstep by generated SoA code.

    Each lane is a plain :class:`ProcessExec` (so fault hooks —
    ``upset_register``, ``quarantine``, channel fault chains — and
    ``trace()`` work per lane, unchanged), but clocking goes through one
    generated function per ``(block, step)`` / pipeline that loops over
    exactly the lanes currently parked there. Lanes whose schedule
    position the codegen skipped fall back to the interpreted tick,
    bit-identically. A lane that finishes, stalls, aborts upstream or is
    quarantined simply stops appearing in the lane lists the driver
    passes in — siblings never wait for it.

    The contract is the backbone of the equivalence suite: after any
    number of ``tick_lanes`` calls, lane ``i`` is byte-identical (env,
    memories, counters, channel traffic) to a scalar run fed the same
    stimulus.
    """

    backend = "batched"

    def __init__(
        self,
        fsched: FunctionSchedule,
        lane_streams: list[dict[str, Channel]],
        lane_taps: list[dict[str, Channel] | None] | None = None,
        lane_ext_funcs: list | None = None,
        name: str | None = None,
        cache=None,
    ) -> None:
        n = len(lane_streams)
        if n < 1:
            raise SimCompileError(
                f"{name or fsched.func.name}: batch needs at least one "
                "lane", code="RPR-K030")
        taps_l = lane_taps if lane_taps is not None else [None] * n
        ext_l = lane_ext_funcs if lane_ext_funcs is not None else [None] * n
        self.fsched = fsched
        self.lanes: list[ProcessExec] = [
            ProcessExec(fsched, lane_streams[i], taps_l[i], ext_l[i], name)
            for i in range(n)
        ]
        for pe in self.lanes:
            pe.backend = "batched"  # shadow the class attr for stats
        self.name = self.lanes[0].name
        self.n = n
        source = batched_sched_source(fsched, cache=cache)
        self.source = source
        code = compile_source(source,
                              f"<simc-sched-batch:{fsched.func.name}>")
        ns = {"__builtins__": {}, "_IDENT": _identity, "_len": len}
        exec(code, ns)
        try:
            self._seq_fns, self._pipe_fns = ns["_build_batched"](self)
        except KeyError as exc:
            # an unbound tap channel the interpreter would only touch on
            # first use; fall back so the lazier behaviour is preserved
            raise SimCompileError(
                f"{self.name}: cannot bind channel {exc} during batched "
                "specialization", code="RPR-K021") from exc

    def tick_lanes(self, lane_ids, statuses: list) -> None:
        """Advance every lane in ``lane_ids`` one clock.

        ``statuses[l]`` receives ``'active'`` / ``'stalled'`` / ``'done'``
        — exactly what ``ProcessExec.tick()`` would have returned for that
        lane. Lanes are grouped by schedule position so each generated
        function is entered once per cycle, however many lanes sit there.
        """
        lanes = self.lanes
        groups: dict = {}
        for l in lane_ids:
            pe = lanes[l]
            if pe.done:
                statuses[l] = "done"
                continue
            pe.cycles += 1
            if pe.mode == "seq":
                fns = self._seq_fns.get(pe.block)
                if fns is None:  # interpreted fallback, per lane
                    statuses[l] = pe._tick_seq()
                    if statuses[l] == "stalled":
                        pe.stall_cycles += 1
                    continue
                key = fns[pe.step]
            else:
                key = self._pipe_fns.get(pe.block)
                if key is None:
                    statuses[l] = pe._tick_pipe()
                    if statuses[l] == "stalled":
                        pe.stall_cycles += 1
                    continue
            grp = groups.get(key)
            if grp is None:
                groups[key] = [l]
            else:
                grp.append(l)
        for fn, ls in groups.items():
            fn(ls, statuses)
            for l in ls:
                if statuses[l] == "stalled":
                    lanes[l].stall_cycles += 1

    def tick_all(self) -> list:
        """Convenience: tick every lane, returning the status list."""
        statuses: list = [None] * self.n
        self.tick_lanes(range(self.n), statuses)
        return statuses
