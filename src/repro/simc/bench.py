"""Perf-bench harness for the compiled-simulation backend.

Benches the interpreted simulators against their :mod:`repro.simc`
specializations on the paper's three workloads (loopback chain, edge
detector, Triple-DES) plus a standalone arithmetic RTL kernel, asserting
bit-identity between the legs before trusting any timing. Emits a JSON
document (``BENCH_sim.json``) whose entries carry *speedup ratios* — a
machine-independent quantity — so a committed baseline can gate CI
without caring how fast the runner is.

Entry points:

* :func:`run_bench` — run the suite, return the JSON-serializable dict;
* :func:`compare_bench` — diff a current run against a baseline, listing
  entries whose speedup regressed by more than ``threshold``;
* ``repro bench`` (:mod:`repro.cli`) — the command-line wrapper CI runs.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.errors import ReproError

#: bump when the JSON layout changes incompatibly
BENCH_SCHEMA = 1

#: relative speedup loss (vs baseline) that counts as a regression
DEFAULT_THRESHOLD = 0.30


class BenchMismatchError(ReproError):
    """The interpreted and compiled legs of a bench disagreed."""

    code_prefix = "RPR-M"


def _time_best(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time; returns (seconds, last result)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _hw_signature(res) -> tuple:
    """The observable outcome of an :func:`repro.runtime.hwexec.execute`
    run — everything a backend swap must preserve."""
    return (
        res.completed,
        res.reason,
        res.cycles,
        {k: list(v) for k, v in sorted(res.outputs.items())},
        sorted((name, site.ordinal, site.expr_text)
               for name, site in res.failures),
        {name: {k: v for k, v in st.items() if k != "backend"}
         for name, st in sorted(res.process_stats.items())},
    )


def _bench_hwexec(name: str, build_app, repeats: int) -> dict:
    """Bench one application end-to-end through ``execute()``.

    Synthesis and codegen are paid once up front (a warm-up run per
    backend), so the timed region measures simulation, not compilation —
    the quantity the compiled backend actually changes.
    """
    from repro.core.synth import synthesize
    from repro.runtime.hwexec import execute

    image = synthesize(build_app(), assertions="optimized")

    def run(backend: str):
        return execute(image, sim_backend=backend)

    sig = {}
    for backend in ("interp", "compiled"):
        res = run(backend)  # warm-up: codegen memo + import costs
        if backend == "compiled" and res.backend_diagnostics:
            raise BenchMismatchError(
                f"{name}: compiled leg silently fell back to the "
                f"interpreter: {res.backend_diagnostics}", code="RPR-M001")
        sig[backend] = _hw_signature(res)
    if sig["interp"] != sig["compiled"]:
        raise BenchMismatchError(
            f"{name}: interp/compiled execute() results differ:\n"
            f"  interp:   {sig['interp']}\n"
            f"  compiled: {sig['compiled']}", code="RPR-M002")

    interp_s, res = _time_best(lambda: run("interp"), repeats)
    compiled_s, _ = _time_best(lambda: run("compiled"), repeats)
    return {
        "name": name,
        "kind": "hwexec",
        "cycles": res.cycles,
        "interp_s": round(interp_s, 6),
        "compiled_s": round(compiled_s, 6),
        "speedup": round(interp_s / compiled_s, 3),
    }


def _bench_batched(name: str, build_app, n_lanes: int,
                   repeats: int) -> dict:
    """Bench the multi-seed shape batching exists for: N independent runs
    of one image (a campaign's scenarios at one level, a difftest seed
    range, a sweep's replication points).

    ``interp_s`` times the interpreter loop — N scalar ``execute()``
    calls, the pre-batching campaign inner loop — against one
    ``execute_batch`` call advancing all N lanes through the generated
    structure-of-arrays tick functions (``compiled_s``), with the scalar
    *compiled* loop recorded alongside (``scalar_compiled_s``) so the
    dispatch-amortization win is visible separately from the
    compiled-vs-interp win. Lane results are equality-checked against
    the scalar run before any timing is trusted.
    """
    from repro.core.synth import synthesize
    from repro.runtime.hwexec import LaneSpec, execute, execute_batch

    image = synthesize(build_app(), assertions="optimized")

    def scalar_loop(backend: str):
        return [execute(image, sim_backend=backend)
                for _ in range(n_lanes)]

    def batched():
        return execute_batch(image,
                             [LaneSpec() for _ in range(n_lanes)])

    ref = _hw_signature(execute(image, sim_backend="interp"))
    lanes = batched()  # warm-up: batched codegen memo
    for i, res in enumerate(lanes):
        for st in res.process_stats.values():
            if st["backend"] != "batched":
                raise BenchMismatchError(
                    f"{name}: lane {i} silently fell back to the "
                    f"{st['backend']} backend: "
                    f"{res.backend_diagnostics}", code="RPR-M004")
        if _hw_signature(res) != ref:
            raise BenchMismatchError(
                f"{name}: batched lane {i} differs from the scalar "
                f"interpreter run:\n  interp:  {ref}\n"
                f"  batched: {_hw_signature(res)}", code="RPR-M005")

    interp_s, res = _time_best(lambda: scalar_loop("interp"), repeats)
    scalar_compiled_s, _ = _time_best(lambda: scalar_loop("compiled"),
                                      repeats)
    compiled_s, _ = _time_best(batched, repeats)
    return {
        "name": name,
        "kind": "batch",
        "lanes": n_lanes,
        "cycles": sum(r.cycles for r in res),
        "interp_s": round(interp_s, 6),
        "scalar_compiled_s": round(scalar_compiled_s, 6),
        "compiled_s": round(compiled_s, 6),
        "speedup": round(interp_s / compiled_s, 3),
        "batch_speedup": round(scalar_compiled_s / compiled_s, 3),
    }


_RTL_KERNEL = """
void k(co_stream input, co_stream output) {
  uint32 x; uint32 acc; int32 s;
  acc = 0;
  while (co_stream_read(input, &x)) {
    s = (int32)x - 1000;
    acc = acc + ((s < 0) ? (uint32)(-s) : (uint32)s);
    acc = (acc * 7) ^ (acc >> 3);
    co_stream_write(output, (x * 13 + acc) & 65535);
  }
  co_stream_write(output, acc);
  co_stream_close(output);
}
"""


def _bench_rtl(name: str, data: list[int], repeats: int) -> dict:
    """Bench the raw RTL simulators on a standalone sequential module.

    The module is synthesized without assertions so both simulators bind
    exactly two stream ports — this isolates the RtlSim tick loop itself
    (the hwexec benches above cover the full mixed fabric).
    """
    from repro import simc
    from repro.core.synth import synthesize
    from repro.hls.cyclemodel import Channel
    from repro.runtime.taskgraph import Application

    app = Application("rtlbench")
    app.add_c_process(_RTL_KERNEL, name="k", filename="rtlbench.c")
    app.feed("in", "k.input", data=data)
    app.sink("out", "k.output")
    cp = synthesize(app, assertions="none").compiled["k"]

    def run(backend: str):
        cin = Channel("i", depth=len(data) + 2)
        cout = Channel("o", unbounded=True)
        for v in data:
            cin.push(v)
        cin.close()
        sim = simc.make_rtl_sim(
            cp.rtl, {"input": cin, "output": cout},
            backend=backend, strict=True)
        sim.run(max_cycles=10_000_000)
        return (sim.cycles, sim.stalled, sim.taps, list(cout.queue),
                cout.closed)

    if run("interp") != run("compiled"):
        raise BenchMismatchError(
            f"{name}: interp/compiled RTL simulation differs",
            code="RPR-M003")

    interp_s, res = _time_best(lambda: run("interp"), repeats)
    compiled_s, _ = _time_best(lambda: run("compiled"), repeats)
    return {
        "name": name,
        "kind": "rtl",
        "cycles": res[0],
        "interp_s": round(interp_s, 6),
        "compiled_s": round(compiled_s, 6),
        "speedup": round(interp_s / compiled_s, 3),
    }


def _suite(quick: bool) -> list[tuple[str, Callable[[], dict], int]]:
    # quick mode trades timing stability (fewer repeats), NOT workload
    # size — the speedup ratios stay comparable to a full-mode baseline,
    # which is what lets CI's --quick run gate against the committed
    # BENCH_sim.json.
    from repro.apps.edge_detect import build_edge_app
    from repro.apps.loopback import build_loopback
    from repro.apps.tripledes import build_tdes_app

    repeats = 1 if quick else 3
    loop_data = list(range(1, 513))
    edge_wh = (32, 16)
    text = b"Now is the time for all good men to come to the aid!"
    rtl_data = [i * 17 % 4096 for i in range(4000)]

    return [
        ("loopback3",
         lambda: _bench_hwexec(
             "loopback3", lambda: build_loopback(3, data=loop_data),
             repeats),
         repeats),
        ("edge_detect",
         lambda: _bench_hwexec(
             "edge_detect",
             lambda: build_edge_app(width=edge_wh[0], height=edge_wh[1]),
             repeats),
         repeats),
        ("tripledes",
         lambda: _bench_hwexec(
             "tripledes", lambda: build_tdes_app(text), repeats),
         repeats),
        ("rtl_kernel",
         lambda: _bench_rtl("rtl_kernel", rtl_data, repeats),
         repeats),
        ("loopback_batch",
         lambda: _bench_batched(
             "loopback_batch",
             lambda: build_loopback(3, data=list(range(1, 129))),
             16, repeats),
         repeats),
    ]


def run_bench(quick: bool = False) -> dict:
    """Run the full perf-bench suite; every entry is equality-checked
    between backends before its timing is recorded."""
    entries = [fn() for _, fn, _ in _suite(quick)]
    speedups = [e["speedup"] for e in entries]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "entries": entries,
        "geomean_speedup": round(geomean, 3),
    }


def render_bench(doc: dict) -> str:
    """Human-readable table for a :func:`run_bench` document."""
    lines = [
        "SIMULATION BACKEND BENCH (interp vs compiled)"
        + ("  [quick]" if doc.get("quick") else ""),
        f"{'name':<14} {'kind':<7} {'cycles':>9} "
        f"{'interp_s':>10} {'compiled_s':>11} {'speedup':>8}",
    ]
    for e in doc["entries"]:
        lines.append(
            f"{e['name']:<14} {e['kind']:<7} {e['cycles']:>9} "
            f"{e['interp_s']:>10.4f} {e['compiled_s']:>11.4f} "
            f"{e['speedup']:>7.2f}x")
    lines.append(f"geomean speedup: {doc['geomean_speedup']:.2f}x")
    return "\n".join(lines)


def compare_bench(current: dict, baseline: dict,
                  threshold: float = DEFAULT_THRESHOLD,
                  notes: list[str] | None = None) -> list[str]:
    """Return regression messages (empty list = pass).

    An entry regresses when its speedup dropped more than ``threshold``
    (relative) below the baseline's, or disappeared from the run. An
    entry the baseline lacks — the normal state right after a new bench
    lands — is NOT a failure: it is recorded only, with an explanatory
    line appended to ``notes`` (when given), and starts gating once the
    baseline is regenerated to include it. A baseline entry without a
    usable ``speedup`` likewise notes-and-skips instead of raising — a
    hand-edited or truncated baseline must degrade the gate, not crash
    it.
    """
    if baseline.get("schema") != current.get("schema"):
        return [
            f"bench schema changed ({baseline.get('schema')} -> "
            f"{current.get('schema')}); regenerate the baseline"]

    def note(text: str) -> None:
        if notes is not None:
            notes.append(text)

    base = {(e["name"], e["kind"]): e for e in baseline.get("entries", [])
            if "name" in e and "kind" in e}
    cur = {(e["name"], e["kind"]): e for e in current.get("entries", [])
           if "name" in e and "kind" in e}
    problems = []
    for key, be in sorted(base.items()):
        ce = cur.get(key)
        if ce is None:
            problems.append(f"{key[0]}/{key[1]}: missing from current run")
            continue
        base_speedup = be.get("speedup")
        cur_speedup = ce.get("speedup")
        if not isinstance(base_speedup, (int, float)) \
                or not isinstance(cur_speedup, (int, float)):
            note(f"{key[0]}/{key[1]}: baseline or current entry has no "
                 "usable speedup; not gated (regenerate the baseline)")
            continue
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            problems.append(
                f"{key[0]}/{key[1]}: speedup {cur_speedup:.2f}x below "
                f"floor {floor:.2f}x (baseline {base_speedup:.2f}x, "
                f"threshold {threshold:.0%})")
    for key in sorted(set(cur) - set(base)):
        note(f"{key[0]}/{key[1]}: no baseline entry; recorded only "
             "(regenerate the baseline to gate it)")
    return problems
