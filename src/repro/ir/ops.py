"""IR operation catalogue.

Each op carries scheduling metadata:

* ``latency`` — clock cycles the operation occupies (0 = purely
  combinational and chainable with other 0-latency ops in one state, up to
  the scheduler's chain-depth limit).
* ``resource`` — the resource class used for binding/sharing and for the
  platform area model. ``None`` means free (wires/constants).
* ``levels`` — combinational logic depth in LUT levels, used both to limit
  chaining and by the timing model's critical-path estimate.

Latency and level numbers are calibrated to the behaviour the paper
reports for Impulse-C on Stratix-II: block-RAM reads and stream handshakes
are synchronous (1 cycle), adders/comparators chain, multipliers are
registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpKind(str, Enum):
    # moves / casts
    MOV = "mov"
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    # bitwise
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # comparisons (result uint1)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # logical (operands uint1)
    LNOT = "lnot"
    SELECT = "select"  # select cond, a, b
    # memory
    LOAD = "load"    # dest <- array[idx]         attrs: array
    STORE = "store"  # array[idx] <- value        attrs: array
    # streams
    STREAM_READ = "stream_read"    # (ok, value) <- stream
    STREAM_WRITE = "stream_write"  # stream <- value
    STREAM_CLOSE = "stream_close"
    # verification
    ASSERT_CHECK = "assert_check"  # attrs: assertion (AssertionSite)
    TAP = "tap"  # attrs: channel — wire values into an assertion checker FIFO
    TAP_READ = "tap_read"  # (ok, v0..vn) <- tap channel; checker-side pop
    # foreign
    EXT_HDL = "ext_hdl"  # external HDL function call (paper Sec. 5.1)


@dataclass(frozen=True)
class OpInfo:
    kind: OpKind
    latency: int
    resource: str | None
    levels: int
    commutative: bool = False
    has_side_effect: bool = False


OP_TABLE: dict[OpKind, OpInfo] = {
    OpKind.MOV: OpInfo(OpKind.MOV, 0, None, 0),
    OpKind.TRUNC: OpInfo(OpKind.TRUNC, 0, None, 0),
    OpKind.ZEXT: OpInfo(OpKind.ZEXT, 0, None, 0),
    OpKind.SEXT: OpInfo(OpKind.SEXT, 0, None, 0),
    OpKind.ADD: OpInfo(OpKind.ADD, 0, "addsub", 1, commutative=True),
    OpKind.SUB: OpInfo(OpKind.SUB, 0, "addsub", 1),
    OpKind.MUL: OpInfo(OpKind.MUL, 1, "mult", 2, commutative=True),
    OpKind.DIV: OpInfo(OpKind.DIV, 4, "divide", 4),
    OpKind.MOD: OpInfo(OpKind.MOD, 4, "divide", 4),
    OpKind.NEG: OpInfo(OpKind.NEG, 0, "addsub", 1),
    OpKind.AND: OpInfo(OpKind.AND, 0, "logic", 1, commutative=True),
    OpKind.OR: OpInfo(OpKind.OR, 0, "logic", 1, commutative=True),
    OpKind.XOR: OpInfo(OpKind.XOR, 0, "logic", 1, commutative=True),
    OpKind.NOT: OpInfo(OpKind.NOT, 0, "logic", 1),
    OpKind.SHL: OpInfo(OpKind.SHL, 0, "shift", 1),
    OpKind.SHR: OpInfo(OpKind.SHR, 0, "shift", 1),
    OpKind.EQ: OpInfo(OpKind.EQ, 0, "compare", 1, commutative=True),
    OpKind.NE: OpInfo(OpKind.NE, 0, "compare", 1, commutative=True),
    OpKind.LT: OpInfo(OpKind.LT, 0, "compare", 1),
    OpKind.LE: OpInfo(OpKind.LE, 0, "compare", 1),
    OpKind.GT: OpInfo(OpKind.GT, 0, "compare", 1),
    OpKind.GE: OpInfo(OpKind.GE, 0, "compare", 1),
    # a logical inverter is absorbed into the consuming LUT: zero levels
    OpKind.LNOT: OpInfo(OpKind.LNOT, 0, "logic", 0),
    OpKind.SELECT: OpInfo(OpKind.SELECT, 0, "mux", 1),
    # Block-RAM reads are flow-through (unregistered M4K output): the value
    # chains combinationally in the same step, but the access occupies one
    # of the array's ports for that step.
    OpKind.LOAD: OpInfo(OpKind.LOAD, 0, "memport", 2, has_side_effect=False),
    OpKind.STORE: OpInfo(OpKind.STORE, 1, "memport", 0, has_side_effect=True),
    OpKind.STREAM_READ: OpInfo(OpKind.STREAM_READ, 1, "streamport", 0, has_side_effect=True),
    OpKind.STREAM_WRITE: OpInfo(OpKind.STREAM_WRITE, 1, "streamport", 0, has_side_effect=True),
    OpKind.STREAM_CLOSE: OpInfo(OpKind.STREAM_CLOSE, 1, "streamport", 0, has_side_effect=True),
    OpKind.ASSERT_CHECK: OpInfo(OpKind.ASSERT_CHECK, 0, None, 1, has_side_effect=True),
    OpKind.TAP: OpInfo(OpKind.TAP, 0, None, 0, has_side_effect=True),
    OpKind.TAP_READ: OpInfo(OpKind.TAP_READ, 1, "streamport", 0, has_side_effect=True),
    OpKind.EXT_HDL: OpInfo(OpKind.EXT_HDL, 1, "exthdl", 1, has_side_effect=True),
}

#: Comparison ops, useful to passes (width inference, fault injection).
COMPARISONS = {OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE}

#: Ops whose order relative to each other must be preserved (memory per
#: array handled separately; streams per stream likewise).
SIDE_EFFECT_OPS = {k for k, v in OP_TABLE.items() if v.has_side_effect}


def op_info(kind: OpKind) -> OpInfo:
    return OP_TABLE[kind]
