"""Shared evaluation semantics for IR operations.

Both the software-simulation interpreter (:mod:`repro.ir.interp`) and the
hardware cycle model (:mod:`repro.hls.cyclemodel`) evaluate operations
through these functions, so the two paths agree *by construction*. The one
sanctioned divergence is the ``force_width`` hook on :func:`compare`, used
by the translation-fault injector to reproduce the paper's Section 5.1 bug
(a 64-bit comparison erroneously synthesized at 5 bits).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.frontend.ctypes_ import CType, common_type
from repro.ir.ops import OpKind
from repro.utils.bitops import sign_extend, truncate


def interpret(pattern: int, ty: CType) -> int:
    """Bit pattern -> mathematical value under the type's signedness."""
    return sign_extend(pattern, ty.width) if ty.signed else truncate(pattern, ty.width)


def _common_operands(
    x: int, xty: CType, y: int, yty: CType
) -> tuple[int, int, CType]:
    ct = common_type(xty, yty)
    xv = interpret(truncate(interpret(x, xty), ct.width), ct)
    yv = interpret(truncate(interpret(y, yty), ct.width), ct)
    return xv, yv, ct


def binop(op: OpKind, x: int, xty: CType, y: int, yty: CType, where: str = "?") -> int:
    """Evaluate an arithmetic/bitwise/shift op; returns a bit pattern
    (caller truncates to the destination width on write-back)."""
    if op in (OpKind.SHL, OpKind.SHR):
        amt = truncate(y, yty.width) % 64
        if op == OpKind.SHL:
            # C promotes the left operand before shifting, so a negative
            # signed value shifts as its (sign-extended) value, not as its
            # source-width bit pattern; the generated RTL widens the
            # operand the same way. Found by repro.difftest (seed 151).
            return interpret(x, xty) << amt
        if xty.signed:
            return interpret(x, xty) >> amt
        return truncate(x, xty.width) >> amt

    xv, yv, ct = _common_operands(x, xty, y, yty)
    if op == OpKind.ADD:
        return xv + yv
    if op == OpKind.SUB:
        return xv - yv
    if op == OpKind.MUL:
        return xv * yv
    if op in (OpKind.DIV, OpKind.MOD):
        if yv == 0:
            raise SimulationError(f"{where}: division by zero", code="RPR-X010")
        q = abs(xv) // abs(yv)  # C truncates toward zero
        if (xv < 0) != (yv < 0):
            q = -q
        return q if op == OpKind.DIV else xv - q * yv
    if op == OpKind.AND:
        return truncate(xv, ct.width) & truncate(yv, ct.width)
    if op == OpKind.OR:
        return truncate(xv, ct.width) | truncate(yv, ct.width)
    if op == OpKind.XOR:
        return truncate(xv, ct.width) ^ truncate(yv, ct.width)
    raise SimulationError(f"{where}: {op} is not a binary arithmetic op", code="RPR-X011")


def compare(
    op: OpKind,
    x: int,
    xty: CType,
    y: int,
    yty: CType,
    force_width: int | None = None,
) -> int:
    """Evaluate a comparison to 0/1.

    ``force_width`` truncates both operands to that many bits *before*
    comparing (unsigned interpretation) — the faulty narrow comparison the
    paper's first in-circuit debugging example exposes. ``None`` (default)
    follows the C usual arithmetic conversions.
    """
    if force_width is not None:
        xv = truncate(interpret(x, xty), force_width)
        yv = truncate(interpret(y, yty), force_width)
    else:
        xv, yv, _ct = _common_operands(x, xty, y, yty)
    table = {
        OpKind.EQ: xv == yv,
        OpKind.NE: xv != yv,
        OpKind.LT: xv < yv,
        OpKind.LE: xv <= yv,
        OpKind.GT: xv > yv,
        OpKind.GE: xv >= yv,
    }
    return int(table[op])


def unop(op: OpKind, x: int, xty: CType) -> int:
    if op == OpKind.NEG:
        return -interpret(x, xty)
    if op == OpKind.NOT:
        return ~truncate(x, xty.width)
    if op == OpKind.LNOT:
        return int(truncate(x, xty.width) == 0)
    raise SimulationError(f"{op} is not a unary op", code="RPR-X012")


def cast(op: OpKind, x: int, xty: CType) -> int:
    """MOV/TRUNC/ZEXT/SEXT source-side normalization (pattern result)."""
    if op == OpKind.SEXT:
        return sign_extend(x, xty.width)
    return truncate(x, xty.width)
