"""IR transformation utilities shared by the assertion-synthesis passes.

Currently: dead-code elimination and block splitting. DCE matters for the
paper's numbers: after assertion parallelization moves a condition into a
checker process, the inline condition logic left in the application must
disappear, or the "optimized" variant would pay the assertion's area twice.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.instr import BasicBlock, Instr, Jump
from repro.ir.ops import OpKind


def eliminate_dead_code(func: IRFunction) -> int:
    """Remove side-effect-free instructions whose results are never used.

    Iterates to a fixpoint (removing one instruction may orphan its
    operands). Returns the number of instructions removed. Stream, memory
    write, tap and assert ops are never removed; loads are removable (a
    dead load frees its port slot, which is exactly what the optimized
    variants rely on).
    """
    removed = 0
    while True:
        used: set[str] = set()
        for block in func.blocks.values():
            for instr in block.instrs:
                for u in instr.uses():
                    used.add(u.name)
            if block.term is not None:
                for u in block.term.uses():
                    used.add(u.name)

        changed = False
        for block in func.blocks.values():
            kept: list[Instr] = []
            for instr in block.instrs:
                removable = (
                    not instr.info.has_side_effect
                    and instr.op != OpKind.STORE
                    and instr.dests
                    and all(d.name not in used for d in instr.dests)
                )
                if removable:
                    removed += 1
                    changed = True
                else:
                    kept.append(instr)
            block.instrs = kept
        if not changed:
            return removed


def split_block_at(
    func: IRFunction, block_name: str, index: int, cont_hint: str = "cont"
) -> BasicBlock:
    """Split ``block`` before instruction ``index``.

    The original block keeps instructions ``[:index]`` and jumps to the new
    continuation block, which receives ``[index:]`` and the original
    terminator. Returns the continuation block. Pipeline flags stay with
    the original header block.
    """
    block = func.blocks[block_name]
    cont = func.new_block(cont_hint)
    cont.instrs = block.instrs[index:]
    cont.term = block.term
    block.instrs = block.instrs[:index]
    block.term = Jump(cont.name)
    return cont
