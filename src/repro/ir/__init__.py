"""Typed three-address IR, CFG/dataflow analyses, verifier and interpreter."""

from repro.ir.cfg import CFG, Loop
from repro.ir.dataflow import DefUse, Liveness, condition_support, def_use, liveness
from repro.ir.function import IRFunction, IRModule
from repro.ir.instr import (
    AssertionSite,
    BasicBlock,
    Branch,
    Instr,
    Jump,
    Return,
    Terminator,
)
from repro.ir.interp import Interp, InterpResult, run_to_completion
from repro.ir.ops import COMPARISONS, OP_TABLE, OpInfo, OpKind, op_info
from repro.ir.values import ArrayDecl, Const, StreamParam, Temp, Value
from repro.ir.verify import verify_function, verify_module

__all__ = [
    "CFG",
    "Loop",
    "DefUse",
    "Liveness",
    "condition_support",
    "def_use",
    "liveness",
    "IRFunction",
    "IRModule",
    "AssertionSite",
    "BasicBlock",
    "Branch",
    "Instr",
    "Jump",
    "Return",
    "Terminator",
    "Interp",
    "InterpResult",
    "run_to_completion",
    "COMPARISONS",
    "OP_TABLE",
    "OpInfo",
    "OpKind",
    "op_info",
    "ArrayDecl",
    "Const",
    "StreamParam",
    "Temp",
    "Value",
    "verify_function",
    "verify_module",
]
