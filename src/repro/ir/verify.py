"""IR well-formedness verifier.

Run after lowering and after every transformation pass (the assertion
optimizations rewrite IR, so the verifier is the cheap guard that a pass
has not produced garbage).
"""

from __future__ import annotations

from repro.diagnostics.sink import DiagnosticSink
from repro.diagnostics.span import Span
from repro.errors import IRError, ReproError
from repro.ir.cfg import CFG
from repro.ir.function import IRFunction
from repro.ir.instr import Branch, Jump, Return
from repro.ir.ops import OpKind, op_info
from repro.ir.values import Const, Temp

_ARITY: dict[OpKind, tuple[int, int]] = {
    OpKind.MOV: (1, 1),
    OpKind.TRUNC: (1, 1),
    OpKind.ZEXT: (1, 1),
    OpKind.SEXT: (1, 1),
    OpKind.NEG: (1, 1),
    OpKind.NOT: (1, 1),
    OpKind.LNOT: (1, 1),
    OpKind.SELECT: (3, 3),
    OpKind.LOAD: (1, 1),
    OpKind.STORE: (2, 2),
    OpKind.STREAM_READ: (0, 0),
    OpKind.STREAM_WRITE: (1, 1),
    OpKind.STREAM_CLOSE: (0, 0),
    OpKind.ASSERT_CHECK: (1, 1),
    OpKind.TAP: (1, 64),
    OpKind.TAP_READ: (0, 0),
    OpKind.EXT_HDL: (1, 1),
}


def _instr_span(instr) -> Span | None:
    """Span for an instruction from the lowering-attached ``coord`` attr.

    The attr is a ``(file, line)`` tuple (that shape is load-bearing for
    the fault injector and instrumentation passes — do not change it).
    """
    coord = instr.attrs.get("coord")
    if not (isinstance(coord, tuple) and len(coord) == 2):
        return None
    file, line = coord
    if not line:
        return None
    return Span(file=str(file), line=int(line))


def verify_function(func: IRFunction,
                    sink: DiagnosticSink | None = None) -> None:
    """Raise :class:`IRError` on any malformation; silent when clean.

    With a collect-mode ``sink``, verification recovers per basic block so
    one pass reports every malformation in the function.
    """
    sink = sink if sink is not None else DiagnosticSink(strict=True)
    if func.entry not in func.blocks:
        raise IRError(f"{func.name}: entry block {func.entry!r} missing", code="RPR-I001")

    streams = set(func.stream_names())
    for bname, block in func.blocks.items():
        try:
            # recovery point: a malformed block doesn't stop the check of
            # its siblings
            _verify_block(func, bname, block, streams)
        except ReproError as exc:
            sink.capture(exc)

    # CFG-level checks: every reachable target exists (CFG.build raises),
    # and at least one block returns or the function loops forever by
    # design (stream-driven processes commonly never return).
    try:
        CFG.build(func)
    except ReproError as exc:
        sink.capture(exc)


def _verify_block(func: IRFunction, bname: str, block, streams: set) -> None:
    where = f"{func.name}/{bname}"
    if block.term is None:
        raise IRError(f"{where}: missing terminator", code="RPR-I002")
    if not isinstance(block.term, (Jump, Branch, Return)):
        raise IRError(f"{where}: unknown terminator {block.term!r}", code="RPR-I003")
    for idx, instr in enumerate(block.instrs):
        ctx = f"{where}[{idx}] {instr}"
        span = _instr_span(instr)
        info = op_info(instr.op)
        lo, hi = _ARITY.get(instr.op, (2, 2))
        if not (lo <= len(instr.args) <= hi):
            raise IRError(f"{ctx}: arity {len(instr.args)} not in [{lo},{hi}]", code="RPR-I004", span=span)
        if instr.op == OpKind.STREAM_READ:
            if len(instr.dests) != 2:
                raise IRError(f"{ctx}: stream_read needs (ok, value) dests", code="RPR-I005", span=span)
        elif instr.op == OpKind.TAP_READ:
            if len(instr.dests) < 1:
                raise IRError(f"{ctx}: tap_read needs (ok, values...) dests", code="RPR-I006", span=span)
            if "channel" not in instr.attrs:
                raise IRError(f"{ctx}: tap_read without channel", code="RPR-I007", span=span)
        elif instr.op in (OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE,
                          OpKind.STORE, OpKind.ASSERT_CHECK, OpKind.TAP):
            if instr.dests:
                raise IRError(f"{ctx}: op must not produce a value", code="RPR-I008", span=span)
        else:
            if len(instr.dests) != 1:
                raise IRError(f"{ctx}: op must produce exactly one value", code="RPR-I009", span=span)
        if instr.op in (OpKind.LOAD, OpKind.STORE):
            array = instr.attrs.get("array")
            if array not in func.arrays:
                raise IRError(f"{ctx}: unknown array {array!r}", code="RPR-I010", span=span)
        if instr.op in (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
                        OpKind.STREAM_CLOSE):
            stream = instr.attrs.get("stream")
            if stream not in streams:
                raise IRError(f"{ctx}: unknown stream {stream!r}", code="RPR-I011", span=span)
        if instr.op == OpKind.ASSERT_CHECK and "assertion" not in instr.attrs:
            raise IRError(f"{ctx}: assert_check without assertion site", code="RPR-I012", span=span)
        if instr.op == OpKind.TAP and "channel" not in instr.attrs:
            raise IRError(f"{ctx}: tap without channel", code="RPR-I013", span=span)
        for value in list(instr.args) + list(instr.dests):
            if isinstance(value, Temp):
                declared = func.scalars.get(value.name)
                if declared is None:
                    raise IRError(f"{ctx}: undeclared temp {value.name!r}", code="RPR-I014", span=span)
                if declared != value.ty:
                    raise IRError(
                        f"{ctx}: temp {value.name!r} type {value.ty} "
                        f"!= declared {declared}", code="RPR-I015", span=span)
            elif not isinstance(value, Const):
                raise IRError(f"{ctx}: bad operand {value!r}", code="RPR-I016", span=span)
        _ = info


def verify_module(module, sink=None) -> None:
    sink = sink if sink is not None else DiagnosticSink(strict=True)
    for func in module.functions.values():
        try:
            verify_function(func, sink=sink)
        except ReproError as exc:
            sink.capture(exc)
