"""IR interpreter: the *software simulation* semantics of a process.

This is the reproduction's stand-in for Impulse-C's CPU-side simulation of
FPGA processes: it executes the source-level semantics (exact C width
rules, idealized timing) as a coroutine that yields on stream operations.
The cooperative scheduler in :mod:`repro.runtime.swsim` drives many such
coroutines; the hardware path executes the *synthesized circuit* instead,
so behavioural divergence between the two is exactly the class of bug the
paper's in-circuit assertions exist to catch.

Event protocol (values yielded to the driver):

``("read", stream)``            → driver sends ``(ok, value)``
``("write", stream, value)``    → driver sends ``None``
``("close", stream)``           → driver sends ``None``
``("assert_fail", site)``       → driver sends ``"abort"`` or ``"continue"``

The generator's return value is an :class:`InterpResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.errors import SimulationError
from repro.ir import semantics
from repro.ir.function import IRFunction
from repro.ir.instr import AssertionSite, Branch, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, Temp, Value
from repro.utils.bitops import truncate


@dataclass
class InterpResult:
    """Outcome of one process execution."""

    returned: bool
    aborted_by: AssertionSite | None = None
    steps: int = 0
    assert_failures: list[AssertionSite] = field(default_factory=list)


class Interp:
    """Interprets one :class:`IRFunction` with C semantics."""

    def __init__(
        self,
        func: IRFunction,
        ext_funcs: dict[str, Callable[[int], int]] | None = None,
        max_steps: int = 10_000_000,
    ) -> None:
        self.func = func
        self.ext_funcs = ext_funcs or {}
        self.max_steps = max_steps
        self.env: dict[str, int] = {name: 0 for name in func.scalars}
        self.memories: dict[str, list[int]] = {}
        for name, arr in func.arrays.items():
            image = [0] * arr.size
            for i, v in enumerate(arr.init or ()):
                image[i] = truncate(v, arr.elem.width)
            self.memories[name] = image

    # ---- value access ------------------------------------------------------

    def read(self, value: Value) -> int:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Temp):
            return self.env[value.name]
        raise SimulationError(f"bad operand {value!r}", code="RPR-X001")

    def write(self, temp: Temp, pattern: int) -> None:
        self.env[temp.name] = truncate(pattern, temp.ty.width)

    # ---- arithmetic ----------------------------------------------------------

    def _binop_numeric(self, op: OpKind, a: Value, b: Value) -> int:
        return semantics.binop(
            op, self.read(a), a.ty, self.read(b), b.ty, where=self.func.name
        )

    def _compare(self, op: OpKind, a: Value, b: Value) -> int:
        return semantics.compare(op, self.read(a), a.ty, self.read(b), b.ty)

    # ---- main loop -----------------------------------------------------------

    def run(self) -> Generator[tuple, object, InterpResult]:
        func = self.func
        result = InterpResult(returned=False)
        block = func.blocks[func.entry]
        steps = 0
        while True:
            for instr in block.instrs:
                steps += 1
                if steps > self.max_steps:
                    raise SimulationError(
                        f"{func.name}: exceeded {self.max_steps} interpreter steps", code="RPR-X002")
                op = instr.op
                if op in (OpKind.MOV, OpKind.TRUNC, OpKind.ZEXT, OpKind.SEXT):
                    # the hardware cycle model evaluates casts through
                    # semantics.cast; using the same function here means the
                    # two paths cannot drift apart
                    src = instr.args[0]
                    self.write(instr.dest,
                               semantics.cast(op, self.read(src), src.ty))
                elif op in (OpKind.NEG, OpKind.NOT, OpKind.LNOT):
                    src = instr.args[0]
                    self.write(instr.dest,
                               semantics.unop(op, self.read(src), src.ty))
                elif op == OpKind.SELECT:
                    cond, a, b = instr.args
                    chosen = a if self.read(cond) != 0 else b
                    src_val = semantics.interpret(self.read(chosen), chosen.ty)
                    self.write(instr.dest, src_val)
                elif op in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV,
                            OpKind.MOD, OpKind.AND, OpKind.OR, OpKind.XOR,
                            OpKind.SHL, OpKind.SHR):
                    r = self._binop_numeric(op, instr.args[0], instr.args[1])
                    self.write(instr.dest, r)
                elif op in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
                            OpKind.GT, OpKind.GE):
                    self.write(instr.dest,
                               self._compare(op, instr.args[0], instr.args[1]))
                elif op == OpKind.LOAD:
                    mem = self.memories[instr.attrs["array"]]
                    idx = self.read(instr.args[0])
                    idx_s = semantics.interpret(idx, instr.args[0].ty)
                    if not (0 <= idx_s < len(mem)):
                        raise SimulationError(
                            f"{func.name}: out-of-bounds read "
                            f"{instr.attrs['array']}[{idx_s}] (size {len(mem)})", code="RPR-X003")
                    self.write(instr.dest, mem[idx_s])
                elif op == OpKind.STORE:
                    mem = self.memories[instr.attrs["array"]]
                    idx = self.read(instr.args[0])
                    idx_s = semantics.interpret(idx, instr.args[0].ty)
                    if not (0 <= idx_s < len(mem)):
                        raise SimulationError(
                            f"{func.name}: out-of-bounds write "
                            f"{instr.attrs['array']}[{idx_s}] (size {len(mem)})", code="RPR-X004")
                    value = instr.args[1]
                    arr = func.arrays[instr.attrs["array"]]
                    mem[idx_s] = truncate(self.read(value), arr.elem.width)
                elif op == OpKind.STREAM_READ:
                    reply = yield ("read", instr.attrs["stream"])
                    ok, value = reply  # type: ignore[misc]
                    ok_t, val_t = instr.dests
                    self.write(ok_t, int(bool(ok)))
                    self.write(val_t, int(value))
                elif op == OpKind.STREAM_WRITE:
                    yield ("write", instr.attrs["stream"],
                           truncate(self.read(instr.args[0]), 64))
                elif op == OpKind.STREAM_CLOSE:
                    yield ("close", instr.attrs["stream"])
                elif op == OpKind.ASSERT_CHECK:
                    cond = self.read(instr.args[0])
                    if cond == 0:
                        site: AssertionSite = instr.attrs["assertion"]
                        result.assert_failures.append(site)
                        decision = yield ("assert_fail", site)
                        if decision == "abort":
                            result.aborted_by = site
                            result.steps = steps
                            return result
                elif op == OpKind.TAP_READ:
                    reply = yield ("tap_read", instr.attrs["channel"])
                    ok, *values = reply  # type: ignore[misc]
                    self.write(instr.dests[0], int(bool(ok)))
                    for dest, v in zip(instr.dests[1:], values):
                        self.write(dest, int(v))
                elif op == OpKind.TAP:
                    values = tuple(
                        truncate(self.read(a), a.ty.width) for a in instr.args
                    )
                    yield ("tap", instr.attrs["channel"], values)
                elif op == OpKind.EXT_HDL:
                    fn = self.ext_funcs.get("ext_hdl", lambda v: v)
                    self.write(instr.dest,
                               fn(truncate(self.read(instr.args[0]), 64)))
                else:
                    raise SimulationError(f"unhandled op {op}", code="RPR-X005")

            term = block.term
            if isinstance(term, Jump):
                block = func.blocks[term.target]
            elif isinstance(term, Branch):
                taken = self.read(term.cond) != 0
                block = func.blocks[term.iftrue if taken else term.iffalse]
            elif isinstance(term, Return):
                result.returned = True
                result.steps = steps
                return result
            else:  # pragma: no cover - verifier excludes this
                raise SimulationError(f"bad terminator {term!r}", code="RPR-X006")


def run_to_completion(
    func: IRFunction,
    stream_inputs: dict[str, list[int]] | None = None,
    ext_funcs: dict[str, Callable[[int], int]] | None = None,
    nabort: bool = False,
    max_steps: int = 10_000_000,
) -> tuple[InterpResult, dict[str, list[int]]]:
    """Convenience driver for single-process tests.

    ``stream_inputs`` maps stream names to the full value sequence available
    on them (end-of-stream after exhaustion). Returns the interpreter result
    and everything written per output stream.
    """
    interp = Interp(func, ext_funcs=ext_funcs, max_steps=max_steps)
    inputs = {k: list(v) for k, v in (stream_inputs or {}).items()}
    outputs: dict[str, list[int]] = {s: [] for s in func.stream_names()}
    gen = interp.run()
    try:
        event = next(gen)
        while True:
            kind = event[0]
            if kind == "read":
                queue = inputs.get(event[1])
                if queue:
                    event = gen.send((1, queue.pop(0)))
                else:
                    event = gen.send((0, 0))
            elif kind == "write":
                outputs[event[1]].append(event[2])
                event = gen.send(None)
            elif kind == "tap":
                outputs.setdefault(f"tap:{event[1]}", []).append(event[2])
                event = gen.send(None)
            elif kind == "close":
                event = gen.send(None)
            elif kind == "assert_fail":
                event = gen.send("continue" if nabort else "abort")
            else:  # pragma: no cover
                raise SimulationError(f"unknown event {event!r}", code="RPR-X007")
    except StopIteration as stop:
        return stop.value, outputs
