"""IR instructions, terminators and basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.ops import OpKind, op_info
from repro.ir.values import Const, Temp, Value


@dataclass
class AssertionSite:
    """Source-level identity of one ``assert()`` — the ANSI-C failure
    message fields plus a process-local ordinal used as the error code."""

    ordinal: int
    file: str
    line: int
    function: str
    expr_text: str

    def message(self) -> str:
        """The ANSI-C assertion failure message format."""
        return (
            f"Assertion failed: {self.expr_text}, "
            f"file {self.file}, line {self.line}, function {self.function}"
        )


@dataclass
class Instr:
    """One three-address instruction.

    ``dests`` is a list because ``stream_read`` produces two results
    (ok flag, value). ``attrs`` carries op-specific payloads:

    * ``array`` (str) for LOAD/STORE
    * ``stream`` (str) for STREAM_* ops
    * ``assertion`` (:class:`AssertionSite`) for ASSERT_CHECK
    * ``coord`` ((file, line)) for diagnostics
    """

    op: OpKind
    dests: list[Temp] = field(default_factory=list)
    args: list[Value] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    @property
    def dest(self) -> Temp | None:
        return self.dests[0] if self.dests else None

    @property
    def info(self):
        return op_info(self.op)

    def uses(self) -> Iterable[Temp]:
        for a in self.args:
            if isinstance(a, Temp):
                yield a

    def defs(self) -> Iterable[Temp]:
        yield from self.dests

    def copy(self) -> "Instr":
        return Instr(self.op, list(self.dests), list(self.args), dict(self.attrs))

    def __str__(self) -> str:
        d = ", ".join(map(str, self.dests))
        a = ", ".join(map(str, self.args))
        extra = ""
        if "array" in self.attrs:
            extra = f" [{self.attrs['array']}]"
        elif "stream" in self.attrs:
            extra = f" <{self.attrs['stream']}>"
        elif "assertion" in self.attrs:
            site = self.attrs["assertion"]
            extra = f" #{site.ordinal}@{site.file}:{site.line}"
        head = f"{d} = " if d else ""
        return f"{head}{self.op.value} {a}{extra}".rstrip()


class Terminator:
    """Base class for block terminators."""

    def targets(self) -> list[str]:
        raise NotImplementedError

    def uses(self) -> Iterable[Temp]:
        return ()


@dataclass
class Jump(Terminator):
    target: str

    def targets(self) -> list[str]:
        return [self.target]

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Terminator):
    cond: Value
    iftrue: str
    iffalse: str

    def targets(self) -> list[str]:
        return [self.iftrue, self.iffalse]

    def uses(self) -> Iterable[Temp]:
        if isinstance(self.cond, Temp):
            yield self.cond

    def __str__(self) -> str:
        return f"branch {self.cond} ? {self.iftrue} : {self.iffalse}"


@dataclass
class Return(Terminator):
    value: Value | None = None

    def targets(self) -> list[str]:
        return []

    def uses(self) -> Iterable[Temp]:
        if isinstance(self.value, Temp):
            yield self.value

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions plus one terminator.

    ``pipeline`` marks loop headers whose loop body carries
    ``#pragma CO PIPELINE`` — consumed by :mod:`repro.hls.pipeline`.
    """

    name: str
    instrs: list[Instr] = field(default_factory=list)
    term: Terminator | None = None
    pipeline: bool = False

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def __str__(self) -> str:
        lines = [f"{self.name}:" + ("  ; pipeline" if self.pipeline else "")]
        lines += [f"  {i}" for i in self.instrs]
        lines.append(f"  {self.term}" if self.term else "  <no terminator>")
        return "\n".join(lines)


def const1(value: bool) -> Const:
    """A uint1 constant, common enough to deserve a helper."""
    from repro.frontend.ctypes_ import U1

    return Const(int(bool(value)), U1)
