"""Control-flow graph construction and loop analysis.

Built on networkx for dominator computation; natural loops are identified
from back edges so the pipeliner knows which blocks form a pipelined loop
body and the scheduler can reason about loop-carried behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import IRError
from repro.ir.function import IRFunction


@dataclass(frozen=True)
class Loop:
    """A natural loop: ``header`` plus the set of body block names."""

    header: str
    body: frozenset[str]
    back_edges: frozenset[tuple[str, str]]

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.body


@dataclass
class CFG:
    """Successor/predecessor structure over an :class:`IRFunction`."""

    func: IRFunction
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @classmethod
    def build(cls, func: IRFunction) -> "CFG":
        cfg = cls(func=func)
        g = cfg.graph
        for name, block in func.blocks.items():
            g.add_node(name)
            if block.term is None:
                raise IRError(f"{func.name}/{name}: missing terminator", code="RPR-I020")
        for name, block in func.blocks.items():
            for target in block.term.targets():
                if target not in func.blocks:
                    raise IRError(f"{func.name}/{name}: unknown target {target!r}", code="RPR-I021")
                g.add_edge(name, target)
        return cfg

    # ---- basic queries ---------------------------------------------------

    def successors(self, name: str) -> list[str]:
        return list(self.graph.successors(name))

    def predecessors(self, name: str) -> list[str]:
        return list(self.graph.predecessors(name))

    def reachable(self) -> set[str]:
        return set(nx.descendants(self.graph, self.func.entry)) | {self.func.entry}

    def reverse_postorder(self) -> list[str]:
        order: list[str] = []
        seen: set[str] = set()

        def dfs(node: str) -> None:
            seen.add(node)
            for succ in self.graph.successors(node):
                if succ not in seen:
                    dfs(succ)
            order.append(node)

        dfs(self.func.entry)
        return list(reversed(order))

    # ---- dominance & loops -------------------------------------------------

    def immediate_dominators(self) -> dict[str, str]:
        return nx.immediate_dominators(self.graph, self.func.entry)

    def dominates(self, a: str, b: str) -> bool:
        idom = self.immediate_dominators()
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return a == node
            node = parent

    def natural_loops(self) -> list[Loop]:
        """All natural loops (one per header, merged back edges)."""
        idom = self.immediate_dominators()

        def dominates(a: str, b: str) -> bool:
            node = b
            while True:
                if node == a:
                    return True
                parent = idom.get(node)
                if parent is None or parent == node:
                    return False
                node = parent

        by_header: dict[str, tuple[set[str], set[tuple[str, str]]]] = {}
        reachable = self.reachable()
        for tail, head in self.graph.edges:
            if tail not in reachable:
                continue
            if dominates(head, tail):  # back edge
                body = {head}
                stack = [tail]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(self.graph.predecessors(node))
                acc = by_header.setdefault(head, (set(), set()))
                acc[0].update(body)
                acc[1].add((tail, head))
        return [
            Loop(header=h, body=frozenset(body), back_edges=frozenset(edges))
            for h, (body, edges) in sorted(by_header.items())
        ]

    def pipelined_loops(self) -> list[Loop]:
        """Loops whose header block carries the PIPELINE pragma."""
        return [
            loop
            for loop in self.natural_loops()
            if self.func.blocks[loop.header].pipeline
        ]
