"""IR functions (one per hardware process) and modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.frontend.ctypes_ import CType
from repro.ir.instr import AssertionSite, BasicBlock, Instr
from repro.ir.ops import OpKind
from repro.ir.values import ArrayDecl, StreamParam, Temp
from repro.utils.idgen import IdGenerator


@dataclass
class IRFunction:
    """A lowered C function: the unit compiled to one FPGA process.

    * ``streams`` — stream parameters, in declaration order.
    * ``scalars`` — every named scalar (parameters and locals) by name.
    * ``arrays``  — local arrays (block-RAM candidates) by name.
    * ``blocks``  — basic blocks in layout order; ``entry`` names the first.
    * ``assertion_sites`` — the ``assert()`` occurrences found during
      lowering, in source order. Their synthesis strategy is decided later
      by :mod:`repro.core`.
    """

    name: str
    streams: list[StreamParam] = field(default_factory=list)
    scalars: dict[str, CType] = field(default_factory=dict)
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"
    assertion_sites: list[AssertionSite] = field(default_factory=list)
    source_file: str = "<source>"
    ids: IdGenerator = field(default_factory=IdGenerator)
    #: names created by new_temp (compiler temporaries, as opposed to
    #: user-declared C variables) — the assertion parallelizer taps user
    #: variables rather than recomputing arbitrarily deep expression trees
    temp_names: set[str] = field(default_factory=set)

    # ---- construction helpers -------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = self.ids.next(hint)
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self.blocks:
            raise IRError(f"duplicate block {block.name!r}", code="RPR-I030")
        self.blocks[block.name] = block
        return block

    def new_temp(self, ty: CType, hint: str = "t") -> Temp:
        # compiler temporaries must never collide with user-declared names
        # (a user variable called "c2" is perfectly legal C)
        name = self.ids.next(hint)
        while name in self.scalars or name in self.arrays:
            name = self.ids.next(hint)
        t = Temp(name, ty)
        self.scalars[name] = ty
        self.temp_names.add(name)
        return t

    def declare_scalar(self, name: str, ty: CType) -> Temp:
        if name in self.scalars or name in self.arrays:
            raise IRError(f"redeclaration of {name!r}", code="RPR-I031")
        self.scalars[name] = ty
        return Temp(name, ty)

    def declare_array(self, name: str, elem: CType, size: int) -> ArrayDecl:
        if name in self.scalars or name in self.arrays:
            raise IRError(f"redeclaration of {name!r}", code="RPR-I032")
        arr = ArrayDecl(name, elem, size)
        self.arrays[name] = arr
        return arr

    def clone(self, name: str | None = None) -> "IRFunction":
        """Deep-copy this function (instructions and terminators are fresh
        objects; assertion sites and types are shared immutables). Used to
        derive the hardware-side body that fault injection or assertion
        synthesis may rewrite without touching the software-simulation IR."""
        import copy as _copy

        other = IRFunction(
            name=name or self.name,
            streams=list(self.streams),
            scalars=dict(self.scalars),
            arrays=dict(self.arrays),
            entry=self.entry,
            assertion_sites=list(self.assertion_sites),
            source_file=self.source_file,
            ids=_copy.deepcopy(self.ids),
            temp_names=set(self.temp_names),
        )
        for bname, block in self.blocks.items():
            nb = BasicBlock(
                bname,
                instrs=[i.copy() for i in block.instrs],
                term=_copy.copy(block.term),
                pipeline=block.pipeline,
            )
            other.blocks[bname] = nb
        return other

    # ---- queries ---------------------------------------------------------

    def block_order(self) -> list[BasicBlock]:
        return list(self.blocks.values())

    def instructions(self):
        for block in self.blocks.values():
            yield from block.instrs

    def stream_names(self) -> list[str]:
        return [s.name for s in self.streams]

    def stream(self, name: str) -> StreamParam:
        for s in self.streams:
            if s.name == name:
                return s
        raise IRError(f"{self.name}: no stream parameter {name!r}", code="RPR-I033")

    def count_ops(self, *kinds: OpKind) -> int:
        wanted = set(kinds)
        return sum(1 for i in self.instructions() if i.op in wanted)

    def array_accesses(self, array: str) -> list[Instr]:
        return [
            i
            for i in self.instructions()
            if i.op in (OpKind.LOAD, OpKind.STORE) and i.attrs.get("array") == array
        ]

    def canonical_text(self) -> str:
        """The canonical printed form of this function.

        This text is the function's *identity* for content addressing:
        :func:`repro.lab.cache.process_cache_key` fingerprints it to
        decide whether a cached per-process synthesis artifact is still
        valid, so it must be a pure function of the IR (no ids, memory
        addresses or interpreter state) and must change whenever anything
        synthesis consumes changes.
        """
        header = (
            f"func {self.name}("
            + ", ".join(map(str, self.streams))
            + ")"
        )
        parts = [header]
        for arr in self.arrays.values():
            parts.append(f"  array {arr}")
        for block in self.blocks.values():
            parts.append(str(block))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.canonical_text()


@dataclass
class IRModule:
    """A set of functions lowered from one translation unit."""

    functions: dict[str, IRFunction] = field(default_factory=dict)
    source_file: str = "<source>"

    def add(self, func: IRFunction) -> IRFunction:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}", code="RPR-I034")
        self.functions[func.name] = func
        return func

    def __getitem__(self, name: str) -> IRFunction:
        return self.functions[name]
