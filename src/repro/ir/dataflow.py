"""Classic dataflow analyses over the IR: liveness and def-use chains.

Liveness feeds two consumers:

* the binder (:mod:`repro.hls.binding`), which shares functional units
  between operations whose result lifetimes do not overlap, and
* the assertion parallelizer (:mod:`repro.core.parallelize`), which must
  know which values an assertion condition consumes so it can tap exactly
  those into the checker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import IRFunction
from repro.ir.values import Temp


@dataclass
class Liveness:
    """live_in/live_out sets of temp *names* per block."""

    live_in: dict[str, frozenset[str]] = field(default_factory=dict)
    live_out: dict[str, frozenset[str]] = field(default_factory=dict)


def block_use_def(func: IRFunction, block_name: str) -> tuple[set[str], set[str]]:
    """(upward-exposed uses, definitely-defined names) for one block."""
    block = func.blocks[block_name]
    uses: set[str] = set()
    defs: set[str] = set()
    for instr in block.instrs:
        for u in instr.uses():
            if u.name not in defs:
                uses.add(u.name)
        for d in instr.defs():
            defs.add(d.name)
    if block.term is not None:
        for u in block.term.uses():
            if u.name not in defs:
                uses.add(u.name)
    return uses, defs


def liveness(func: IRFunction, cfg: CFG | None = None) -> Liveness:
    """Iterative backward liveness to fixpoint."""
    cfg = cfg or CFG.build(func)
    use: dict[str, set[str]] = {}
    define: dict[str, set[str]] = {}
    for name in func.blocks:
        use[name], define[name] = block_use_def(func, name)

    live_in: dict[str, set[str]] = {n: set() for n in func.blocks}
    live_out: dict[str, set[str]] = {n: set() for n in func.blocks}
    changed = True
    while changed:
        changed = False
        for name in func.blocks:
            out: set[str] = set()
            for succ in cfg.successors(name):
                out |= live_in[succ]
            inn = use[name] | (out - define[name])
            if out != live_out[name] or inn != live_in[name]:
                live_out[name] = out
                live_in[name] = inn
                changed = True
    return Liveness(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
    )


@dataclass
class DefUse:
    """Definition and use sites keyed by temp name.

    A site is (block_name, instr_index); terminator uses have index -1.
    """

    defs: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    uses: dict[str, list[tuple[str, int]]] = field(default_factory=dict)


def def_use(func: IRFunction) -> DefUse:
    du = DefUse()
    for bname, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            for u in instr.uses():
                du.uses.setdefault(u.name, []).append((bname, idx))
            for d in instr.defs():
                du.defs.setdefault(d.name, []).append((bname, idx))
        if block.term is not None:
            for u in block.term.uses():
                du.uses.setdefault(u.name, []).append((bname, -1))
    return du


def condition_support(func: IRFunction, block_name: str, root: Temp) -> set[str]:
    """Names of the *source-level* values an expression tree depends on.

    Walks backward from ``root`` through single-block def chains, stopping
    at values a detached checker process cannot recompute: block-external
    names, memory loads, stream reads — those must be *tapped* (sent to the
    checker); everything combinational between them and the root is
    re-materialized inside the checker instead.
    """
    from repro.ir.ops import OpKind

    block = func.blocks[block_name]
    def_site: dict[str, int] = {}
    for idx, instr in enumerate(block.instrs):
        for d in instr.defs():
            def_site[d.name] = idx

    support: set[str] = set()
    stack = [root.name]
    seen: set[str] = set()
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name not in def_site:
            support.add(name)
            continue
        instr = block.instrs[def_site[name]]
        if (instr.info.has_side_effect
                or instr.op == OpKind.LOAD
                or not list(instr.uses())):
            support.add(name)
            continue
        # user-declared variables are natural cut points: tapping them is a
        # wire, while walking through them can drag in arbitrarily deep
        # upstream logic that the checker would have to duplicate
        if name != root.name and name not in func.temp_names:
            support.add(name)
            continue
        for u in instr.uses():
            stack.append(u.name)
    return support
