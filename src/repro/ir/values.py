"""IR value model: virtual registers and constants.

The IR is a conventional three-address code over typed values. Scalars
declared in the C source become named :class:`Temp` objects (one per
variable, non-SSA); expression evaluation introduces compiler temporaries.
Arrays are *not* values — they are memory objects referenced by name in
``load``/``store`` instructions, because they map to block RAMs with port
constraints that the scheduler must see explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.ctypes_ import CType
from repro.utils.bitops import truncate


class Value:
    """Base class for IR operands."""

    ty: CType


@dataclass(frozen=True)
class Temp(Value):
    """A virtual register. Identity is by name within a function."""

    name: str
    ty: CType

    def __str__(self) -> str:
        return f"%{self.name}:{self.ty.name}"


@dataclass(frozen=True)
class Const(Value):
    """An integer constant, stored as its unsigned bit pattern."""

    value: int
    ty: CType

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", truncate(self.value, self.ty.width))

    def __str__(self) -> str:
        return f"{self.value}:{self.ty.name}"


@dataclass(frozen=True)
class ArrayDecl:
    """A local array backing a block RAM.

    ``init`` holds initial contents (a ROM image for constant tables such as
    DES S-boxes); missing tail entries are zero, as in C aggregate
    initialization.
    """

    name: str
    elem: CType
    size: int
    init: tuple[int, ...] | None = None
    #: True when the C declaration was ``const`` — the memory synthesizes to
    #: a ROM and stores to it are rejected during lowering.
    const: bool = False

    @property
    def bits(self) -> int:
        return self.elem.width * self.size

    def __str__(self) -> str:
        return f"{self.name}[{self.size}]:{self.elem.name}"


@dataclass(frozen=True)
class StreamParam:
    """A stream-typed function parameter (an Impulse-C ``co_stream``)."""

    name: str
    #: data width carried by the stream; assigned when the process is bound
    #: into an application graph (32 by default, like Impulse-C buses).
    width: int = 32

    def __str__(self) -> str:
        return f"@{self.name}/{self.width}"
