"""C-dialect frontend: preprocessor, parser, type system, lowering.

``lower_source`` is exposed lazily: the lowering module depends on the IR
package, which itself uses the frontend type system, so importing it at
package-init time would be circular.
"""

from repro.frontend.cpp import PreprocessResult, preprocess
from repro.frontend.ctypes_ import CType, common_type, lookup_type
from repro.frontend.intrinsics import INTRINSICS, is_intrinsic
from repro.frontend.parser import ParsedSource, parse_source

__all__ = [
    "PreprocessResult",
    "preprocess",
    "CType",
    "common_type",
    "lookup_type",
    "INTRINSICS",
    "is_intrinsic",
    "lower_source",
    "ParsedSource",
    "parse_source",
]


def __getattr__(name: str):
    if name == "lower_source":
        from repro.frontend.lowering import lower_source

        return lower_source
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
