"""pycparser-based parser for the synthesizable C dialect.

Pipeline: :func:`repro.frontend.cpp.preprocess` → prolog injection
(typedefs for ``intN``/``uintN`` and ``co_stream`` so pycparser's lexer
classifies them as type names) → ``pycparser.CParser``.

The prolog is followed by a ``#line`` marker resetting coordinates, so all
AST coordinates refer to the user's original source — assertion error codes
(file name + line number) must match the unpreprocessed file exactly, as in
ANSI-C ``assert``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import pycparser
from pycparser import c_ast

from repro.diagnostics.sink import DiagnosticSink
from repro.diagnostics.span import Span
from repro.errors import ParseError
from repro.frontend import ctypes_
from repro.frontend.cpp import PreprocessResult, preprocess

#: Type name used for stream-typed parameters in dialect sources.
STREAM_TYPE_NAME = "co_stream"


def _build_prolog() -> str:
    lines = []
    for name in ctypes_.all_dialect_typedef_names():
        # The underlying builtin chosen here is irrelevant; only the typedef
        # *name* matters to the lexer, and our own type table supplies widths.
        lines.append(f"typedef unsigned int {name};")
    lines.append(f"typedef int {STREAM_TYPE_NAME};")
    return "\n".join(lines)


_PROLOG = _build_prolog()
_PARSER = pycparser.CParser()
#: pycparser's generated LALR parser keeps mutable state on the instance
#: (symbol stack, lexer position), so concurrent parses through the shared
#: instance corrupt each other. The serve daemon synthesizes on a thread
#: pool; serializing just the parse step keeps it correct — parsing is a
#: small slice of synthesis wall time.
_PARSER_LOCK = threading.Lock()


@dataclass
class ParsedSource:
    """A parsed translation unit plus preprocessing facts."""

    ast: c_ast.FileAST
    preprocessed: PreprocessResult
    filename: str
    functions: dict[str, c_ast.FuncDef] = field(default_factory=dict)

    @property
    def ndebug(self) -> bool:
        return self.preprocessed.ndebug

    @property
    def nabort(self) -> bool:
        return self.preprocessed.nabort


def parse_source(
    source: str,
    filename: str = "<source>",
    defines: dict[str, str] | None = None,
    sink: DiagnosticSink | None = None,
) -> ParsedSource:
    """Parse dialect C ``source`` into a :class:`ParsedSource`.

    ``defines`` seeds preprocessor macros — pass ``{"NDEBUG": ""}`` to
    compile assertions out, ``{"NABORT": ""}`` for report-and-continue.
    With a collect-mode ``sink``, recoverable problems (preprocessor
    directives, duplicate definitions) are reported and skipped; a
    pycparser syntax error is unrecoverable either way but still gets a
    real :class:`Span` parsed out of the ``file:line:col`` message prefix.
    """
    sink = sink if sink is not None else DiagnosticSink(strict=True)
    pre = preprocess(source, defines=defines, filename=filename, sink=sink)
    full = f'{_PROLOG}\n#line 1 "{filename}"\n{pre.text}'
    try:
        with _PARSER_LOCK:
            ast = _PARSER.parse(full, filename=filename)
    except Exception as exc:  # pycparser's ParseError module moved across
        # releases (plyparser -> c_parser); match by name to stay compatible
        if type(exc).__name__ != "ParseError":
            raise
        # pycparser formats errors as "file:line:col: message"; recover the
        # coordinates into a Span instead of burying them in the text
        span, message = Span.parse_prefix(str(exc))
        err = ParseError(message or str(exc), code="RPR-S001", span=span)
        err.__cause__ = exc
        sink.capture(err)
        # syntax errors leave no AST to walk — return an empty unit so
        # collect-mode callers still get the preprocessor diagnostics
        return ParsedSource(ast=c_ast.FileAST(ext=[]), preprocessed=pre,
                            filename=filename)

    parsed = ParsedSource(ast=ast, preprocessed=pre, filename=filename)
    for ext in ast.ext:
        if isinstance(ext, c_ast.FuncDef):
            name = ext.decl.name
            if name in parsed.functions:
                first = parsed.functions[name]
                sink.capture(ParseError(
                    f"duplicate function definition {name!r}",
                    code="RPR-S002",
                    span=span_of(ext.decl),
                    notes=(f"first defined at {span_of(first.decl)}",),
                ))
                continue  # keep the first definition, skip the duplicate
            parsed.functions[name] = ext
    return parsed


def declared_type_name(decl: c_ast.Decl) -> str:
    """Extract the scalar/array element type spelling from a declaration."""
    node = decl.type
    while isinstance(node, (c_ast.ArrayDecl, c_ast.PtrDecl)):
        node = node.type
    if isinstance(node, c_ast.TypeDecl) and isinstance(node.type, c_ast.IdentifierType):
        return " ".join(node.type.names)
    raise ParseError(f"unsupported declaration shape for {decl.name!r}",
                     code="RPR-S003", span=span_of(decl))


def coord_of(node: c_ast.Node) -> tuple[str, int]:
    """(filename, line) for a node; (``"?"``, 0) when pycparser lacks it."""
    coord = getattr(node, "coord", None)
    if coord is None:
        return ("?", 0)
    return (coord.file or "?", coord.line or 0)


def span_of(node: c_ast.Node) -> Span | None:
    """Full :class:`Span` (incl. column) for a node, or None if unknown."""
    coord = getattr(node, "coord", None)
    if coord is None:
        return None
    return Span.from_coord(coord)
