"""Intrinsic functions of the synthesizable C dialect.

These mirror the Impulse-C API the paper targets:

``co_stream_read(stream, &var)``
    Blocking read. Returns nonzero on success, zero once the stream is
    closed and drained (end-of-stream) — the idiom
    ``while (co_stream_read(in, &x)) { ... }`` is the standard process loop.
``co_stream_write(stream, value)``
    Blocking write (stalls while the channel FIFO is full in hardware).
``co_stream_close(stream)``
    Close the writing end; readers observe end-of-stream after draining.
``assert(expr)``
    ANSI-C assertion. The core of the paper: synthesized to an in-circuit
    checker by :mod:`repro.core`.
``ext_hdl(value)``
    Stands in for the paper's "external HDL function" (Section 5.1): a
    hand-written HDL block with a C model for software simulation. The C
    model and the hardware implementation may be configured to differ,
    reproducing the paper's second verification example.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Intrinsic:
    name: str
    min_args: int
    max_args: int
    returns_value: bool


INTRINSICS: dict[str, Intrinsic] = {
    "co_stream_read": Intrinsic("co_stream_read", 2, 2, True),
    "co_stream_write": Intrinsic("co_stream_write", 2, 2, False),
    "co_stream_close": Intrinsic("co_stream_close", 1, 1, False),
    "assert": Intrinsic("assert", 1, 1, False),
    "ext_hdl": Intrinsic("ext_hdl", 1, 1, True),
    # timing assertions (the paper's future-work extension): bound the
    # clock cycles elapsed between two source lines
    "co_latency_start": Intrinsic("co_latency_start", 1, 1, False),
    "co_latency_end": Intrinsic("co_latency_end", 2, 2, False),
}


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS
