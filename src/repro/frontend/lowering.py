"""Lowering: pycparser AST → typed three-address IR.

One :class:`~repro.ir.function.IRFunction` is produced per C function; a
function whose parameters include ``co_stream`` values is a *process* in
the Impulse-C sense and is the unit of hardware synthesis.

Synthesizable dialect (everything the paper's case studies need):

* integer scalars and fixed-size local arrays (``const`` arrays → ROMs)
* assignments including compound forms, ``++``/``--``
* ``if``/``else``, ``while``, ``do``/``while``, ``for``, ``break``,
  ``continue``, ``return``
* integer expressions: arithmetic, bitwise, shifts, comparisons, logical
  ``&&``/``||``/``!`` (evaluated without short-circuit, as synthesized
  datapaths do), ``?:``, casts
* intrinsics: ``co_stream_read/write/close``, ``assert``, ``ext_hdl``
* ``#pragma CO PIPELINE`` ahead of a loop marks it for pipelining

``assert(expr)`` lowers to the evaluation of ``expr`` followed by an
``assert_check`` pseudo-instruction carrying an :class:`AssertionSite`
(file, line, function, expression text — the ANSI-C failure message
fields). How that pseudo-op becomes hardware is the subject of
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

from pycparser import c_ast, c_generator

from repro.diagnostics.sink import DiagnosticSink
from repro.diagnostics.span import Span
from repro.errors import LoweringError, ReproError, ReproTypeError
from repro.frontend import ctypes_
from repro.frontend.ctypes_ import CType, U1, common_type, lookup_type
from repro.frontend.intrinsics import INTRINSICS
from repro.frontend.parser import STREAM_TYPE_NAME, ParsedSource, coord_of, span_of
from repro.ir.function import IRFunction, IRModule
from repro.ir.instr import AssertionSite, BasicBlock, Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, StreamParam, Temp, Value
from repro.utils.bitops import truncate

_CGEN = c_generator.CGenerator()

_BINOPS: dict[str, OpKind] = {
    "+": OpKind.ADD,
    "-": OpKind.SUB,
    "*": OpKind.MUL,
    "/": OpKind.DIV,
    "%": OpKind.MOD,
    "&": OpKind.AND,
    "|": OpKind.OR,
    "^": OpKind.XOR,
    "<<": OpKind.SHL,
    ">>": OpKind.SHR,
    "==": OpKind.EQ,
    "!=": OpKind.NE,
    "<": OpKind.LT,
    "<=": OpKind.LE,
    ">": OpKind.GT,
    ">=": OpKind.GE,
}

_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass
class _LoopCtx:
    break_target: str
    continue_target: str


class FunctionLowerer:
    """Lowers a single ``c_ast.FuncDef``."""

    def __init__(self, parsed: ParsedSource, func_def: c_ast.FuncDef,
                 sink: DiagnosticSink | None = None) -> None:
        self.parsed = parsed
        self.func_def = func_def
        self.sink = sink if sink is not None else DiagnosticSink(strict=True)
        self.func = IRFunction(
            name=func_def.decl.name, source_file=parsed.filename
        )
        self.cur: BasicBlock | None = None
        self.loops: list[_LoopCtx] = []
        self.pending_pipeline = False
        self._assert_ordinal = 0

    # ---- plumbing ----------------------------------------------------------

    def _err(self, node: c_ast.Node, msg: str, *, code: str,
             hint: str | None = None) -> LoweringError:
        return LoweringError(msg, code=code, span=span_of(node), hint=hint)

    def _type(self, name: str, node: c_ast.Node) -> CType:
        """:func:`lookup_type` attaching the node's span to type errors."""
        try:
            return lookup_type(name)
        except ReproTypeError as exc:
            if exc.span is None:
                exc.span = span_of(node)
            raise

    def emit(self, instr: Instr, node: c_ast.Node | None = None) -> Instr:
        if self.cur is None:
            raise LoweringError("emit with no current block", code="RPR-L001")
        if node is not None:
            instr.attrs.setdefault("coord", coord_of(node))
        return self.cur.append(instr)

    def _seal(self, term) -> None:
        if self.cur is not None and self.cur.term is None:
            self.cur.term = term

    def _start(self, block: BasicBlock) -> None:
        self.cur = block

    def _bool(self, value: Value, node: c_ast.Node | None = None) -> Value:
        """Normalize a value to uint1 (C truthiness: != 0)."""
        if value.ty.width == 1 and not value.ty.signed:
            return value
        dest = self.func.new_temp(U1, "b")
        self.emit(Instr(OpKind.NE, [dest], [value, Const(0, value.ty)]), node)
        return dest

    # ---- declarations --------------------------------------------------------

    def lower(self) -> IRFunction:
        decl = self.func_def.decl
        params = []
        if decl.type.args is not None:
            params = list(decl.type.args.params)
        for p in params:
            if isinstance(p, c_ast.Typename) or p.name is None:
                continue  # (void)
            tyname = _type_name_of(p)
            if tyname == STREAM_TYPE_NAME:
                self.func.streams.append(StreamParam(p.name))
            else:
                self.func.declare_scalar(p.name, self._type(tyname, p))

        entry = BasicBlock("entry")
        self.func.blocks[entry.name] = entry
        self.func.entry = entry.name
        self._start(entry)
        if self.func_def.body.block_items:
            for stmt in self.func_def.body.block_items:
                try:
                    # recovery point: skip the bad statement, keep lowering
                    # the rest of the function body
                    self.stmt(stmt)
                except ReproError as exc:
                    self.sink.capture(exc)
        self._seal(Return())
        return self.func

    def _lower_decl(self, node: c_ast.Decl) -> None:
        quals = set(node.quals or []) | set(getattr(node, "storage", []) or [])
        is_const = "const" in quals
        if isinstance(node.type, c_ast.ArrayDecl):
            elem = self._type(_type_name_of(node), node)
            dim = node.type.dim
            init_values: tuple[int, ...] | None = None
            if node.init is not None:
                if not isinstance(node.init, c_ast.InitList):
                    raise self._err(node, "array initializer must be a list",
                                    code="RPR-L002")
                init_values = tuple(
                    truncate(_const_int(e, self), elem.width)
                    for e in node.init.exprs
                )
            if dim is None:
                if init_values is None:
                    raise self._err(node, f"array {node.name!r} has no size",
                                    code="RPR-L003")
                size = len(init_values)
            else:
                size = _const_int(dim, self)
            if size <= 0:
                raise self._err(node, f"array {node.name!r} has size {size}",
                                code="RPR-L004")
            if init_values is not None and len(init_values) > size:
                raise self._err(node, "too many initializers", code="RPR-L005")
            from repro.ir.values import ArrayDecl as IRArrayDecl

            arr = IRArrayDecl(node.name, elem, size, init=init_values, const=is_const)
            if node.name in self.func.scalars or node.name in self.func.arrays:
                raise self._err(node, f"redeclaration of {node.name!r}",
                                code="RPR-L006")
            self.func.arrays[node.name] = arr
        elif isinstance(node.type, c_ast.TypeDecl):
            ty = self._type(_type_name_of(node), node)
            temp = self.func.declare_scalar(node.name, ty)
            if node.init is not None:
                value = self.expr(node.init)
                self.emit(Instr(OpKind.MOV, [temp], [value]), node)
        else:
            raise self._err(node, f"unsupported declaration for {node.name!r}",
                            code="RPR-L007")

    # ---- statements ------------------------------------------------------------

    def stmt(self, node: c_ast.Node) -> None:
        if isinstance(node, c_ast.Decl):
            self._lower_decl(node)
        elif isinstance(node, c_ast.DeclList):
            for d in node.decls:
                self._lower_decl(d)
        elif isinstance(node, c_ast.Assignment):
            self._lower_assignment(node)
        elif isinstance(node, c_ast.UnaryOp) and node.op in (
            "p++", "p--", "++", "--",
        ):
            self._lower_incdec(node)
        elif isinstance(node, c_ast.FuncCall):
            self._lower_call(node, as_stmt=True)
        elif isinstance(node, c_ast.If):
            self._lower_if(node)
        elif isinstance(node, c_ast.While):
            self._lower_while(node)
        elif isinstance(node, c_ast.DoWhile):
            self._lower_dowhile(node)
        elif isinstance(node, c_ast.For):
            self._lower_for(node)
        elif isinstance(node, c_ast.Break):
            if not self.loops:
                raise self._err(node, "break outside loop", code="RPR-L008")
            self._seal(Jump(self.loops[-1].break_target))
            self._start(self.func.new_block("dead"))
        elif isinstance(node, c_ast.Continue):
            if not self.loops:
                raise self._err(node, "continue outside loop", code="RPR-L009")
            self._seal(Jump(self.loops[-1].continue_target))
            self._start(self.func.new_block("dead"))
        elif isinstance(node, c_ast.Return):
            value = self.expr(node.expr) if node.expr is not None else None
            self._seal(Return(value))
            self._start(self.func.new_block("dead"))
        elif isinstance(node, c_ast.Compound):
            for item in node.block_items or []:
                try:
                    # recovery point: one bad statement does not take down
                    # the enclosing compound
                    self.stmt(item)
                except ReproError as exc:
                    self.sink.capture(exc)
        elif isinstance(node, c_ast.Pragma):
            text = (node.string or "").strip().upper()
            if "PIPELINE" in text:
                self.pending_pipeline = True
        elif isinstance(node, c_ast.EmptyStatement):
            pass
        else:
            raise self._err(
                node, f"unsupported statement {type(node).__name__}",
                code="RPR-L010",
                hint="the synthesizable dialect has no goto/switch/labels",
            )

    def _take_pipeline_flag(self) -> bool:
        flag = self.pending_pipeline
        self.pending_pipeline = False
        return flag

    def _lower_assignment(self, node: c_ast.Assignment) -> None:
        rhs = self.expr(node.rvalue)
        if node.op != "=":
            binop = node.op[:-1]
            if binop not in _BINOPS:
                raise self._err(node, f"unsupported assignment op {node.op!r}",
                                code="RPR-L011")
            lhs_value = self.expr(node.lvalue)
            ct = common_type(lhs_value.ty, rhs.ty)
            dest = self.func.new_temp(ct, "t")
            self.emit(Instr(_BINOPS[binop], [dest], [lhs_value, rhs]), node)
            rhs = dest
        self._store_lvalue(node.lvalue, rhs)

    def _lower_incdec(self, node: c_ast.UnaryOp) -> None:
        kind = OpKind.ADD if "++" in node.op else OpKind.SUB
        value = self.expr(node.expr)
        dest = self.func.new_temp(value.ty, "t")
        self.emit(Instr(kind, [dest], [value, Const(1, value.ty)]), node)
        self._store_lvalue(node.expr, dest)

    def _store_lvalue(self, lvalue: c_ast.Node, value: Value) -> None:
        if isinstance(lvalue, c_ast.ID):
            ty = self.func.scalars.get(lvalue.name)
            if ty is None:
                raise self._err(lvalue,
                                f"assignment to undeclared {lvalue.name!r}",
                                code="RPR-L012")
            self.emit(Instr(OpKind.MOV, [Temp(lvalue.name, ty)], [value]), lvalue)
        elif isinstance(lvalue, c_ast.ArrayRef):
            name = _array_name(lvalue, self)
            arr = self.func.arrays.get(name)
            if arr is None:
                raise self._err(lvalue, f"store to undeclared array {name!r}",
                                code="RPR-L013")
            if arr.const:
                raise self._err(lvalue, f"store to const array {name!r}",
                                code="RPR-L014",
                                hint="const arrays synthesize to ROMs and "
                                     "cannot be written")
            idx = self.expr(lvalue.subscript)
            self.emit(
                Instr(OpKind.STORE, [], [idx, value], {"array": name}), lvalue
            )
        else:
            raise self._err(lvalue, "unsupported lvalue", code="RPR-L015")

    def _lower_if(self, node: c_ast.If) -> None:
        cond = self._bool(self.expr(node.cond), node)
        then_b = self.func.new_block("then")
        join_b = self.func.new_block("join")
        else_b = self.func.new_block("else") if node.iffalse is not None else join_b
        self._seal(Branch(cond, then_b.name, else_b.name))
        self._start(then_b)
        if node.iftrue is not None:
            self.stmt(node.iftrue)
        self._seal(Jump(join_b.name))
        if node.iffalse is not None:
            self._start(else_b)
            self.stmt(node.iffalse)
            self._seal(Jump(join_b.name))
        self._start(join_b)

    def _lower_while(self, node: c_ast.While) -> None:
        pipelined = self._take_pipeline_flag()
        header = self.func.new_block("while")
        body = self.func.new_block("body")
        exit_b = self.func.new_block("exit")
        header.pipeline = pipelined
        self._seal(Jump(header.name))
        self._start(header)
        cond = self._bool(self.expr(node.cond), node)
        self._seal(Branch(cond, body.name, exit_b.name))
        self.loops.append(_LoopCtx(exit_b.name, header.name))
        self._start(body)
        self.stmt(node.stmt)
        self._seal(Jump(header.name))
        self.loops.pop()
        self._start(exit_b)

    def _lower_dowhile(self, node: c_ast.DoWhile) -> None:
        pipelined = self._take_pipeline_flag()
        body = self.func.new_block("do")
        latch = self.func.new_block("latch")
        exit_b = self.func.new_block("exit")
        body.pipeline = pipelined
        self._seal(Jump(body.name))
        self.loops.append(_LoopCtx(exit_b.name, latch.name))
        self._start(body)
        self.stmt(node.stmt)
        self._seal(Jump(latch.name))
        self.loops.pop()
        self._start(latch)
        cond = self._bool(self.expr(node.cond), node)
        self._seal(Branch(cond, body.name, exit_b.name))
        self._start(exit_b)

    def _lower_for(self, node: c_ast.For) -> None:
        pipelined = self._take_pipeline_flag()
        if node.init is not None:
            self.stmt(node.init)
        header = self.func.new_block("for")
        body = self.func.new_block("body")
        step = self.func.new_block("step")
        exit_b = self.func.new_block("exit")
        header.pipeline = pipelined
        self._seal(Jump(header.name))
        self._start(header)
        if node.cond is not None:
            cond = self._bool(self.expr(node.cond), node)
            self._seal(Branch(cond, body.name, exit_b.name))
        else:
            self._seal(Jump(body.name))
        self.loops.append(_LoopCtx(exit_b.name, step.name))
        self._start(body)
        if node.stmt is not None:
            self.stmt(node.stmt)
        self._seal(Jump(step.name))
        self.loops.pop()
        self._start(step)
        if node.next is not None:
            self.stmt(node.next)
        self._seal(Jump(header.name))
        self._start(exit_b)

    # ---- calls -------------------------------------------------------------------

    def _lower_call(self, node: c_ast.FuncCall, as_stmt: bool) -> Value | None:
        if not isinstance(node.name, c_ast.ID):
            raise self._err(node, "indirect calls are not synthesizable",
                            code="RPR-L016")
        name = node.name.name
        info = INTRINSICS.get(name)
        if info is None:
            raise self._err(
                node,
                f"call to {name!r}: only dialect intrinsics are synthesizable "
                f"({sorted(INTRINSICS)})",
                code="RPR-L017",
                hint="inline the helper; user function calls do not map to "
                     "the paper's process model",
            )
        args = list(node.args.exprs) if node.args is not None else []
        if not (info.min_args <= len(args) <= info.max_args):
            raise self._err(node, f"{name} expects {info.min_args} args",
                            code="RPR-L018")

        if name == "co_stream_read":
            stream = self._stream_arg(args[0])
            target = args[1]
            if not (isinstance(target, c_ast.UnaryOp) and target.op == "&"
                    and isinstance(target.expr, c_ast.ID)):
                raise self._err(node, "co_stream_read needs &scalar as 2nd arg",
                                code="RPR-L019")
            var = target.expr.name
            ty = self.func.scalars.get(var)
            if ty is None:
                raise self._err(node,
                                f"co_stream_read into undeclared {var!r}",
                                code="RPR-L020")
            ok = self.func.new_temp(U1, "ok")
            self.emit(
                Instr(OpKind.STREAM_READ, [ok, Temp(var, ty)], [],
                      {"stream": stream}),
                node,
            )
            return ok
        if name == "co_stream_write":
            stream = self._stream_arg(args[0])
            value = self.expr(args[1])
            self.emit(
                Instr(OpKind.STREAM_WRITE, [], [value], {"stream": stream}), node
            )
            return None
        if name == "co_stream_close":
            stream = self._stream_arg(args[0])
            self.emit(Instr(OpKind.STREAM_CLOSE, [], [], {"stream": stream}), node)
            return None
        if name == "assert":
            return self._lower_assert(node, args[0])
        if name in ("co_latency_start", "co_latency_end"):
            return self._lower_latency(node, name, args)
        if name == "ext_hdl":
            value = self.expr(args[0])
            dest = self.func.new_temp(ctypes_.U32, "ext")
            self.emit(Instr(OpKind.EXT_HDL, [dest], [value]), node)
            return dest
        raise self._err(node, f"unhandled intrinsic {name}",
                        code="RPR-L022")  # pragma: no cover

    def _stream_arg(self, node: c_ast.Node) -> str:
        if isinstance(node, c_ast.ID) and node.name in self.func.stream_names():
            return node.name
        raise self._err(node, "expected a co_stream parameter",
                        code="RPR-L021")

    def _lower_assert(self, node: c_ast.FuncCall, cond_ast: c_ast.Node) -> None:
        fname, line = coord_of(node)
        site = AssertionSite(
            ordinal=self._assert_ordinal,
            file=fname,
            line=line,
            function=self.func.name,
            expr_text=_CGEN.visit(cond_ast),
        )
        self._assert_ordinal += 1
        self.func.assertion_sites.append(site)
        cond = self._bool(self.expr(cond_ast), node)
        self.emit(
            Instr(OpKind.ASSERT_CHECK, [], [cond], {"assertion": site}), node
        )
        return None

    def _lower_latency(self, node: c_ast.FuncCall, name: str, args) -> None:
        from repro.core.timing_assert import make_marker

        if self.parsed.ndebug:
            return None  # NDEBUG compiles timing assertions out, like assert
        region_id = _const_int(args[0], self)
        if name == "co_latency_start":
            marker = make_marker("start", region_id, None, None)
        else:
            bound = _const_int(args[1], self)
            fname, line = coord_of(node)
            site = AssertionSite(
                ordinal=-1,
                file=fname,
                line=line,
                function=self.func.name,
                expr_text=f"latency(region {region_id}) <= {bound}",
            )
            marker = make_marker("end", region_id, bound, site)
        self.emit(marker, node)
        return None

    # ---- expressions -----------------------------------------------------------

    def expr(self, node: c_ast.Node) -> Value:
        if isinstance(node, c_ast.Constant):
            return _lower_constant(node, self)
        if isinstance(node, c_ast.ID):
            ty = self.func.scalars.get(node.name)
            if ty is None:
                raise self._err(node, f"use of undeclared {node.name!r}",
                                code="RPR-L023")
            return Temp(node.name, ty)
        if isinstance(node, c_ast.ArrayRef):
            name = _array_name(node, self)
            arr = self.func.arrays.get(name)
            if arr is None:
                raise self._err(node, f"read of undeclared array {name!r}",
                                code="RPR-L024")
            idx = self.expr(node.subscript)
            dest = self.func.new_temp(arr.elem, "ld")
            self.emit(Instr(OpKind.LOAD, [dest], [idx], {"array": name}), node)
            return dest
        if isinstance(node, c_ast.BinaryOp):
            return self._lower_binop(node)
        if isinstance(node, c_ast.UnaryOp):
            return self._lower_unop(node)
        if isinstance(node, c_ast.TernaryOp):
            cond = self._bool(self.expr(node.cond), node)
            a = self.expr(node.iftrue)
            b = self.expr(node.iffalse)
            ct = common_type(a.ty, b.ty)
            dest = self.func.new_temp(ct, "sel")
            self.emit(Instr(OpKind.SELECT, [dest], [cond, a, b]), node)
            return dest
        if isinstance(node, c_ast.Cast):
            ty = self._type(_cast_type_name(node, self), node)
            value = self.expr(node.expr)
            dest = self.func.new_temp(ty, "cast")
            if ty.width <= value.ty.width:
                self.emit(Instr(OpKind.TRUNC, [dest], [value]), node)
            elif value.ty.signed:
                self.emit(Instr(OpKind.SEXT, [dest], [value]), node)
            else:
                self.emit(Instr(OpKind.ZEXT, [dest], [value]), node)
            return dest
        if isinstance(node, c_ast.FuncCall):
            value = self._lower_call(node, as_stmt=False)
            if value is None:
                raise self._err(node, "void intrinsic used as a value",
                                code="RPR-L025")
            return value
        raise self._err(node, f"unsupported expression {type(node).__name__}",
                        code="RPR-L026")

    def _lower_binop(self, node: c_ast.BinaryOp) -> Value:
        if node.op in ("&&", "||"):
            # Synthesized datapaths evaluate both operands; no short-circuit.
            a = self._bool(self.expr(node.left), node)
            b = self._bool(self.expr(node.right), node)
            dest = self.func.new_temp(U1, "l")
            kind = OpKind.AND if node.op == "&&" else OpKind.OR
            self.emit(Instr(kind, [dest], [a, b]), node)
            return dest
        kind = _BINOPS.get(node.op)
        if kind is None:
            raise self._err(node, f"unsupported operator {node.op!r}",
                            code="RPR-L027")
        a = self.expr(node.left)
        b = self.expr(node.right)
        if node.op in _COMPARE_OPS:
            dest = self.func.new_temp(U1, "c")
        elif node.op in ("<<", ">>"):
            dest = self.func.new_temp(a.ty if a.ty.width >= 32 else
                                      common_type(a.ty, a.ty), "t")
        else:
            dest = self.func.new_temp(common_type(a.ty, b.ty), "t")
        self.emit(Instr(kind, [dest], [a, b]), node)
        return dest

    def _lower_unop(self, node: c_ast.UnaryOp) -> Value:
        if node.op in ("p++", "p--", "++", "--"):
            # value-position inc/dec: return pre/post value
            value = self.expr(node.expr)
            pre = self.func.new_temp(value.ty, "t")
            self.emit(Instr(OpKind.MOV, [pre], [value]), node)
            self._lower_incdec(node)
            return pre if node.op.startswith("p") else self.expr(node.expr)
        value_ast = node.expr
        if node.op == "+":
            return self.expr(value_ast)
        if node.op == "-":
            value = self.expr(value_ast)
            ct = common_type(value.ty, value.ty)
            dest = self.func.new_temp(CType(ct.width, True), "neg")
            self.emit(Instr(OpKind.NEG, [dest], [value]), node)
            return dest
        if node.op == "~":
            value = self.expr(value_ast)
            ct = common_type(value.ty, value.ty)
            dest = self.func.new_temp(ct, "not")
            self.emit(Instr(OpKind.NOT, [dest], [value]), node)
            return dest
        if node.op == "!":
            value = self.expr(value_ast)
            dest = self.func.new_temp(U1, "ln")
            self.emit(Instr(OpKind.LNOT, [dest], [value]), node)
            return dest
        if node.op == "sizeof":
            if isinstance(value_ast, c_ast.Typename):
                ty = self._type(_type_name_of(value_ast), node)
            else:
                ty = self.expr(value_ast).ty
            return Const((ty.width + 7) // 8, ctypes_.U32)
        raise self._err(node, f"unsupported unary operator {node.op!r}",
                        code="RPR-L028")


# ---- small AST helpers -----------------------------------------------------


def _type_name_of(node) -> str:
    ty = node.type
    while isinstance(ty, (c_ast.ArrayDecl, c_ast.PtrDecl)):
        ty = ty.type
    if isinstance(ty, c_ast.TypeDecl) and isinstance(ty.type, c_ast.IdentifierType):
        return " ".join(ty.type.names)
    raise LoweringError(
        f"unsupported type for {getattr(node, 'name', '?')!r}",
        code="RPR-L029",
        span=Span.from_coord(getattr(node, "coord", None)),
    )


def _cast_type_name(node: c_ast.Cast, ctx: FunctionLowerer) -> str:
    tn = node.to_type
    if isinstance(tn, c_ast.Typename):
        return _type_name_of(tn)
    raise ctx._err(node, "unsupported cast", code="RPR-L030")


def _array_name(node: c_ast.ArrayRef, ctx: FunctionLowerer) -> str:
    if isinstance(node.name, c_ast.ID):
        return node.name.name
    raise ctx._err(node, "only direct array references are synthesizable",
                   code="RPR-L031")


def _lower_constant(node: c_ast.Constant, ctx: FunctionLowerer) -> Const:
    if node.type in ("int", "long int", "long long int", "unsigned int",
                     "unsigned long int", "unsigned long long int"):
        text = node.value.rstrip("uUlL")
        value = int(text, 0)
        unsigned = "u" in node.value.lower()
        if value <= 0x7FFFFFFF and not unsigned:
            ty = ctypes_.I32
        elif value <= 0xFFFFFFFF and unsigned:
            ty = ctypes_.U32
        elif value <= 0x7FFFFFFFFFFFFFFF and not unsigned:
            ty = ctypes_.I64
        else:
            ty = ctypes_.U64
        return Const(value, ty)
    if node.type == "char":
        text = node.value[1:-1]
        value = ord(text.encode().decode("unicode_escape"))
        return Const(value, ctypes_.I8)
    raise ctx._err(node, f"unsupported constant type {node.type!r}",
                   code="RPR-L032")


def _const_int(node: c_ast.Node, ctx: FunctionLowerer) -> int:
    """Evaluate a compile-time integer expression (array dims, init lists)."""
    if isinstance(node, c_ast.Constant):
        return _lower_constant(node, ctx).value
    if isinstance(node, c_ast.UnaryOp) and node.op == "-":
        return -_const_int(node.expr, ctx)
    if isinstance(node, c_ast.BinaryOp):
        a, b = _const_int(node.left, ctx), _const_int(node.right, ctx)
        table = {
            "+": a + b, "-": a - b, "*": a * b,
            "/": a // b if b else 0, "%": a % b if b else 0,
            "<<": a << b, ">>": a >> b, "&": a & b, "|": a | b, "^": a ^ b,
        }
        if node.op in table:
            return table[node.op]
    raise ctx._err(node, "expression is not a compile-time constant",
                   code="RPR-L033")


# ---- module entry point --------------------------------------------------------


def lower_source(
    source: str,
    filename: str = "<source>",
    defines: dict[str, str] | None = None,
    sink: DiagnosticSink | None = None,
) -> IRModule:
    """Parse and lower dialect C text into an :class:`IRModule`.

    When ``NDEBUG`` is among the ``defines``, assertion sites are still
    recorded (the registry needs them for reporting "compiled out") but no
    ``assert_check`` instructions or condition evaluation are emitted,
    matching ANSI-C semantics of ``assert`` under ``NDEBUG``.

    With a collect-mode ``sink``, errors recover per directive, per
    statement and per function, so one call reports every problem in the
    translation unit; the returned module then only contains the functions
    that lowered cleanly and must not be synthesized if
    ``sink.has_errors``.
    """
    from repro.frontend.parser import parse_source

    sink = sink if sink is not None else DiagnosticSink(strict=True)
    parsed = parse_source(source, filename=filename, defines=defines, sink=sink)
    module = IRModule(source_file=filename)
    for _name, func_def in parsed.functions.items():
        lowerer = FunctionLowerer(parsed, func_def, sink=sink)
        if parsed.ndebug:
            lowerer._lower_assert = _skip_assert.__get__(lowerer)  # type: ignore
        try:
            # recovery point: a function that fails to lower is dropped
            # from the module; the others still produce IR
            module.add(lowerer.lower())
        except ReproError as exc:
            sink.capture(exc)
    return module


def _skip_assert(self: FunctionLowerer, node: c_ast.FuncCall, cond_ast) -> None:
    """NDEBUG replacement for assert lowering: record the site, emit nothing."""
    fname, line = coord_of(node)
    site = AssertionSite(
        ordinal=self._assert_ordinal,
        file=fname,
        line=line,
        function=self.func.name,
        expr_text=_CGEN.visit(cond_ast),
    )
    self._assert_ordinal += 1
    self.func.assertion_sites.append(site)
    return None


__all__ = ["FunctionLowerer", "lower_source"]
