"""Minimal C preprocessor for the synthesizable dialect.

Supports the directives the paper's flow relies on:

* ``#define NAME [value]`` (object-like macros) and ``#undef``
* ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif`` / ``#if defined(X)``
* ``#include "co.h"`` (resolved against a virtual header set; the dialect
  header only provides intrinsics already known to the parser, so inclusion
  is recorded and the line dropped)
* ``#pragma`` lines are passed through (pycparser parses them as Pragma
  nodes; ``#pragma CO PIPELINE`` drives the pipeliner)

The two paper-specific knobs are ordinary macros:

* ``NDEBUG``  — defined: all assertions compile out (ANSI-C semantics).
* ``NABORT``  — defined: assertion failures are reported but do not halt
  the application (the paper's non-standard extension used for the hang
  trace in Section 5.1).

Line numbers are preserved exactly: disabled conditional regions are
replaced by blank lines rather than removed, so assertion error codes
(file/line) match the original source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.diagnostics.sink import DiagnosticSink
from repro.errors import PreprocessorError

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)\s*(.*?)\s*$")
_IDENT_RE = re.compile(r"\b[A-Za-z_]\w*\b")
_DEFINED_RE = re.compile(r"\bdefined\s*(?:\(\s*(\w+)\s*\)|(\w+))")

#: Headers the dialect knows about. Their contents are intrinsic to the
#: parser, so "including" them contributes no tokens.
KNOWN_HEADERS = {"co.h", "assert.h", "stdio.h", "stdlib.h", "stdint.h"}


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    text: str
    defines: dict[str, str]
    included: list[str] = field(default_factory=list)

    @property
    def ndebug(self) -> bool:
        return "NDEBUG" in self.defines

    @property
    def nabort(self) -> bool:
        return "NABORT" in self.defines


def _expand(line: str, defines: dict[str, str]) -> str:
    """Expand object-like macros in a line (single pass, then fixpoint)."""
    for _ in range(16):  # bounded fixpoint; nested macros are shallow here
        def repl(m: re.Match[str]) -> str:
            name = m.group(0)
            return defines.get(name, name) if defines.get(name, name) != name else name

        new = _IDENT_RE.sub(
            lambda m: defines[m.group(0)] if m.group(0) in defines and defines[m.group(0)] != "" else m.group(0),
            line,
        )
        _ = repl
        if new == line:
            return new
        line = new
    return line


def _eval_condition(expr: str, defines: dict[str, str], filename: str, lineno: int) -> bool:
    """Evaluate a ``#if`` condition. Supports ``defined(X)``, integers,
    macro names (expanding to their values), ``!``, ``&&``, ``||``,
    comparisons, and parentheses."""
    expr = _DEFINED_RE.sub(
        lambda m: "1" if (m.group(1) or m.group(2)) in defines else "0", expr
    )
    expr = _IDENT_RE.sub(
        lambda m: defines.get(m.group(0), "0") if m.group(0) not in ("0", "1") else m.group(0),
        expr,
    )
    expr = expr.replace("&&", " and ").replace("||", " or ").replace("!", " not ")
    expr = expr.replace("not =", "!=")  # restore != damaged by the replace
    if not re.fullmatch(r"[\d\s()<>=!*+/%-]+|.*\b(and|or|not)\b.*", expr):
        raise PreprocessorError(f"unsupported #if expression {expr!r}",
                                filename, lineno, code="RPR-P001")
    try:
        return bool(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized
    except Exception as exc:
        raise PreprocessorError(f"bad #if expression: {exc}", filename, lineno,
                                code="RPR-P002") from exc


def strip_comments(source: str) -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line numbering.

    The dialect has no string literals, so no quoting-awareness is needed;
    a comment delimiter inside a character constant is not supported.
    """
    out: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            closed = False
            while i < n:
                if i + 1 < n and source[i] == "*" and source[i + 1] == "/":
                    i += 2
                    closed = True
                    break
                if source[i] == "\n":
                    out.append("\n")
                i += 1
            if closed:
                out.append(" ")
            # an unterminated comment swallows the rest of the file but
            # keeps its newlines, so diagnostics still point at real lines
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def preprocess(
    source: str,
    defines: dict[str, str] | None = None,
    filename: str = "<source>",
    sink: DiagnosticSink | None = None,
) -> PreprocessResult:
    """Preprocess ``source``; ``defines`` are predefined macros (e.g. NDEBUG).

    Returns text with identical line numbering to the input. With a
    collect-mode ``sink``, a malformed directive is reported and replaced
    by a blank line (numbering intact) instead of aborting the whole
    preprocess, so one run surfaces every directive error; without a sink
    (or with a strict one) the first error raises, as before.
    """
    sink = sink if sink is not None else DiagnosticSink(strict=True)
    source = strip_comments(source)
    macros: dict[str, str] = dict(defines or {})
    included: list[str] = []
    out_lines: list[str] = []
    # Conditional stack entries: (taken_now, any_branch_taken, seen_else)
    stack: list[list[bool]] = []

    def active() -> bool:
        return all(frame[0] for frame in stack)

    def handle(directive: str, rest: str, lineno: int) -> None:
        if directive == "define":
            if active():
                parts = rest.split(None, 1)
                if not parts:
                    raise PreprocessorError("#define needs a name",
                                            filename, lineno, code="RPR-P003")
                if "(" in parts[0]:
                    raise PreprocessorError(
                        "function-like macros are not supported by the dialect",
                        filename,
                        lineno,
                        code="RPR-P004",
                        hint="expand the macro by hand; only object-like "
                             "#define NAME [value] is synthesizable",
                    )
                macros[parts[0]] = parts[1] if len(parts) > 1 else ""
        elif directive == "undef":
            if active():
                macros.pop(rest.strip(), None)
        elif directive == "include":
            if active():
                name = rest.strip().strip('"<>')
                if name not in KNOWN_HEADERS:
                    raise PreprocessorError(
                        f"unknown include {name!r} (dialect headers: "
                        f"{sorted(KNOWN_HEADERS)})",
                        filename,
                        lineno,
                        code="RPR-P005",
                    )
                included.append(name)
        elif directive == "ifdef":
            taken = active() and rest.strip() in macros
            stack.append([taken, taken, False])
        elif directive == "ifndef":
            taken = active() and rest.strip() not in macros
            stack.append([taken, taken, False])
        elif directive == "if":
            taken = active() and _eval_condition(rest, macros, filename, lineno)
            stack.append([taken, taken, False])
        elif directive in ("elif", "else"):
            if not stack:
                raise PreprocessorError(f"#{directive} without #if",
                                        filename, lineno, code="RPR-P006")
            frame = stack[-1]
            if frame[2]:
                raise PreprocessorError(f"#{directive} after #else",
                                        filename, lineno, code="RPR-P007")
            parent_active = all(f[0] for f in stack[:-1])
            if directive == "else":
                frame[2] = True
                frame[0] = parent_active and not frame[1]
                frame[1] = frame[1] or frame[0]
            else:
                cond = parent_active and not frame[1] and _eval_condition(
                    rest, macros, filename, lineno
                )
                frame[0] = cond
                frame[1] = frame[1] or cond
        elif directive == "endif":
            if not stack:
                raise PreprocessorError("#endif without #if",
                                        filename, lineno, code="RPR-P008")
            stack.pop()
        else:
            raise PreprocessorError(
                f"unsupported directive #{directive}", filename, lineno,
                code="RPR-P009",
            )

    lines = source.split("\n")
    i = 0
    while i < len(lines):
        raw = lines[i]
        lineno = i + 1
        # Directive continuation lines are not supported (the dialect does
        # not need function-like macros or multi-line defines).
        m = _DIRECTIVE_RE.match(raw)
        if m and m.group(1) != "pragma":
            try:
                # recovery point: a bad #if still pushes its frame inside
                # handle(), so later #endif lines keep matching up
                handle(m.group(1), m.group(2), lineno)
            except PreprocessorError as exc:
                sink.capture(exc)
            out_lines.append("")
        else:
            if active():
                out_lines.append(_expand(raw, macros))
            else:
                out_lines.append("")
        i += 1

    if stack:
        try:
            raise PreprocessorError("unterminated #if/#ifdef", filename,
                                    len(lines), code="RPR-P010")
        except PreprocessorError as exc:
            sink.capture(exc)
    return PreprocessResult(text="\n".join(out_lines), defines=macros, included=included)
