"""C type system with exact bit widths.

The dialect accepted by the toolchain is ANSI C restricted to what the
paper's Impulse-C flow synthesizes, extended with explicit-width integer
type names (``int5``, ``uint33``, ...) mirroring Impulse-C's ``co_intN`` /
``co_uintN``. Exact widths matter twice:

* the resource estimator charges area per bit, and
* the paper's Section 5.1 translation bug is a *width* bug (a 64-bit
  comparison erroneously emitted as a 5-bit comparison), which we can only
  reproduce if widths are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproTypeError

MAX_WIDTH = 64


@dataclass(frozen=True)
class CType:
    """An integer type of exact ``width`` bits, signed or unsigned."""

    width: int
    signed: bool

    def __post_init__(self) -> None:
        if not (1 <= self.width <= MAX_WIDTH):
            raise ReproTypeError(
                f"unsupported width {self.width} (1..{MAX_WIDTH})",
                code="RPR-T001",
            )

    @property
    def name(self) -> str:
        return f"{'int' if self.signed else 'uint'}{self.width}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Canonical instances for the common widths.
U1 = CType(1, False)
U8 = CType(8, False)
U16 = CType(16, False)
U32 = CType(32, False)
U64 = CType(64, False)
I8 = CType(8, True)
I16 = CType(16, True)
I32 = CType(32, True)
I64 = CType(64, True)

#: Builtin C type spellings -> CType. Multi-keyword forms are normalized by
#: the parser before lookup (sorted keyword order).
BUILTIN_TYPES: dict[str, CType] = {
    "char": I8,
    "signed char": I8,
    "unsigned char": U8,
    "short": I16,
    "short int": I16,
    "unsigned short": U16,
    "int": I32,
    "signed": I32,
    "signed int": I32,
    "unsigned": U32,
    "unsigned int": U32,
    "long": I32,  # ILP32, matching the paper's 32-bit Impulse-C default
    "long int": I32,
    "unsigned long": U32,
    "long long": I64,
    "long long int": I64,
    "unsigned long long": U64,
    "_Bool": U1,
}


def explicit_width_type(name: str) -> CType | None:
    """Parse ``intN``/``uintN`` spellings; return None if not that shape."""
    for prefix, signed in (("uint", False), ("int", True)):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            width = int(name[len(prefix):])
            if not (1 <= width <= MAX_WIDTH):
                raise ReproTypeError(
                    f"width out of range in type name {name!r}",
                    code="RPR-T002",
                    hint=f"widths 1..{MAX_WIDTH} are synthesizable",
                )
            return CType(width, signed)
    return None


def lookup_type(name: str) -> CType:
    """Resolve a type spelling to a :class:`CType` or raise."""
    if name in BUILTIN_TYPES:
        return BUILTIN_TYPES[name]
    t = explicit_width_type(name)
    if t is not None:
        return t
    raise ReproTypeError(
        f"unknown type {name!r}",
        code="RPR-T003",
        hint="supported: the C integer types and intN/uintN (N = 1..64)",
    )


def common_type(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions, restricted to our integer types.

    Both operands are promoted to at least ``int`` (32 bits) and then to the
    wider of the two; unsignedness wins at equal width, as in C.
    """
    width = max(a.width, b.width, 32)
    if a.width == b.width and a.width >= 32:
        signed = a.signed and b.signed
    else:
        wider, narrower = (a, b) if a.width > b.width else (b, a)
        if wider.width >= 32:
            signed = wider.signed
        else:
            signed = True  # both promoted to int
        if a.width == b.width:
            signed = a.signed and b.signed
        _ = narrower
    return CType(width, signed)


def all_dialect_typedef_names() -> list[str]:
    """Every ``intN``/``uintN`` name, used to pre-register pycparser typedefs."""
    names = []
    for width in range(1, MAX_WIDTH + 1):
        names.append(f"int{width}")
        names.append(f"uint{width}")
    return names
