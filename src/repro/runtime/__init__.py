"""Task-graph runtime: applications, software simulation, hardware execution."""

from repro.runtime.hwexec import (
    CollectorSpec,
    FailStreamDecode,
    HardwareImage,
    HwResult,
    execute,
)
from repro.runtime.swsim import SimResult, software_sim
from repro.runtime.taskgraph import (
    Application,
    Endpoint,
    GraphError,
    ProcessDef,
    StreamDef,
    TapDef,
)

__all__ = [
    "CollectorSpec",
    "FailStreamDecode",
    "HardwareImage",
    "HwResult",
    "execute",
    "SimResult",
    "software_sim",
    "Application",
    "Endpoint",
    "GraphError",
    "ProcessDef",
    "StreamDef",
    "TapDef",
]
