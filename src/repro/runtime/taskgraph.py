"""Application model: processes, streams and tap channels.

An :class:`Application` is the paper's "application modeled as a task
graph" — FPGA processes (C functions compiled by the HLS flow) connected by
streams, plus CPU-side feeders and sinks reached over the board's single
multiplexed physical channel. Assertion synthesis (:mod:`repro.core`)
rewrites an application: it adds checker processes, tap channels, failure
streams and collector processes, then hands the result to
:func:`repro.runtime.hwexec.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.frontend.lowering import lower_source
from repro.hls.constraints import HLSConfig
from repro.ir.function import IRFunction
from repro.ir.ops import OpKind


class GraphError(ReproError):
    """Raised for malformed task graphs."""

    code_prefix = "RPR-R"


@dataclass(frozen=True)
class Endpoint:
    """(process name, stream parameter name). CPU ends use process='cpu'."""

    process: str
    port: str

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        process, _, port = text.partition(".")
        if not port:
            raise GraphError(f"endpoint {text!r} must be 'process.port'", code="RPR-R001")
        return cls(process, port)

    def __str__(self) -> str:
        return f"{self.process}.{self.port}"


@dataclass
class ProcessDef:
    """One node of the task graph."""

    name: str
    func: IRFunction | None = None     # None for collector pseudo-processes
    kind: str = "fpga"                 # 'fpga' | 'collector'
    daemon: bool = False               # daemons need not finish for app completion
    config: HLSConfig | None = None
    ext_sw: dict = field(default_factory=dict)
    ext_hw: dict = field(default_factory=dict)
    collector_spec: object = None      # set by repro.core.share for collectors

    @property
    def stream_params(self) -> list[str]:
        return self.func.stream_names() if self.func is not None else []


@dataclass
class StreamDef:
    """One co_stream channel of the task graph.

    Exactly one of (``source``, ``feeder_data``) is a producer; exactly one
    of (``dest``, cpu sink) is a consumer. CPU-side streams cross the
    board's multiplexed physical link during hardware execution.
    """

    name: str
    source: Endpoint | None = None       # None => CPU feeder
    dest: Endpoint | None = None         # None => CPU sink
    width: int = 32
    depth: int = 16
    feeder_data: list[int] | None = None
    #: decoding role during hardware execution: None (plain data),
    #: 'assert_code' (word = assertion error code) or 'assert_bitmask'
    #: (bit i identifies an assertion; see repro.core.share)
    role: str | None = None
    role_info: dict = field(default_factory=dict)

    @property
    def cpu_bound(self) -> bool:
        return self.dest is None

    @property
    def cpu_fed(self) -> bool:
        return self.source is None


@dataclass
class TapDef:
    """An assertion data tap: app process -> checker/collector process."""

    name: str
    source: str
    dest: str
    widths: tuple[int, ...] = (32,)


class Application:
    """A task graph plus everything needed to simulate or synthesize it."""

    def __init__(self, name: str):
        self.name = name
        self.processes: dict[str, ProcessDef] = {}
        self.streams: dict[str, StreamDef] = {}
        self.taps: dict[str, TapDef] = {}
        self.nabort = False

    # ---- construction --------------------------------------------------------

    def add_c_process(
        self,
        source: str,
        function: str | None = None,
        name: str | None = None,
        filename: str | None = None,
        defines: dict[str, str] | None = None,
        config: HLSConfig | None = None,
        ext_sw: dict | None = None,
        ext_hw: dict | None = None,
        daemon: bool = False,
    ) -> ProcessDef:
        """Parse and lower C ``source`` and add one of its functions.

        ``function`` defaults to the sole function in the file. ``defines``
        passes preprocessor macros (``NDEBUG``, ``NABORT``...).
        """
        module = lower_source(
            source, filename=filename or f"{name or 'proc'}.c", defines=defines
        )
        if function is None:
            if len(module.functions) != 1:
                raise GraphError(
                    f"source defines {sorted(module.functions)}; "
                    f"pass function=", code="RPR-R002")
            function = next(iter(module.functions))
        if defines and "NABORT" in defines:
            self.nabort = True
        func = module[function]
        return self.add_ir_process(
            func, name=name, config=config, ext_sw=ext_sw, ext_hw=ext_hw,
            daemon=daemon,
        )

    def add_ir_process(
        self,
        func: IRFunction,
        name: str | None = None,
        config: HLSConfig | None = None,
        daemon: bool = False,
        kind: str = "fpga",
        ext_sw: dict | None = None,
        ext_hw: dict | None = None,
    ) -> ProcessDef:
        name = name or func.name
        if name in self.processes:
            raise GraphError(f"duplicate process {name!r}", code="RPR-R003")
        pd = ProcessDef(
            name=name,
            func=func,
            kind=kind,
            daemon=daemon,
            config=config,
            ext_sw=dict(ext_sw or {}),
            ext_hw=dict(ext_hw or {}),
        )
        self.processes[name] = pd
        return pd

    def feed(
        self,
        stream: str,
        to: str,
        data: list[int],
        width: int = 32,
        depth: int = 16,
    ) -> StreamDef:
        """CPU feeder: ``data`` is streamed to ``to`` ('process.port') and
        the stream closes after the last word."""
        sd = StreamDef(
            stream,
            source=None,
            dest=Endpoint.parse(to),
            width=width,
            depth=depth,
            feeder_data=list(data),
        )
        return self._add_stream(sd)

    def sink(self, stream: str, source: str, width: int = 32,
             depth: int = 16, role: str | None = None,
             role_info: dict | None = None) -> StreamDef:
        """CPU sink: everything ``source`` writes is collected on the CPU."""
        sd = StreamDef(
            stream,
            source=Endpoint.parse(source),
            dest=None,
            width=width,
            depth=depth,
            role=role,
            role_info=dict(role_info or {}),
        )
        return self._add_stream(sd)

    def connect(self, stream: str, source: str, to: str,
                width: int = 32, depth: int = 16) -> StreamDef:
        """FPGA-internal stream between two processes."""
        sd = StreamDef(
            stream,
            source=Endpoint.parse(source),
            dest=Endpoint.parse(to),
            width=width,
            depth=depth,
        )
        return self._add_stream(sd)

    def add_tap(self, name: str, source: str, dest: str,
                widths: tuple[int, ...]) -> TapDef:
        if name in self.taps:
            raise GraphError(f"duplicate tap {name!r}", code="RPR-R004")
        td = TapDef(name, source, dest, tuple(widths))
        self.taps[name] = td
        return td

    def _add_stream(self, sd: StreamDef) -> StreamDef:
        if sd.name in self.streams:
            raise GraphError(f"duplicate stream {sd.name!r}", code="RPR-R005")
        self.streams[sd.name] = sd
        return sd

    def clone(self, name: str | None = None) -> "Application":
        """Deep-copy the graph. Assertion synthesis transforms a clone, so
        the original (used for software simulation) stays untouched."""
        import copy as _copy

        other = Application(name or self.name)
        other.nabort = self.nabort
        for pd in self.processes.values():
            other.processes[pd.name] = ProcessDef(
                name=pd.name,
                func=pd.func.clone() if pd.func is not None else None,
                kind=pd.kind,
                daemon=pd.daemon,
                config=pd.config,
                ext_sw=dict(pd.ext_sw),
                ext_hw=dict(pd.ext_hw),
                collector_spec=_copy.deepcopy(pd.collector_spec),
            )
        for sd in self.streams.values():
            other.streams[sd.name] = StreamDef(
                name=sd.name,
                source=sd.source,
                dest=sd.dest,
                width=sd.width,
                depth=sd.depth,
                feeder_data=list(sd.feeder_data) if sd.feeder_data is not None else None,
                role=sd.role,
                role_info=dict(sd.role_info),
            )
        for td in self.taps.values():
            other.taps[td.name] = TapDef(td.name, td.source, td.dest, td.widths)
        return other

    # ---- validation / queries ---------------------------------------------------

    def stream_binding(self, process: str) -> dict[str, StreamDef]:
        """Map a process's stream parameter names to their StreamDefs."""
        out: dict[str, StreamDef] = {}
        for sd in self.streams.values():
            for ep in (sd.source, sd.dest):
                if ep is not None and ep.process == process:
                    if ep.port in out:
                        raise GraphError(
                            f"{process}.{ep.port} bound to multiple "
                            f"streams", code="RPR-R006")
                    out[ep.port] = sd
        return out

    def validate(self) -> None:
        """Check the graph is closed: every stream param of every FPGA
        process is bound, and stream directions match IR usage."""
        for pd in self.processes.values():
            if pd.func is None:
                continue
            binding = self.stream_binding(pd.name)
            for param in pd.stream_params:
                if param not in binding:
                    raise GraphError(f"{pd.name}.{param} is unbound", code="RPR-R007")
            reads, writes = _stream_directions(pd.func)
            for param, sd in binding.items():
                is_source = sd.source is not None and sd.source.process == pd.name \
                    and sd.source.port == param
                if is_source and param in reads and param not in writes:
                    raise GraphError(
                        f"{pd.name}.{param} reads stream {sd.name} "
                        f"but is its producer", code="RPR-R008")
                if not is_source and param in writes and param not in reads:
                    raise GraphError(
                        f"{pd.name}.{param} writes stream {sd.name} "
                        f"but is its consumer", code="RPR-R009")

    def fpga_processes(self) -> list[ProcessDef]:
        return [p for p in self.processes.values() if p.kind == "fpga"]

    def assertion_sites(self) -> list[tuple[str, object]]:
        """(process name, AssertionSite) for every assertion in the app."""
        out = []
        for pd in self.fpga_processes():
            for site in pd.func.assertion_sites:
                out.append((pd.name, site))
        return out


def _stream_directions(func: IRFunction) -> tuple[set[str], set[str]]:
    reads: set[str] = set()
    writes: set[str] = set()
    for instr in func.instructions():
        if instr.op == OpKind.STREAM_READ:
            reads.add(instr.attrs["stream"])
        elif instr.op in (OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE):
            writes.add(instr.attrs["stream"])
    return reads, writes
