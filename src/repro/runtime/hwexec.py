"""Hardware execution: cycle-accurate co-simulation of the whole system.

The synthesized application runs as a set of :class:`ProcessExec` circuit
models connected by FIFO channels, a board model with **one time-multiplexed
physical CPU<->FPGA link** (the paper's portability mechanism: all logical
streams, including assertion-failure streams, share it round-robin, one
word per direction per cycle), collector pseudo-processes for shared
failure channels, and the CPU-side assertion notification function that
decodes failure words, prints the ANSI-C message and halts the application
(unless ``NABORT``).

Terminations are classified by the runtime watchdog
(:mod:`repro.runtime.watchdog`): ``completed``, ``aborted`` (assertion
halt), ``deadlock`` (everything stalled — reported with per-process traces
naming the blocked source lines, exactly the debugging workflow of the
paper's Section 5.1 second example), ``livelock`` (active but no stream
progress — the DES polling hang), and ``timeout`` (cycle budget exhausted
mid-progress). Runtime faults (:mod:`repro.faults.runtime`) can be
injected into the channel fabric and process registers, and under
``NABORT`` the watchdog can quarantine stuck processes so the rest of the
application — including in-flight assertion notifications — drains to
completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.runtime import RuntimeFaultInjector
from repro.hls.compiler import CompiledProcess
from repro.hls.cyclemodel import Channel, ProcessExec, ProcessTrace
from repro.ir.instr import AssertionSite
from repro.runtime.taskgraph import Application
from repro.runtime.watchdog import (
    ABORTED,
    COMPLETED,
    HANG_REASONS,
    TIMEOUT,
    Watchdog,
    WatchdogConfig,
    WatchdogReport,
)


@dataclass
class CollectorSpec:
    """Shared-failure-channel collector (repro.core.share).

    ``inputs`` maps tap channels carrying failure events to bit positions of
    the packed word sent on ``output`` ("a single bit of the stream is used
    per assertion", Section 4.2).
    """

    inputs: list[tuple[str, int]] = field(default_factory=list)
    output: str = ""


@dataclass
class FailStreamDecode:
    """How the notifier interprets words arriving on one failure stream.

    ``mode='code'``: the word is an assertion error code (unoptimized
    framework, Section 4.1). ``mode='bitmask'``: each set bit identifies an
    assertion on this shared channel (resource sharing, Section 4.2).
    """

    mode: str
    table: dict[int, tuple[str, AssertionSite]] = field(default_factory=dict)


@dataclass
class HardwareImage:
    """A fully synthesized application, ready to execute or to estimate."""

    app: Application
    compiled: dict[str, CompiledProcess]
    assert_decode: dict[str, FailStreamDecode] = field(default_factory=dict)
    nabort: bool = False
    assertion_level: str = "none"
    #: timing assertions (repro.core.timing_assert.LatencyRegion)
    latency_regions: list = field(default_factory=list)
    #: simulation backend requested at synthesis time ("interp"/"compiled");
    #: execute() can still override per run
    sim_backend: str = "compiled"

    def decode_failure(self, stream: str, word: int) -> list[tuple[str, AssertionSite]]:
        decode = self.assert_decode.get(stream)
        if decode is None:
            return []
        if decode.mode == "code":
            hit = decode.table.get(word)
            return [hit] if hit is not None else []
        # the bit range is defined by the decode table itself: a shared
        # failure channel wider than 32 assertions (wide share_word_width)
        # must not silently drop the high bits
        hits = []
        for bit in sorted(decode.table):
            if (word >> bit) & 1:
                hits.append(decode.table[bit])
        return hits


@dataclass
class HwResult:
    """Outcome of a hardware execution.

    ``reason`` is one of :data:`repro.runtime.watchdog.TERMINATIONS`:
    ``completed`` / ``aborted`` / ``deadlock`` / ``livelock`` /
    ``timeout`` — the legacy ``hung`` flag (which conflated the last
    three) survives as a derived property.
    """

    completed: bool
    cycles: int
    outputs: dict[str, list[int]] = field(default_factory=dict)
    #: warning dicts from compiled->interp backend fallbacks (RPR-K101)
    backend_diagnostics: list[dict] = field(default_factory=list)
    stderr: list[str] = field(default_factory=list)
    failures: list[tuple[str, AssertionSite]] = field(default_factory=list)
    aborted_by: AssertionSite | None = None
    reason: str = COMPLETED
    traces: list[ProcessTrace] = field(default_factory=list)
    process_stats: dict[str, dict] = field(default_factory=dict)
    #: cycle at which the first assertion failure reached the CPU notifier
    #: (detection latency for fault campaigns); None if none arrived
    first_failure_cycle: int | None = None
    #: processes retired by the watchdog's NABORT graceful degradation
    quarantined: list[str] = field(default_factory=list)
    watchdog: WatchdogReport | None = None
    #: what injected runtime faults actually did, in firing order
    fault_events: list[str] = field(default_factory=list)

    @property
    def aborted(self) -> bool:
        return self.aborted_by is not None

    @property
    def hung(self) -> bool:
        return self.reason in HANG_REASONS


class _Arbiter:
    """Round-robin merge of per-assertion tap FIFOs (the paper's Section
    3.3 future-work extension): one record per cycle moves from a member
    FIFO onto the merged channel, tagged with the assertion index and with
    the member's values placed at its slot offsets."""

    pending = 0  # drain-condition compatibility with _Collector

    def __init__(self, spec, taps: dict[str, Channel]):
        self.spec = spec
        self.taps = taps
        self.rr = 0

    def tick(self) -> bool:
        n = len(self.spec.inputs)
        for k in range(n):
            idx = (self.rr + k) % n
            ch = self.taps[self.spec.inputs[idx]]
            if ch.can_pop():
                record = ch.pop()
                slots = [0] * self.spec.total_slots
                base = self.spec.offsets[idx]
                for i, v in enumerate(record):
                    slots[base + i] = v
                self.taps[self.spec.output].push((idx, *slots))
                self.rr = (idx + 1) % n
                return True
        return False


class _LatencyMonitor:
    """Hardware latency monitor: a cycle counter per measured region plus a
    bound comparator (the paper's future-work timing assertions)."""

    pending = 0

    def __init__(self, region, taps: dict[str, Channel]):
        self.region = region
        self.taps = taps
        self.start_cycle: int | None = None
        self.violations: list[tuple[object, int]] = []

    def tick(self, cycle: int) -> bool:
        active = False
        start_ch = self.taps[self.region.start_channel]
        while start_ch.can_pop():
            start_ch.pop()
            self.start_cycle = cycle
            active = True
        end_ch = self.taps[self.region.end_channel]
        while end_ch.can_pop():
            end_ch.pop()
            active = True
            if self.start_cycle is None:
                continue  # end without start: extraction rejects this shape
            elapsed = cycle - self.start_cycle
            if elapsed > self.region.bound:
                self.violations.append((self.region, elapsed))
            self.start_cycle = None
        return active


class _Collector:
    """Cycle behaviour of a CollectorSpec: OR arriving failure bits into a
    sticky word and push it on the shared failure stream when non-zero."""

    def __init__(self, spec: CollectorSpec, taps: dict[str, Channel],
                 out: Channel):
        self.spec = spec
        self.taps = taps
        self.out = out
        self.pending = 0

    def tick(self) -> bool:
        active = False
        for name, bit in self.spec.inputs:
            ch = self.taps[name]
            while ch.can_pop():
                ch.pop()
                self.pending |= 1 << bit
                active = True
        if self.pending and self.out.can_push():
            self.out.push(self.pending)
            self.pending = 0
            active = True
        return active


def execute(
    image: HardwareImage,
    max_cycles: int = 2_000_000,
    idle_limit: int = 64,
    watchdog: WatchdogConfig | None = None,
    faults=(),
    sim_backend: str | None = None,
) -> HwResult:
    """Run the synthesized application cycle by cycle.

    ``watchdog`` overrides the termination watchdog configuration (the
    ``max_cycles``/``idle_limit`` arguments are folded into a default
    config when it is None). ``faults`` is an iterable of runtime faults
    (:mod:`repro.faults.runtime`) injected into the channel fabric and
    process registers for this run only. ``sim_backend`` overrides the
    image's synthesis-time backend choice (``None`` keeps it); fallbacks
    to the interpreter are recorded in ``HwResult.backend_diagnostics``.
    """
    from repro import simc

    cfg = watchdog or WatchdogConfig(max_cycles=max_cycles,
                                     idle_limit=idle_limit)
    backend = simc.resolve_backend(
        sim_backend or getattr(image, "sim_backend", None))
    app = image.app
    app.validate()

    channels: dict[str, Channel] = {}
    cpu_outputs: dict[str, list[int]] = {}
    feeders: dict[str, list[int]] = {}
    for sd in app.streams.values():
        channels[sd.name] = Channel(sd.name, width=sd.width, depth=sd.depth)
        if sd.cpu_fed:
            feeders[sd.name] = list(sd.feeder_data or [])
        if sd.cpu_bound:
            cpu_outputs[sd.name] = []
    taps: dict[str, Channel] = {
        name: Channel(name, unbounded=True) for name in app.taps
    }

    execs: dict[str, ProcessExec] = {}
    backend_diags: list[dict] = []
    for pd in app.fpga_processes():
        binding = {
            param: channels[sd.name]
            for param, sd in app.stream_binding(pd.name).items()
        }
        execs[pd.name] = simc.make_process_exec(
            image.compiled[pd.name].schedule,
            binding,
            taps=taps,
            ext_funcs=pd.ext_hw,
            name=pd.name,
            backend=backend,
            diagnostics=backend_diags,
        )

    collectors = [
        _Collector(pd.collector_spec, taps, channels[pd.collector_spec.output])
        for pd in app.processes.values()
        if pd.kind == "collector" and pd.collector_spec is not None
    ]
    collectors.extend(
        _Arbiter(pd.collector_spec, taps)
        for pd in app.processes.values()
        if pd.kind == "arbiter" and pd.collector_spec is not None
    )

    injector = RuntimeFaultInjector(faults)
    injector.attach(channels, execs)

    result = HwResult(completed=False, cycles=0, reason=TIMEOUT,
                      backend_diagnostics=backend_diags)
    fed_order = sorted(feeders)
    sink_order = sorted(cpu_outputs)
    feed_rr = 0
    sink_rr = 0
    halted = False

    def board_tick() -> bool:
        nonlocal feed_rr, sink_rr
        moved = False
        # CPU -> FPGA: one word per cycle across all feeder streams
        for k in range(len(fed_order)):
            name = fed_order[(feed_rr + k) % len(fed_order)]
            ch = channels[name]
            data = feeders[name]
            if data and ch.can_push():
                ch.push(data.pop(0))
                if not data:
                    ch.close()
                feed_rr = (feed_rr + k + 1) % len(fed_order)
                moved = True
                break
            if not data and not ch.closed:
                ch.close()
                moved = True
        # FPGA -> CPU: one word per cycle across all sink streams
        for k in range(len(sink_order)):
            name = sink_order[(sink_rr + k) % len(sink_order)]
            ch = channels[name]
            if ch.can_pop():
                word = ch.pop()
                _deliver(name, word)
                sink_rr = (sink_rr + k + 1) % len(sink_order)
                moved = True
                break
        return moved

    def _deliver(stream: str, word: int) -> None:
        nonlocal halted
        sd = app.streams[stream]
        if sd.role in ("assert_code", "assert_bitmask"):
            hits = image.decode_failure(stream, word)
            if hits and result.first_failure_cycle is None:
                result.first_failure_cycle = result.cycles
            for proc, site in hits:
                result.failures.append((proc, site))
                result.stderr.append(site.message())
                if not image.nabort:
                    result.aborted_by = site
                    halted = True
        else:
            cpu_outputs[stream].append(word)

    monitors = [
        _LatencyMonitor(region, taps) for region in image.latency_regions
    ]
    wd = Watchdog(cfg, app=app, execs=execs, channels=channels)
    quarantine_rounds = 0

    for _cycle in range(cfg.max_cycles):
        result.cycles += 1
        injector.tick()
        active = board_tick()
        for collector in collectors:
            if collector.tick():
                active = True
        for pe in execs.values():
            status = pe.tick()
            if status == "active":
                active = True
        for monitor in monitors:
            if monitor.tick(result.cycles):
                active = True
            for region, elapsed in monitor.violations:
                if result.first_failure_cycle is None:
                    result.first_failure_cycle = result.cycles
                result.failures.append((region.process, region.site))
                result.stderr.append(region.message(elapsed))
                if not image.nabort:
                    result.aborted_by = region.site
                    halted = True
            monitor.violations.clear()
        if halted:
            result.reason = ABORTED
            break
        blocking = [
            pd.name for pd in app.fpga_processes()
            if not pd.daemon and not execs[pd.name].done
        ]
        if not blocking:
            # the application is done, but failure notifications may still
            # be in flight through checker pipelines, collectors and the
            # board link — drain everything before declaring completion
            drained = (
                all(not channels[name].can_pop() for name in sink_order)
                and all(not ch.can_pop() for ch in taps.values())
                and all(c.pending == 0 for c in collectors)
                and not active
            )
            if drained:
                result.completed = True
                result.reason = COMPLETED
                break
        verdict = wd.observe(active)
        if verdict is not None:
            # graceful degradation: under NABORT the stuck processes are
            # quarantined (retired, their output streams closed) so the
            # survivors — and every failure word still in flight — drain
            if (cfg.quarantine and image.nabort
                    and quarantine_rounds < cfg.max_quarantine_rounds):
                victims = wd.victims(verdict)
                if victims:
                    quarantine_rounds += 1
                    if result.watchdog is None:
                        # triage snapshot from the moment the watchdog
                        # fired, even if the run then drains to completion
                        result.watchdog = wd.report(verdict)
                    for name in victims:
                        execs[name].quarantine()
                        for sd in app.streams.values():
                            if (sd.source is not None
                                    and sd.source.process == name):
                                channels[sd.name].close()
                    result.quarantined.extend(victims)
                    wd.reset_after_quarantine(victims)
                    continue
            result.reason = verdict
            result.traces = [pe.trace() for pe in execs.values()]
            result.watchdog = wd.report(verdict)
            break
    else:
        result.reason = TIMEOUT
        result.traces = [pe.trace() for pe in execs.values()]
        result.watchdog = wd.report(TIMEOUT)

    for name in sink_order:
        sd = app.streams[name]
        if sd.role is None:
            result.outputs[name] = cpu_outputs[name]
    for name, pe in execs.items():
        result.process_stats[name] = {
            "cycles": pe.cycles,
            "stalls": pe.stall_cycles,
            "iterations": pe.iterations_started,
            "stream_ops": pe.stream_ops,
            "quarantined": pe.quarantined,
            "backend": getattr(pe, "backend", "interp"),
        }
    result.fault_events = injector.event_log()
    injector.detach()
    return result


# ---------------------------------------------------------------------------
# batched execution: N independent lanes of one image, advanced in lockstep
# ---------------------------------------------------------------------------


@dataclass
class LaneSpec:
    """Per-lane inputs for :func:`execute_batch`.

    Each lane is a fully independent run of the same :class:`HardwareImage`
    — its own channels, taps, fault injector and watchdog — differing only
    in what this spec overrides: the runtime faults injected into the lane
    and, optionally, per-stream feeder data replacing the image's default
    stimulus (``None`` keeps the stream's ``feeder_data``).
    """

    faults: tuple = ()
    feeder_data: dict[str, list[int]] | None = None


class _LanewiseGroup:
    """Fallback batch adapter: per-lane scalar simulators, same contract.

    Used when the batched code generator cannot specialize a process (or
    the interpreter backend was requested): ``tick_lanes`` simply ticks
    each lane's scalar executor. Lane results stay bit-identical to scalar
    runs because they literally are scalar runs.
    """

    def __init__(self, lanes):
        self.lanes = lanes

    def tick_lanes(self, lane_ids, statuses: list) -> None:
        lanes = self.lanes
        for l in lane_ids:
            statuses[l] = lanes[l].tick()


class _LaneCtx:
    """All mutable per-lane state of the scalar ``execute`` loop."""

    __slots__ = ("channels", "taps", "cpu_outputs", "feeders", "execs",
                 "collectors", "monitors", "injector", "wd", "result",
                 "feed_rr", "sink_rr", "halted", "quarantine_rounds",
                 "alive")


def execute_batch(
    image: HardwareImage,
    lanes: list[LaneSpec],
    max_cycles: int = 2_000_000,
    idle_limit: int = 64,
    watchdog: WatchdogConfig | None = None,
    sim_backend: str | None = None,
) -> list[HwResult]:
    """Run N independent lanes of ``image`` through one lockstep loop.

    Per lane this replays :func:`execute` exactly — same per-cycle order
    (injector, board link, collectors, process ticks, monitors, abort /
    drain / watchdog classification), same quarantine semantics, same
    result fields — so ``execute_batch(image, [LaneSpec(faults=f)])[i]``
    is bit-identical to ``execute(image, faults=f)`` for every lane. The
    win is dispatch amortization: all lanes of one process advance through
    one generated structure-of-arrays tick function per cycle
    (:class:`repro.simc.schedgen.BatchedProcessExec`), and a lane that
    terminates (abort, deadlock, completion, assertion trip) is simply
    dropped from the lane lists without stalling its siblings.
    """
    from repro import simc
    from repro.errors import SimCompileError
    from repro.simc.schedgen import BatchedProcessExec

    n = len(lanes)
    if n < 1:
        raise SimCompileError("execute_batch needs at least one lane",
                              code="RPR-K030")
    cfg = watchdog or WatchdogConfig(max_cycles=max_cycles,
                                     idle_limit=idle_limit)
    backend = simc.resolve_backend(
        sim_backend or getattr(image, "sim_backend", None))
    app = image.app
    app.validate()

    ctxs: list[_LaneCtx] = []
    for spec in lanes:
        ctx = _LaneCtx()
        ctx.channels = {}
        ctx.cpu_outputs = {}
        ctx.feeders = {}
        for sd in app.streams.values():
            ctx.channels[sd.name] = Channel(sd.name, width=sd.width,
                                            depth=sd.depth)
            if sd.cpu_fed:
                override = (spec.feeder_data or {}).get(sd.name)
                ctx.feeders[sd.name] = list(
                    sd.feeder_data or [] if override is None else override)
            if sd.cpu_bound:
                ctx.cpu_outputs[sd.name] = []
        ctx.taps = {name: Channel(name, unbounded=True) for name in app.taps}
        ctx.execs = {}
        ctx.feed_rr = 0
        ctx.sink_rr = 0
        ctx.halted = False
        ctx.quarantine_rounds = 0
        ctx.alive = True
        ctxs.append(ctx)

    # one batched executor (or lanewise fallback) per FPGA process
    lane_diags: list[list[dict]] = [[] for _ in range(n)]
    groups: dict[str, object] = {}
    for pd in app.fpga_processes():
        lane_streams = []
        for ctx in ctxs:
            lane_streams.append({
                param: ctx.channels[sd.name]
                for param, sd in app.stream_binding(pd.name).items()
            })
        group = None
        if backend != "interp":
            try:
                group = BatchedProcessExec(
                    image.compiled[pd.name].schedule,
                    lane_streams,
                    lane_taps=[ctx.taps for ctx in ctxs],
                    lane_ext_funcs=[pd.ext_hw] * n,
                    name=pd.name,
                )
            except SimCompileError as exc:
                for diags in lane_diags:
                    diags.append(simc.fallback_diagnostic(
                        f"process {pd.name} [batched]", exc))
        if group is None:
            group = _LanewiseGroup([
                simc.make_process_exec(
                    image.compiled[pd.name].schedule,
                    lane_streams[l],
                    taps=ctxs[l].taps,
                    ext_funcs=pd.ext_hw,
                    name=pd.name,
                    backend=backend,
                    diagnostics=lane_diags[l],
                )
                for l in range(n)
            ])
        groups[pd.name] = group
        for l, ctx in enumerate(ctxs):
            ctx.execs[pd.name] = group.lanes[l]

    for l, (spec, ctx) in enumerate(zip(lanes, ctxs)):
        ctx.collectors = [
            _Collector(pd.collector_spec, ctx.taps,
                       ctx.channels[pd.collector_spec.output])
            for pd in app.processes.values()
            if pd.kind == "collector" and pd.collector_spec is not None
        ]
        ctx.collectors.extend(
            _Arbiter(pd.collector_spec, ctx.taps)
            for pd in app.processes.values()
            if pd.kind == "arbiter" and pd.collector_spec is not None
        )
        ctx.monitors = [
            _LatencyMonitor(region, ctx.taps)
            for region in image.latency_regions
        ]
        ctx.injector = RuntimeFaultInjector(spec.faults)
        ctx.injector.attach(ctx.channels, ctx.execs)
        ctx.wd = Watchdog(cfg, app=app, execs=ctx.execs,
                          channels=ctx.channels)
        ctx.result = HwResult(completed=False, cycles=0, reason=TIMEOUT,
                              backend_diagnostics=lane_diags[l])

    fed_order = sorted(ctxs[0].feeders)
    sink_order = sorted(ctxs[0].cpu_outputs)
    proc_names = [pd.name for pd in app.fpga_processes()]
    daemonless = [pd.name for pd in app.fpga_processes() if not pd.daemon]

    def board_tick(ctx: _LaneCtx) -> bool:
        moved = False
        # CPU -> FPGA: one word per cycle across all feeder streams
        for k in range(len(fed_order)):
            name = fed_order[(ctx.feed_rr + k) % len(fed_order)]
            ch = ctx.channels[name]
            data = ctx.feeders[name]
            if data and ch.can_push():
                ch.push(data.pop(0))
                if not data:
                    ch.close()
                ctx.feed_rr = (ctx.feed_rr + k + 1) % len(fed_order)
                moved = True
                break
            if not data and not ch.closed:
                ch.close()
                moved = True
        # FPGA -> CPU: one word per cycle across all sink streams
        for k in range(len(sink_order)):
            name = sink_order[(ctx.sink_rr + k) % len(sink_order)]
            ch = ctx.channels[name]
            if ch.can_pop():
                word = ch.pop()
                _deliver(ctx, name, word)
                ctx.sink_rr = (ctx.sink_rr + k + 1) % len(sink_order)
                moved = True
                break
        return moved

    def _deliver(ctx: _LaneCtx, stream: str, word: int) -> None:
        result = ctx.result
        sd = app.streams[stream]
        if sd.role in ("assert_code", "assert_bitmask"):
            hits = image.decode_failure(stream, word)
            if hits and result.first_failure_cycle is None:
                result.first_failure_cycle = result.cycles
            for proc, site in hits:
                result.failures.append((proc, site))
                result.stderr.append(site.message())
                if not image.nabort:
                    result.aborted_by = site
                    ctx.halted = True
        else:
            ctx.cpu_outputs[stream].append(word)

    def finalize(ctx: _LaneCtx) -> None:
        ctx.alive = False
        result = ctx.result
        for name in sink_order:
            sd = app.streams[name]
            if sd.role is None:
                result.outputs[name] = ctx.cpu_outputs[name]
        for name, pe in ctx.execs.items():
            result.process_stats[name] = {
                "cycles": pe.cycles,
                "stalls": pe.stall_cycles,
                "iterations": pe.iterations_started,
                "stream_ops": pe.stream_ops,
                "quarantined": pe.quarantined,
                "backend": getattr(pe, "backend", "interp"),
            }
        result.fault_events = ctx.injector.event_log()
        ctx.injector.detach()

    statuses: dict[str, list] = {name: [None] * n for name in proc_names}
    active_flags = [False] * n

    for _cycle in range(cfg.max_cycles):
        live = [l for l in range(n) if ctxs[l].alive]
        if not live:
            break
        for l in live:
            ctx = ctxs[l]
            ctx.result.cycles += 1
            ctx.injector.tick()
            active = board_tick(ctx)
            for collector in ctx.collectors:
                if collector.tick():
                    active = True
            active_flags[l] = active
        # one lockstep advance per process: every live lane of the process
        # moves through the same generated SoA tick function
        for name in proc_names:
            groups[name].tick_lanes(live, statuses[name])
        for l in live:
            ctx = ctxs[l]
            result = ctx.result
            active = active_flags[l]
            st = statuses
            for name in proc_names:
                if st[name][l] == "active":
                    active = True
            for monitor in ctx.monitors:
                if monitor.tick(result.cycles):
                    active = True
                for region, elapsed in monitor.violations:
                    if result.first_failure_cycle is None:
                        result.first_failure_cycle = result.cycles
                    result.failures.append((region.process, region.site))
                    result.stderr.append(region.message(elapsed))
                    if not image.nabort:
                        result.aborted_by = region.site
                        ctx.halted = True
                monitor.violations.clear()
            if ctx.halted:
                result.reason = ABORTED
                finalize(ctx)
                continue
            blocking = [
                name for name in daemonless if not ctx.execs[name].done
            ]
            if not blocking:
                drained = (
                    all(not ctx.channels[s].can_pop() for s in sink_order)
                    and all(not ch.can_pop() for ch in ctx.taps.values())
                    and all(c.pending == 0 for c in ctx.collectors)
                    and not active
                )
                if drained:
                    result.completed = True
                    result.reason = COMPLETED
                    finalize(ctx)
                    continue
            verdict = ctx.wd.observe(active)
            if verdict is not None:
                if (cfg.quarantine and image.nabort
                        and ctx.quarantine_rounds
                        < cfg.max_quarantine_rounds):
                    victims = ctx.wd.victims(verdict)
                    if victims:
                        ctx.quarantine_rounds += 1
                        if result.watchdog is None:
                            result.watchdog = ctx.wd.report(verdict)
                        for name in victims:
                            ctx.execs[name].quarantine()
                            for sd in app.streams.values():
                                if (sd.source is not None
                                        and sd.source.process == name):
                                    ctx.channels[sd.name].close()
                        result.quarantined.extend(victims)
                        ctx.wd.reset_after_quarantine(victims)
                        continue
                result.reason = verdict
                result.traces = [pe.trace() for pe in ctx.execs.values()]
                result.watchdog = ctx.wd.report(verdict)
                finalize(ctx)

    for ctx in ctxs:
        if ctx.alive:
            ctx.result.reason = TIMEOUT
            ctx.result.traces = [pe.trace() for pe in ctx.execs.values()]
            ctx.result.watchdog = ctx.wd.report(TIMEOUT)
            finalize(ctx)

    return [ctx.result for ctx in ctxs]
