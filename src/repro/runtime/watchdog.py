"""Runtime watchdogs: termination classification, hang triage, quarantine.

The original hang detector was a single idle counter: if nothing in the
system moved for ``idle_limit`` cycles the run was declared ``hung``, and
``max_cycles`` exhaustion was folded into the same flag. That conflates
four different endings that the paper's Section 5.1 debugging methodology
— and any fault-injection campaign — needs to tell apart:

* ``deadlock``  — every component is stalled on a handshake (the classic
  blocked-channel cycle); detected by the idle counter.
* ``livelock``  — circuits are *active* but make no observable forward
  progress (no stream word moves anywhere): the paper's DES bug, where a
  process spins polling a flag that a mistranslated store never writes.
* ``timeout``   — the cycle budget ran out while words were still moving;
  the run was merely slower than budgeted, not provably stuck.
* ``completed`` / ``aborted`` — the normal and assertion-halt endings.

The watchdog also performs hang *triage* (per-process blocked-line traces
and starvation fractions) and, under ``NABORT``, graceful degradation: the
processes it identifies as stuck can be quarantined — retired, their
output streams closed — so the rest of the application drains to
completion and every in-flight assertion notification reaches the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.cyclemodel import ProcessTrace

#: termination reasons (HwResult.reason)
COMPLETED = "completed"
ABORTED = "aborted"
DEADLOCK = "deadlock"
LIVELOCK = "livelock"
TIMEOUT = "timeout"

#: the reasons the legacy ``hung`` flag collapses to
HANG_REASONS = (DEADLOCK, LIVELOCK, TIMEOUT)

#: every value HwResult.reason may take
TERMINATIONS = (COMPLETED, ABORTED, DEADLOCK, LIVELOCK, TIMEOUT)


@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning knobs for the runtime watchdog.

    ``livelock_window`` must exceed the longest legitimate stretch of
    stream-quiet computation (Triple-DES grinds ~30k cycles per block
    between handshakes, hence the generous default). ``quarantine``
    enables graceful degradation — it only acts when the image runs under
    ``NABORT``, since quarantining with abort-on-failure semantics would
    mask the abort.
    """

    max_cycles: int = 2_000_000
    idle_limit: int = 64
    livelock_window: int = 100_000
    quarantine: bool = False
    max_quarantine_rounds: int = 4


@dataclass
class WatchdogReport:
    """Triage output attached to a hardware-execution result."""

    reason: str
    fired_at_cycle: int
    traces: list[ProcessTrace] = field(default_factory=list)
    #: per-process fraction of its cycles spent stalled on handshakes
    starvation: dict[str, float] = field(default_factory=dict)
    #: cycles without any stream-word movement when the watchdog fired
    stagnant_cycles: int = 0
    quarantined: list[str] = field(default_factory=list)

    def render(self) -> list[str]:
        lines = [
            f"watchdog: {self.reason} at cycle {self.fired_at_cycle} "
            f"({self.stagnant_cycles} cycles without stream progress)"
        ]
        for name in sorted(self.starvation):
            lines.append(
                f"  starvation {name}: "
                f"{100.0 * self.starvation[name]:.1f}% of cycles stalled"
            )
        lines.extend(f"  trace: {t}" for t in self.traces)
        if self.quarantined:
            lines.append(f"  quarantined: {', '.join(self.quarantined)}")
        return lines


class Watchdog:
    """Observes one hardware execution and classifies how it ends.

    ``observe(active)`` is called once per clock with the cycle's global
    activity flag; it returns ``None`` while the run looks healthy, or a
    verdict (:data:`DEADLOCK` / :data:`LIVELOCK`) once the corresponding
    detector fires. Forward progress is measured as the total number of
    words moved through the application's stream channels (tap traffic is
    the assertion fabric's own concern and does not count).
    """

    def __init__(self, config: WatchdogConfig, app, execs: dict,
                 channels: dict):
        self.config = config
        self.app = app
        self.execs = execs
        self.channels = channels
        self.cycle = 0
        self.idle = 0
        self.stagnant = 0
        self._last_progress = -1
        self._window_ops: dict[str, int] = {}
        self.quarantined: list[str] = []

    def _progress(self) -> int:
        return sum(ch.pushes + ch.pops for ch in self.channels.values())

    def observe(self, active: bool) -> str | None:
        self.cycle += 1
        if active:
            self.idle = 0
        else:
            self.idle += 1
            if self.idle >= self.config.idle_limit:
                return DEADLOCK
        progress = self._progress()
        if progress != self._last_progress:
            self._last_progress = progress
            self.stagnant = 0
        else:
            if self.stagnant == 0:
                self._window_ops = {
                    name: (pe.stream_ops, pe.stall_cycles)
                    for name, pe in self.execs.items()
                }
            self.stagnant += 1
            if self.stagnant >= self.config.livelock_window:
                return LIVELOCK
        return None

    # ---- triage -----------------------------------------------------------

    def victims(self, verdict: str) -> list[str]:
        """The unfinished processes responsible for ``verdict``.

        Deadlock: every blocked non-daemon (nothing moves, so they are all
        part of the wait cycle). Livelock: the non-daemons that performed
        no stream handshake during the stagnant window *while actively
        executing* — the spinners — leaving blocked-but-innocent
        downstream consumers alone (they drain once the spinner's streams
        close).
        """
        out = []
        for pd in self.app.fpga_processes():
            if pd.daemon or self.execs[pd.name].done:
                continue
            if verdict == LIVELOCK:
                before = self._window_ops.get(pd.name)
                if before is not None:
                    ops0, stalls0 = before
                    pe = self.execs[pd.name]
                    if pe.stream_ops != ops0:
                        continue  # made progress: not a spinner
                    stalled = pe.stall_cycles - stalls0
                    if self.stagnant and stalled >= 0.9 * self.stagnant:
                        continue  # blocked, not spinning: innocent
            out.append(pd.name)
        return out

    def reset_after_quarantine(self, victims: list[str]) -> None:
        self.quarantined.extend(victims)
        self.idle = 0
        self.stagnant = 0
        self._last_progress = -1

    def report(self, reason: str) -> WatchdogReport:
        starvation = {
            name: pe.stall_cycles / pe.cycles
            for name, pe in self.execs.items()
            if pe.cycles
        }
        return WatchdogReport(
            reason=reason,
            fired_at_cycle=self.cycle,
            traces=[pe.trace() for pe in self.execs.values()],
            starvation=starvation,
            stagnant_cycles=self.stagnant,
            quarantined=list(self.quarantined),
        )
