"""Software simulation of an application (the Impulse-C CPU-side model).

Every FPGA process runs as an interpreter coroutine with *idealized*
semantics: unbounded channel buffering, no clock, round-robin cooperative
scheduling. This is deliberately the weaker verification tool the paper
criticizes — translation faults injected into the hardware path and
cycle-level interactions are invisible here, which is what makes the
in-circuit assertion flow worth building.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instr import AssertionSite
from repro.ir.interp import Interp
from repro.runtime.taskgraph import Application


@dataclass
class _Queue:
    values: list = field(default_factory=list)
    closed: bool = False


@dataclass
class SimResult:
    """Outcome of a software simulation run."""

    completed: bool
    aborted: bool
    outputs: dict[str, list[int]] = field(default_factory=dict)
    stderr: list[str] = field(default_factory=list)
    failures: list[tuple[str, AssertionSite]] = field(default_factory=list)
    aborted_by: AssertionSite | None = None
    deadlocked: list[str] = field(default_factory=list)

    @property
    def assertion_messages(self) -> list[str]:
        return list(self.stderr)


def software_sim(app: Application, max_steps: int = 10_000_000) -> SimResult:
    """Run ``app`` to completion under software-simulation semantics."""
    app.validate()
    result = SimResult(completed=False, aborted=False)

    queues: dict[str, _Queue] = {}
    for sd in app.streams.values():
        q = _Queue()
        if sd.cpu_fed:
            q.values = list(sd.feeder_data or [])
            q.closed = True
        queues[sd.name] = q
    tap_queues: dict[str, _Queue] = {name: _Queue() for name in app.taps}

    class _Proc:
        def __init__(self, pd):
            self.pd = pd
            self.binding = {
                param: sd.name for param, sd in app.stream_binding(pd.name).items()
            }
            self.gen = Interp(
                pd.func, ext_funcs=pd.ext_sw, max_steps=max_steps
            ).run()
            self.event = None
            self.started = False
            self.done = False

    procs = [_Proc(pd) for pd in app.fpga_processes()]

    def advance(proc: _Proc, reply) -> bool:
        """Send ``reply`` (or start); store next event; True when done."""
        try:
            if not proc.started:
                proc.started = True
                proc.event = next(proc.gen)
            else:
                proc.event = proc.gen.send(reply)
            return False
        except StopIteration:
            proc.done = True
            proc.event = None
            return True

    halted = False
    while not halted:
        progress = False
        for proc in procs:
            if proc.done:
                continue
            if not proc.started:
                if advance(proc, None):
                    progress = True
                    continue
                progress = True
            # drain as many events as possible for this process
            while proc.event is not None and not halted:
                kind = proc.event[0]
                if kind == "read":
                    q = queues[proc.binding[proc.event[1]]]
                    if q.values:
                        reply = (1, q.values.pop(0))
                    elif q.closed:
                        reply = (0, 0)
                    else:
                        break  # parked: wait for the producer
                elif kind == "write":
                    queues[proc.binding[proc.event[1]]].values.append(proc.event[2])
                    reply = None
                elif kind == "close":
                    queues[proc.binding[proc.event[1]]].closed = True
                    reply = None
                elif kind == "tap":
                    # latency-marker taps have no consumer in SW simulation
                    tap_queues.setdefault(proc.event[1], _Queue()).values.append(
                        proc.event[2]
                    )
                    reply = None
                elif kind == "tap_read":
                    q = tap_queues[proc.event[1]]
                    if q.values:
                        record = q.values.pop(0)
                        reply = (1, *record)
                    elif q.closed:
                        reply = (0,)
                    else:
                        break
                elif kind == "assert_fail":
                    site = proc.event[1]
                    result.failures.append((proc.pd.name, site))
                    result.stderr.append(site.message())
                    if app.nabort:
                        reply = "continue"
                    else:
                        reply = "abort"
                        result.aborted = True
                        result.aborted_by = site
                        halted = True
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event {proc.event!r}")
                progress = True
                if advance(proc, reply):
                    break

        if halted:
            break
        blocking = [p for p in procs if not p.done and not p.pd.daemon]
        if not blocking:
            result.completed = True
            break
        if not progress:
            # protocol deadlock even under idealized semantics
            result.deadlocked = [p.pd.name for p in procs if not p.done]
            break

    for sd in app.streams.values():
        if sd.cpu_bound:
            result.outputs[sd.name] = list(queues[sd.name].values)
    return result
