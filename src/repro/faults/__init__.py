"""Fault injection: compile-time defects, runtime upsets, and campaigns.

The paper's evaluation rests on two hand-written bugs (Section 5.1); this
package generalizes them into a pluggable engine:

* :mod:`repro.faults.ir` — translation faults applied to hardware-side IR
  (:class:`NarrowCompare`, :class:`ReadForWrite`), the paper's bug class.
* :mod:`repro.faults.runtime` — deterministic runtime faults (bit flips,
  stuck-at bits, dropped/duplicated words, back-pressure storms, register
  upsets) injected through hooks in the cycle model and the RTL simulator.
* :mod:`repro.faults.campaign` — seeded campaign sweeps that measure
  assertion/watchdog detection coverage across the paper's applications
  (imported lazily; heavy app dependencies).
"""

from __future__ import annotations

from repro.errors import CampaignError, FaultError
from repro.faults.ir import Fault, NarrowCompare, ReadForWrite, apply_faults
from repro.faults.runtime import (
    ChannelBitFlip,
    DropWord,
    DuplicateWord,
    RegisterUpset,
    RuntimeFault,
    RuntimeFaultInjector,
    StreamStall,
    StuckAtBit,
)

__all__ = [
    "CampaignError",
    "Fault",
    "FaultError",
    "NarrowCompare",
    "ReadForWrite",
    "apply_faults",
    "RuntimeFault",
    "RuntimeFaultInjector",
    "ChannelBitFlip",
    "StuckAtBit",
    "DropWord",
    "DuplicateWord",
    "StreamStall",
    "RegisterUpset",
    # lazy (repro.faults.campaign)
    "CampaignResult",
    "CampaignTarget",
    "RunOutcome",
    "Scenario",
    "builtin_targets",
    "generate_scenarios",
    "run_campaign",
]

_CAMPAIGN_NAMES = {
    "CampaignResult",
    "CampaignTarget",
    "RunOutcome",
    "Scenario",
    "builtin_targets",
    "generate_scenarios",
    "run_campaign",
}


def __getattr__(name: str):
    if name in _CAMPAIGN_NAMES:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
