"""Seeded fault-injection campaigns with assertion-coverage reporting.

A campaign turns the paper's two bug anecdotes into a measured robustness
evaluation: it sweeps a deterministic, seeded space of fault scenarios
(translation faults plus runtime upsets) across an application at several
assertion levels, executes each combination under the runtime watchdog,
and reports a detection-coverage matrix. Every run is classified as

* ``assertion-detected``  — a synthesized in-circuit assertion reported
  the fault (the paper's mechanism); latency is the cycle at which the
  first failure word reached the CPU notifier;
* ``watchdog-detected``   — the run hung (deadlock/livelock/timeout) or a
  process had to be quarantined: the fault was caught, but only by the
  runtime safety net, not by an assertion;
* ``silent-corruption``   — the run completed with outputs diverging from
  the software-simulation golden reference and nobody noticed — the
  coverage gap assertions are supposed to close;
* ``benign``              — completed with correct outputs (e.g. a
  back-pressure storm the schedule absorbed, or a fault whose selector
  found nothing to break at this optimization level).

Determinism: scenario generation uses only ``random.Random(seed)`` over
sorted structures, and the simulators are seedless, so the same seed
always reproduces the same matrix bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.synth import SynthesisOptions
from repro.errors import CampaignError, FaultError
from repro.faults.ir import NarrowCompare, ReadForWrite
from repro.faults.runtime import (
    ChannelBitFlip,
    DropWord,
    DuplicateWord,
    RegisterUpset,
    StreamStall,
    StuckAtBit,
)
from repro.ir.ops import COMPARISONS, OpKind
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application
from repro.runtime.watchdog import HANG_REASONS, WatchdogConfig
from repro.utils.tables import render_table

__all__ = [
    "ASSERTION_DETECTED",
    "WATCHDOG_DETECTED",
    "SILENT_CORRUPTION",
    "BENIGN",
    "HARNESS_ERROR",
    "CLASSIFICATIONS",
    "Scenario",
    "RunOutcome",
    "CampaignResult",
    "CampaignTarget",
    "builtin_targets",
    "generate_scenarios",
    "matrix_from_records",
    "outcome_from_record",
    "record_from_outcome",
    "run_campaign",
]

ASSERTION_DETECTED = "assertion-detected"
WATCHDOG_DETECTED = "watchdog-detected"
SILENT_CORRUPTION = "silent-corruption"
BENIGN = "benign"
CLASSIFICATIONS = (
    ASSERTION_DETECTED,
    WATCHDOG_DETECTED,
    SILENT_CORRUPTION,
    BENIGN,
)
#: the harness itself failed on this cell (worker crash, synthesis bug);
#: deliberately NOT in CLASSIFICATIONS — it says nothing about fault
#: coverage, so it is excluded from detection rates, but the campaign
#: keeps going and the matrix shows the hole instead of aborting
HARNESS_ERROR = "harness-error"


@dataclass
class Scenario:
    """One injected-fault configuration, reusable across assertion levels.

    ``ir_faults`` maps process names to translation-fault tuples (passed
    to :func:`repro.core.synth.synthesize`); ``runtime_faults`` are
    :mod:`repro.faults.runtime` objects (passed to
    :func:`repro.runtime.hwexec.execute`, which rearms them per run).
    """

    name: str
    description: str
    ir_faults: dict[str, tuple] = field(default_factory=dict)
    runtime_faults: tuple = ()


@dataclass(frozen=True)
class RunOutcome:
    """One (scenario, assertion level) execution, classified."""

    scenario: str
    level: str
    classification: str
    reason: str
    cycles: int
    detection_latency: int | None = None
    failures: int = 0
    quarantined: tuple[str, ...] = ()
    events: tuple[str, ...] = ()
    #: structured diagnostic dicts, populated for harness-error cells
    diagnostics: tuple = ()

    @property
    def cell(self) -> str:
        """Compact matrix-cell rendering."""
        if self.classification == ASSERTION_DETECTED:
            return f"assert@{self.detection_latency}"
        if self.classification == WATCHDOG_DETECTED:
            return f"watchdog@{self.detection_latency}"
        if self.classification == SILENT_CORRUPTION:
            return "SILENT"
        if self.classification == HARNESS_ERROR:
            return "ERROR"
        return "benign"


@dataclass
class CampaignResult:
    """Everything a campaign measured, plus table renderers."""

    app: str
    seed: int
    levels: tuple[str, ...]
    scenarios: list[Scenario]
    outcomes: list[RunOutcome]
    #: the journaled store run this campaign wrote (None when it ran
    #: without a ``store_root``); shard-suffixed for ``--shard`` slices
    run_id: str | None = None

    def outcome(self, scenario: str, level: str) -> RunOutcome:
        oc = self.find(scenario, level)
        if oc is None:
            raise CampaignError(f"no outcome for {scenario!r} at {level!r}", code="RPR-G001")
        return oc

    def find(self, scenario: str, level: str) -> RunOutcome | None:
        """Like :meth:`outcome` but None for cells this run did not
        execute (a ``--shard K/N`` slice holds only its own cells)."""
        for oc in self.outcomes:
            if oc.scenario == scenario and oc.level == level:
                return oc
        return None

    def summary(self, level: str | None = None) -> dict[str, int]:
        counts = {c: 0 for c in CLASSIFICATIONS}
        for oc in self.outcomes:
            if level is None or oc.level == level:
                # tolerant of classifications outside the coverage matrix
                # (harness-error cells, future taxonomy growth)
                counts[oc.classification] = \
                    counts.get(oc.classification, 0) + 1
        return counts

    @property
    def harness_errors(self) -> list[RunOutcome]:
        return [oc for oc in self.outcomes
                if oc.classification == HARNESS_ERROR]

    def detection_rate(self, level: str) -> float:
        """Fraction of non-benign scenarios detected (assertion or watchdog).

        Harness-error cells measure nothing about fault coverage and are
        excluded from both numerator and denominator.
        """
        harmful = detected = 0
        for oc in self.outcomes:
            if oc.level != level or \
                    oc.classification in (BENIGN, HARNESS_ERROR):
                continue
            harmful += 1
            if oc.classification in (ASSERTION_DETECTED, WATCHDOG_DETECTED):
                detected += 1
        return detected / harmful if harmful else 1.0

    def matrix(self) -> str:
        headers = ["scenario"] + [f"level={lv}" for lv in self.levels]
        rows = []
        for sc in self.scenarios:
            cells = []
            for lv in self.levels:
                oc = self.find(sc.name, lv)
                # cells outside this shard's slice render as a hole
                cells.append(oc.cell if oc is not None else "-")
            rows.append([sc.name] + cells)
        return render_table(
            headers, rows,
            title=f"FAULT CAMPAIGN {self.app} (seed={self.seed}, "
                  f"{len(self.scenarios)} scenarios)",
        )

    def render(self) -> str:
        lines = [self.matrix(), ""]
        for lv in self.levels:
            counts = self.summary(lv)
            shown = list(CLASSIFICATIONS) + sorted(
                c for c in counts if c not in CLASSIFICATIONS)
            parts = ", ".join(f"{c}={counts[c]}" for c in shown)
            lines.append(
                f"level={lv}: {parts}; "
                f"detection rate {100.0 * self.detection_rate(lv):.0f}%"
            )
        lines.append("")
        for sc in self.scenarios:
            lines.append(f"{sc.name}: {sc.description}")
        return "\n".join(lines)


# ---- journal records --------------------------------------------------------


def record_from_outcome(oc: RunOutcome) -> dict:
    """One JSON-able journal record for a (scenario, level) cell.

    Harness-error cells get ``status="failed"`` so a resumed run retries
    them; every real classification (even silent corruption) is a
    successfully *measured* cell and counts as done.
    """
    return {
        "point_id": f"{oc.scenario}@{oc.level}",
        "status": "failed" if oc.classification == HARNESS_ERROR else "ok",
        "scenario": oc.scenario,
        "level": oc.level,
        "classification": oc.classification,
        "reason": oc.reason,
        "cycles": oc.cycles,
        "detection_latency": oc.detection_latency,
        "failures": oc.failures,
        "quarantined": list(oc.quarantined),
        "events": list(oc.events),
        "diagnostics": list(oc.diagnostics),
    }


def outcome_from_record(rec: dict) -> RunOutcome:
    """Inverse of :func:`record_from_outcome` (JSON lists -> tuples)."""
    return RunOutcome(
        scenario=rec["scenario"],
        level=rec["level"],
        classification=rec.get("classification", HARNESS_ERROR),
        reason=rec.get("reason", ""),
        cycles=int(rec.get("cycles", 0)),
        detection_latency=rec.get("detection_latency"),
        failures=int(rec.get("failures", 0)),
        quarantined=tuple(rec.get("quarantined") or ()),
        events=tuple(rec.get("events") or ()),
        diagnostics=tuple(rec.get("diagnostics") or ()),
    )


def matrix_from_records(records: list[dict], context: dict) -> str:
    """Render the coverage matrix + per-level summaries from journal
    records alone — what ``repro merge`` writes as ``matrix.txt``.

    Pure function of (records, manifest context), so merging the shards
    of a K/N split and merging the unsharded run emit byte-identical
    matrices. Cells absent from ``records`` render as holes.
    """
    cells: dict[tuple[str, str], RunOutcome] = {}
    for rec in records:
        if "scenario" not in rec or "level" not in rec:
            continue
        oc = outcome_from_record(rec)
        cells[(oc.scenario, oc.level)] = oc
    names = list(context.get("scenarios") or [])
    levels = list(context.get("levels") or [])
    if not names:
        names = sorted({s for s, _ in cells})
    if not levels:
        levels = sorted({lv for _, lv in cells})
    result = CampaignResult(
        app=context.get("target", "?"),
        seed=context.get("seed", 0),
        levels=tuple(levels),
        scenarios=[Scenario(name, "") for name in names],
        outcomes=list(cells.values()),
    )
    lines = [result.matrix(), ""]
    for lv in levels:
        counts = result.summary(lv)
        shown = list(CLASSIFICATIONS) + sorted(
            c for c in counts if c not in CLASSIFICATIONS)
        parts = ", ".join(f"{c}={counts[c]}" for c in shown)
        lines.append(
            f"level={lv}: {parts}; "
            f"detection rate {100.0 * result.detection_rate(lv):.0f}%"
        )
    return "\n".join(lines)


@dataclass
class CampaignTarget:
    """An application under campaign, with execution budgets tuned to it."""

    name: str
    build: Callable[[], Application]
    watchdog: WatchdogConfig


def builtin_targets() -> dict[str, CampaignTarget]:
    """The paper's applications, sized for quick sweeps.

    ``livelock_window`` is tuned per app: Triple-DES legitimately computes
    ~30k stream-quiet cycles per block, the loopback is stream-chatty.
    """
    from repro.apps.edge_detect import build_edge_app
    from repro.apps.loopback import build_loopback
    from repro.apps.tripledes import build_tdes_app

    return {
        "loopback": CampaignTarget(
            "loopback",
            lambda: build_loopback(3, data=list(range(1, 17))),
            WatchdogConfig(max_cycles=60_000, idle_limit=64,
                           livelock_window=4_000, quarantine=True),
        ),
        "edge": CampaignTarget(
            "edge",
            lambda: build_edge_app(width=16, height=8),
            WatchdogConfig(max_cycles=120_000, idle_limit=64,
                           livelock_window=8_000, quarantine=True),
        ),
        "tripledes": CampaignTarget(
            "tripledes",
            lambda: build_tdes_app(text=b"In-circuit!"),
            WatchdogConfig(max_cycles=400_000, idle_limit=64,
                           livelock_window=60_000, quarantine=True),
        ),
    }


# ---- scenario generation ---------------------------------------------------


def _ir_candidates(app: Application):
    """(process, width) narrow-compare and (process, array) store targets."""
    compares: list[tuple[str, int]] = []
    stores: list[tuple[str, str]] = []
    for pd in sorted(app.fpga_processes(), key=lambda p: p.name):
        widths = {
            max(a.ty.width for a in instr.args)
            for instr in pd.func.instructions()
            if instr.op in COMPARISONS
        }
        for w in (4, 5, 8):
            if any(mw > w for mw in widths):
                compares.append((pd.name, w))
        stored = {
            instr.attrs.get("array")
            for instr in pd.func.instructions()
            if instr.op == OpKind.STORE
        }
        for arr in sorted(a for a in stored if a):
            stores.append((pd.name, arr))
    return compares, stores


def generate_scenarios(
    app: Application,
    seed: int = 0,
    count: int = 8,
    include_ir: bool = True,
) -> list[Scenario]:
    """Deterministically derive ``count`` fault scenarios for ``app``.

    Only the seed and the (sorted) application structure feed the RNG, so
    the same ``(app, seed, count)`` always yields the same scenarios.
    """
    rng = random.Random(seed)
    streams = sorted(
        sd.name for sd in app.streams.values() if sd.role is None
    )
    if not streams:
        raise CampaignError(f"{app.name}: no data streams to inject into", code="RPR-G002")
    procs = sorted(pd.name for pd in app.fpga_processes())
    widths = {sd.name: sd.width for sd in app.streams.values()}
    fed_lengths = [
        len(sd.feeder_data or ()) for sd in app.streams.values() if sd.cpu_fed
    ]
    words_hint = max(1, min(fed_lengths or [8]))

    compares, stores = _ir_candidates(app) if include_ir else ([], [])
    kinds = ["bitflip", "stuckat", "drop", "duplicate", "stall", "upset"]
    if compares:
        kinds.append("narrow_compare")
    if stores:
        kinds.append("read_for_write")

    scenarios: list[Scenario] = []
    for i in range(count):
        kind = kinds[i % len(kinds)]
        stream = rng.choice(streams)
        word = rng.randrange(words_hint)
        bit = rng.randrange(widths.get(stream, 32))
        if kind == "bitflip":
            sc = Scenario(
                f"s{i:02d}-bitflip",
                f"flip bit {bit} of word {word} on stream {stream!r}",
                runtime_faults=(
                    ChannelBitFlip(target=stream, word_index=word, bit=bit),
                ),
            )
        elif kind == "stuckat":
            stuck = rng.randrange(2)
            sc = Scenario(
                f"s{i:02d}-stuckat",
                f"bit {bit} of stream {stream!r} stuck at {stuck}",
                runtime_faults=(
                    StuckAtBit(target=stream, bit=bit, stuck_value=stuck),
                ),
            )
        elif kind == "drop":
            sc = Scenario(
                f"s{i:02d}-drop",
                f"drop word {word} of stream {stream!r}",
                runtime_faults=(DropWord(target=stream, word_index=word),),
            )
        elif kind == "duplicate":
            sc = Scenario(
                f"s{i:02d}-duplicate",
                f"duplicate word {word} of stream {stream!r}",
                runtime_faults=(DuplicateWord(target=stream, word_index=word),),
            )
        elif kind == "stall":
            start = rng.randrange(16, 400)
            duration = rng.randrange(8, 128)
            sc = Scenario(
                f"s{i:02d}-stall",
                f"back-pressure storm on {stream!r}: cycles "
                f"{start}..{start + duration}",
                runtime_faults=(
                    StreamStall(target=stream, start_cycle=start,
                                duration=duration),
                ),
            )
        elif kind == "upset":
            proc = rng.choice(procs)
            cycle = rng.randrange(32, 2_000)
            reg_index = rng.randrange(16)
            sc = Scenario(
                f"s{i:02d}-upset",
                f"register upset in {proc!r} at cycle {cycle} "
                f"(reg index {reg_index}, bit {bit % 32})",
                runtime_faults=(
                    RegisterUpset(target=proc, cycle=cycle,
                                  reg_index=reg_index, bit=bit % 32),
                ),
            )
        elif kind == "narrow_compare":
            proc, width = rng.choice(compares)
            sc = Scenario(
                f"s{i:02d}-narrowcmp",
                f"comparisons in {proc!r} mistranslated to {width} bits",
                ir_faults={proc: (NarrowCompare(width=width),)},
            )
        else:  # read_for_write
            proc, arr = rng.choice(stores)
            sc = Scenario(
                f"s{i:02d}-readforwrite",
                f"stores to {proc!r}.{arr} emitted as reads",
                ir_faults={proc: (ReadForWrite(array=arr),)},
            )
        scenarios.append(sc)
    return scenarios


# ---- execution -------------------------------------------------------------


def classify_outcome(result, golden: dict) -> tuple[str, int | None]:
    """Map one HwResult onto the coverage taxonomy (with latency)."""
    if result.failures:
        return ASSERTION_DETECTED, result.first_failure_cycle
    if result.reason in HANG_REASONS or result.quarantined:
        latency = (
            result.watchdog.fired_at_cycle
            if result.watchdog is not None else result.cycles
        )
        return WATCHDOG_DETECTED, latency
    if any(result.outputs.get(name) != words for name, words in golden.items()):
        return SILENT_CORRUPTION, None
    return BENIGN, None


def _synthesize_cached(
    app: Application,
    level: str,
    scenario: Scenario,
    nabort: bool,
    options: SynthesisOptions | None,
    cache_root: str | None,
):
    """Synthesize one campaign configuration through the lab cache.

    Scenarios without translation faults share one image per level, so a
    multi-scenario campaign synthesizes each level once and every other
    scenario at that level is a cache hit (runtime faults are injected at
    execute time and do not key the image).

    Misses fill under the cache's lease (one fill per key across all
    concurrent workers *and* nodes sharing the cache directory) and
    reuse per-process artifacts incrementally, so N campaign shards
    cold-starting the same levels no longer synthesize them N times.
    """
    from repro.lab.cache import SynthesisCache, cache_key
    from repro.lab.incremental import synthesize_incremental

    cache = SynthesisCache(cache_root)
    key = cache_key(
        app, level, options,
        extra=("campaign", nabort,
               tuple(sorted(scenario.ir_faults.items()))),
    )

    def produce():
        image, _info = synthesize_incremental(
            app,
            level,
            options=options,
            cache=cache,
            faults=scenario.ir_faults or None,
            nabort=True if nabort else None,
        )
        return image

    image, _filled = cache.get_or_fill(key, produce)
    return image


def _run_one(args: tuple) -> RunOutcome:
    """One (scenario, level) execution — module-level and tuple-packed so
    it fans out through :class:`repro.lab.executor.LabExecutor` workers."""
    (watchdog, app, scenario, level, golden, nabort, options,
     cache_root) = args
    try:
        image = _synthesize_cached(app, level, scenario, nabort, options,
                                   cache_root)
    except FaultError:
        # the fault's selector found nothing at this level (e.g. the
        # targeted comparison was optimized away): nothing was injected
        return RunOutcome(
            scenario=scenario.name, level=level, classification=BENIGN,
            reason="not-injected", cycles=0,
        )
    result = execute(
        image, watchdog=watchdog, faults=scenario.runtime_faults
    )
    classification, latency = classify_outcome(result, golden)
    return RunOutcome(
        scenario=scenario.name,
        level=level,
        classification=classification,
        reason=result.reason,
        cycles=result.cycles,
        detection_latency=latency,
        failures=len(result.failures),
        quarantined=tuple(result.quarantined),
        events=tuple(result.fault_events),
    )


def _batched_outcomes(
    target: CampaignTarget,
    app: Application,
    pending: list[tuple[Scenario, str]],
    golden: dict,
    nabort: bool,
    options: SynthesisOptions | None,
    cache_root: str | None,
    batch_lanes: int,
    sim_backend: str | None = None,
) -> list[RunOutcome]:
    """Execute pending (scenario, level) cells lane-parallel.

    Cells are grouped by (level, translation faults) — every group shares
    one synthesized image, and the group's scenarios become lanes of one
    :func:`repro.runtime.hwexec.execute_batch` call (chunked to
    ``batch_lanes``). Per-lane fault injection, watchdog classification
    and quarantine are bit-identical to the scalar path, so the returned
    outcomes (aligned with ``pending``) match a ``jobs=1`` scalar run.
    """
    from repro.runtime.hwexec import LaneSpec, execute_batch

    outcomes: dict[int, RunOutcome] = {}
    groups: dict[tuple[str, str], list[int]] = {}
    for idx, (sc, lv) in enumerate(pending):
        key = (lv, repr(sorted(sc.ir_faults.items())))
        groups.setdefault(key, []).append(idx)

    def harness_error(idx: int, exc: Exception) -> RunOutcome:
        from repro.diagnostics.core import Diagnostic

        sc, lv = pending[idx]
        diag = Diagnostic(
            code="RPR-G010",
            severity="error",
            message=f"batched campaign cell failed: "
                    f"{type(exc).__name__}: {exc}",
        ).to_dict()
        return RunOutcome(
            scenario=sc.name, level=lv, classification=HARNESS_ERROR,
            reason=f"{type(exc).__name__}: {exc}", cycles=0,
            diagnostics=(diag,),
        )

    for idxs in groups.values():
        first_sc, level = pending[idxs[0]]
        try:
            image = _synthesize_cached(app, level, first_sc, nabort,
                                       options, cache_root)
        except FaultError:
            for idx in idxs:
                sc, lv = pending[idx]
                outcomes[idx] = RunOutcome(
                    scenario=sc.name, level=lv, classification=BENIGN,
                    reason="not-injected", cycles=0,
                )
            continue
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            for idx in idxs:
                outcomes[idx] = harness_error(idx, exc)
            continue
        for start in range(0, len(idxs), batch_lanes):
            chunk = idxs[start:start + batch_lanes]
            specs = [LaneSpec(faults=pending[i][0].runtime_faults)
                     for i in chunk]
            try:
                results = execute_batch(
                    image, specs, watchdog=target.watchdog,
                    sim_backend=sim_backend,
                )
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                for i in chunk:
                    outcomes[i] = harness_error(i, exc)
                continue
            for i, result in zip(chunk, results):
                sc, lv = pending[i]
                classification, latency = classify_outcome(result, golden)
                outcomes[i] = RunOutcome(
                    scenario=sc.name,
                    level=lv,
                    classification=classification,
                    reason=result.reason,
                    cycles=result.cycles,
                    detection_latency=latency,
                    failures=len(result.failures),
                    quarantined=tuple(result.quarantined),
                    events=tuple(result.fault_events),
                )
    return [outcomes[i] for i in range(len(pending))]


def run_campaign(
    target: str | CampaignTarget = "loopback",
    levels: tuple[str, ...] = ("none", "optimized"),
    seed: int = 0,
    count: int = 8,
    nabort: bool = False,
    scenarios: list[Scenario] | None = None,
    options: SynthesisOptions | None = None,
    jobs: int = 1,
    cache_root: str | None = None,
    bundle_dir: str | None = None,
    store_root: str | None = None,
    shard=None,
    resume: bool = True,
    retry=None,
    timeout: float | None = None,
    hedge: bool = False,
    batch_lanes: int = 1,
) -> CampaignResult:
    """Sweep ``count`` seeded scenarios across assertion ``levels``.

    ``target`` is a :func:`builtin_targets` key or a custom
    :class:`CampaignTarget`. ``nabort`` runs the whole campaign in
    report-don't-halt mode, enabling watchdog quarantine (graceful
    degradation) for hanging scenarios. ``jobs`` fans the (scenario,
    level) grid out across worker processes through the lab executor;
    outcomes are collected in submission order, so the detection matrix
    for a given seed is identical at any job count. ``cache_root`` points
    at a :mod:`repro.lab.cache` directory so repeated levels synthesize
    once.

    A cell whose *worker* fails (as opposed to a fault being injected) is
    recorded as a ``harness-error`` outcome with structured diagnostics
    instead of aborting the whole campaign; with ``bundle_dir`` set, each
    such cell also writes a replayable failure bundle there.

    With ``store_root`` the campaign journals every cell into a
    :class:`repro.lab.store.ResultStore` run (content-addressed by the
    campaign configuration), so an interrupted campaign resumes by
    re-running only missing and harness-error cells. ``shard``
    (:class:`repro.lab.shard.ShardSpec`) restricts this invocation to one
    deterministic K/N slice of the grid, journaled to its own run
    directory; ``repro merge`` folds the slices back together.
    ``retry``/``timeout``/``hedge`` configure executor fault tolerance.

    ``batch_lanes > 1`` switches execution to the in-process batched
    simulator: cells sharing an image (same level and translation faults)
    run as lanes of one :func:`repro.runtime.hwexec.execute_batch` call —
    one structure-of-arrays tick function advances every scenario of a
    level in lockstep — instead of fanning out across ``jobs`` workers
    (``jobs``/``retry``/``timeout``/``hedge`` are ignored in this mode).
    Classification, journaling and resume semantics are unchanged and the
    matrix is bit-identical to a scalar run of the same seed.
    """
    import dataclasses as _dc
    import sys
    from pathlib import Path

    from repro.diagnostics.bundle import bundle_name, write_bundle
    from repro.lab.executor import LabExecutor
    from repro.lab.store import ResultStore
    from repro.utils.idgen import stable_fingerprint

    requested = target if isinstance(target, str) else None
    if isinstance(target, str):
        try:
            target = builtin_targets()[target]
        except KeyError:
            raise CampaignError(
                f"unknown campaign target {target!r}; "
                f"have {sorted(builtin_targets())}", code="RPR-G003") from None
    app = target.build()
    sim = software_sim(app)
    if not sim.completed:
        raise CampaignError(
            f"{target.name}: golden software simulation did not complete", code="RPR-G004")
    golden = {name: list(words) for name, words in sim.outputs.items()}
    generated = scenarios is None
    scenarios = (
        list(scenarios) if scenarios is not None
        else generate_scenarios(app, seed=seed, count=count)
    )

    cells = [(scenario, level)
             for scenario in scenarios for level in levels]
    if shard is not None:
        cells = [(sc, lv) for sc, lv in cells
                 if shard.contains(f"{sc.name}@{lv}")]

    context = {
        "target": target.name,
        "seed": seed,
        "count": count,
        "levels": list(levels),
        "nabort": nabort,
        "options": _dc.asdict(options) if options is not None else None,
        "scenarios": [sc.name for sc in scenarios],
        "batch_lanes": batch_lanes,
    }
    run = None
    resumed: dict[str, RunOutcome] = {}
    counters = {"total": len(cells), "skipped_resume": 0, "done": 0,
                "failed": 0, "journal_corrupt": 0}
    if store_root is not None:
        fp = stable_fingerprint(
            "campaign", target.name, seed, count, tuple(levels), nabort,
            options.key_parts() if options is not None else None,
            tuple((sc.name, sc.description) for sc in scenarios),
        )
        base_id = f"campaign-{target.name}-{fp:012x}"
        run_id = shard.run_id(base_id) if shard is not None else base_id
        run = ResultStore(store_root).open_run(run_id)
        if not resume and run.results_path.exists():
            run.results_path.unlink()
        if resume:
            wanted = {f"{sc.name}@{lv}" for sc, lv in cells}
            for rec in run.records():
                pid = rec.get("point_id")
                if pid in wanted and rec.get("status") == "ok":
                    resumed[pid] = outcome_from_record(rec)
        counters["journal_corrupt"] = run.stats.corrupt
        if run.stats.corrupt:
            print(f"campaign {target.name}: WARNING: skipped "
                  f"{run.stats.corrupt} torn/corrupt journal line(s) in "
                  f"{run.results_path}; affected cells re-run",
                  file=sys.stderr)
        counters["skipped_resume"] = len(resumed)

    pending = [(sc, lv) for sc, lv in cells
               if f"{sc.name}@{lv}" not in resumed]
    grid = [
        (target.watchdog, app, scenario, level, golden, nabort, options,
         cache_root)
        for scenario, level in pending
    ]
    executor = LabExecutor(jobs=jobs, timeout=timeout, retry=retry,
                           hedge=hedge)

    def manifest(status: str) -> dict:
        return {
            "kind": "campaign",
            "run_id": run.run_id,
            "name": target.name,
            "fingerprint": f"{fp:012x}",
            "status": status,
            "jobs": jobs,
            "shard": shard.as_dict() if shard is not None else None,
            "context": context,
            "counters": dict(counters),
            "executor": executor.stats.as_dict(),
            "retry": retry.as_dict() if retry is not None else None,
            "points": sorted(f"{sc.name}@{lv}" for sc, lv in cells),
        }

    if run is not None:
        run.write_manifest(manifest("running"))

    by_id: dict[str, RunOutcome] = dict(resumed)

    def settle(scenario: Scenario, level: str, outcome: RunOutcome,
               attempts: int) -> None:
        if outcome.classification == HARNESS_ERROR:
            counters["failed"] += 1
            # the cell is replayable only when its scenario can be
            # regenerated from (target name, seed); custom targets and
            # explicit scenario lists still get the outcome, just no bundle
            if bundle_dir is not None and generated and requested is not None:
                write_bundle(
                    Path(bundle_dir)
                    / bundle_name(f"{scenario.name}@{level}"),
                    "campaign", list(outcome.diagnostics),
                    context={
                        "target": requested,
                        "seed": seed,
                        "count": count,
                        "scenario": scenario.name,
                        "level": level,
                        "nabort": nabort,
                        "options": (_dc.asdict(options)
                                    if options is not None else None),
                    },
                )
        else:
            counters["done"] += 1
        by_id[f"{scenario.name}@{level}"] = outcome
        if run is not None:
            record = record_from_outcome(outcome)
            record["attempts"] = attempts
            run.append(record)

    if batch_lanes > 1:
        batched = _batched_outcomes(target, app, pending, golden, nabort,
                                    options, cache_root, batch_lanes)
        for (scenario, level), outcome in zip(pending, batched):
            settle(scenario, level, outcome, 1)
    else:
        for oc in executor.map(_run_one, grid):
            scenario, level = pending[oc.index]
            if not oc.ok:
                outcome = RunOutcome(
                    scenario=scenario.name, level=level,
                    classification=HARNESS_ERROR, reason=oc.error, cycles=0,
                    diagnostics=tuple(oc.diagnostics),
                )
            else:
                outcome = oc.value
            settle(scenario, level, outcome, oc.attempts)

    if run is not None:
        counters["retried"] = executor.stats.retries
        run.write_manifest(manifest(
            "completed" if counters["failed"] == 0
            else "completed-with-failures"))
    outcomes = [by_id[f"{sc.name}@{lv}"] for sc, lv in cells]
    return CampaignResult(
        app=target.name,
        seed=seed,
        levels=tuple(levels),
        scenarios=scenarios,
        outcomes=outcomes,
        run_id=run.run_id if run is not None else None,
    )
