"""Compile-time (translation) faults: defects injected into hardware IR.

These reproduce the paper's Section 5.1 bug class — behaviour that differs
between software simulation and the synthesized circuit because the HLS
tool mistranslated the source. Since our HLS flow is (intentionally)
correct, the defects are *injected* into the hardware-side IR only;
software simulation still executes the clean source semantics, so an
assertion passes in simulation and fails in circuit — exactly the scenario
of the paper's Figure 3.

* :class:`NarrowCompare` — "Impulse-C performs an erroneous 5-bit
  comparison of c2 and c1 … The 64-bit comparison of 4294967286 >
  4294967296 (which evaluates to false) becomes a 5-bit comparison of
  22 > 0 (which evaluates to true)". We tag matching comparison
  instructions with ``force_compare_width``; the cycle model and the
  emitted Verilog then compare only the low bits.

* :class:`ReadForWrite` — the DES hang: "the memory read should have been
  a memory write". A selected store is turned into a read, so the flag the
  loop polls is never written and the process hangs in hardware while
  completing in software simulation.

Every IR fault implements the :class:`Fault` protocol: ``apply(func)``
mutates a hardware-side clone and returns the number of sites hit.
:func:`apply_faults` enforces that each fault matched at least once, so a
stale selector (renamed array, moved source line) fails loudly instead of
silently injecting nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import FaultError
from repro.ir.function import IRFunction
from repro.ir.instr import Instr
from repro.ir.ops import COMPARISONS, OpKind

__all__ = [
    "Fault",
    "FaultError",
    "NarrowCompare",
    "ReadForWrite",
    "apply_faults",
]


@runtime_checkable
class Fault(Protocol):
    """Common protocol of compile-time faults.

    ``apply`` mutates the (already cloned) hardware IR and returns how many
    sites it changed; zero is treated as a misconfiguration by
    :func:`apply_faults`.
    """

    def apply(self, func: IRFunction) -> int: ...


def _coord_line(instr: Instr) -> int | None:
    coord = instr.attrs.get("coord")
    return coord[1] if coord else None


@dataclass(frozen=True)
class NarrowCompare:
    """Truncate matching comparisons to ``width`` bits in hardware.

    ``line`` restricts the fault to comparisons lowered from that source
    line; ``None`` hits every comparison whose operands are wider than
    ``width`` (rarely what an experiment wants, but useful for chaos
    testing).
    """

    width: int = 5
    line: int | None = None

    def apply(self, func: IRFunction) -> int:
        hits = 0
        for block in func.blocks.values():
            for instr in block.instrs:
                if instr.op not in COMPARISONS:
                    continue
                if self.line is not None and _coord_line(instr) != self.line:
                    continue
                if max(a.ty.width for a in instr.args) <= self.width:
                    continue
                instr.attrs["force_compare_width"] = self.width
                hits += 1
        return hits


@dataclass(frozen=True)
class ReadForWrite:
    """Replace a store to ``array`` with a read (write is lost) in hardware."""

    array: str
    line: int | None = None

    def apply(self, func: IRFunction) -> int:
        hits = 0
        for block in func.blocks.values():
            for idx, instr in enumerate(block.instrs):
                if instr.op != OpKind.STORE or instr.attrs.get("array") != self.array:
                    continue
                if self.line is not None and _coord_line(instr) != self.line:
                    continue
                dummy = func.new_temp(func.arrays[self.array].elem, "fault")
                replacement = Instr(
                    OpKind.LOAD,
                    [dummy],
                    [instr.args[0]],
                    {"array": self.array, "coord": instr.attrs.get("coord")},
                )
                block.instrs[idx] = replacement
                hits += 1
        return hits


def apply_faults(func: IRFunction, faults) -> IRFunction:
    """Clone ``func`` and apply each fault; raises if a fault matched nothing."""
    hw = func.clone()
    for fault in faults:
        hits = fault.apply(hw)
        if hits == 0:
            raise FaultError(f"{fault!r} matched nothing in {func.name!r}", code="RPR-F001")
    return hw
