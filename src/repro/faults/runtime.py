"""Runtime faults: hardware upsets injected during cycle-accurate execution.

Where :mod:`repro.faults.ir` models *translation* defects (the tool emitted
the wrong circuit), this module models *physical and interface* defects in
an otherwise correct circuit: single-event upsets, stuck-at bits on a
link, words lost or duplicated by a flaky stream endpoint, and transient
back-pressure storms. They are the fault space a systematic robustness
campaign sweeps (following the functional fault-injection methodology of
Rodrigues & Cardoso) to measure how well synthesized assertions and the
runtime watchdog detect misbehaviour.

Mechanics: every fault is a small stateful dataclass attached by a
:class:`RuntimeFaultInjector` to the execution fabric —

* channel faults hook :class:`repro.hls.cyclemodel.Channel` push/full
  logic, so they apply identically under the schedule-level cycle model
  (:mod:`repro.runtime.hwexec`) and the RTL simulator
  (:mod:`repro.rtl.sim`), both of which move words through ``Channel``;
* :class:`RegisterUpset` uses the :meth:`ProcessExec.upset_register` hook.

Faults are deterministic: they trigger on a fixed word index or cycle
number, never on wall-clock or unseeded randomness, so a campaign run with
the same seed reproduces bit-for-bit. ``reset()`` rearms a fault so the
same scenario object can be executed at several assertion levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError

__all__ = [
    "RuntimeFault",
    "ChannelBitFlip",
    "StuckAtBit",
    "DropWord",
    "DuplicateWord",
    "StreamStall",
    "RegisterUpset",
    "RuntimeFaultInjector",
]


@dataclass
class RuntimeFault:
    """Base class: one deterministic defect bound to a channel or process.

    Subclasses set ``channel`` (a stream name) to hook word movement
    through that channel, or ``process`` to act on a
    :class:`~repro.hls.cyclemodel.ProcessExec` each cycle. ``events``
    records what the fault actually did, for campaign reports.
    """

    channel: str | None = field(default=None, init=False)
    process: str | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.events: list[str] = []
        self.reset()

    def reset(self) -> None:
        """Rearm the fault for a fresh execution."""
        self.events = []

    # -- channel hooks (called by Channel when the fault is attached) ------

    def on_push(self, value, channel, now: int) -> list:
        """Transform one pushed word; return the words actually enqueued."""
        return [value]

    def blocks_push(self, channel, now: int) -> bool:
        """True while the fault asserts back-pressure on the channel."""
        return False

    # -- process hook (called by the injector once per cycle) --------------

    def on_cycle(self, now: int, execs: dict) -> None:
        """Act on process state at cycle ``now``."""

    def describe(self) -> str:
        return repr(self)


@dataclass
class _ChannelWordFault(RuntimeFault):
    """Shared machinery: a fault keyed on the Nth word pushed to a channel."""

    target: str = ""

    def __post_init__(self) -> None:
        self.channel = self.target
        super().__post_init__()

    def reset(self) -> None:
        super().reset()
        self.seen = 0

    def on_push(self, value, channel, now: int) -> list:
        # tap channels carry tuples; word faults only corrupt scalar words
        if not isinstance(value, int):
            return [value]
        index = self.seen
        self.seen += 1
        return self._transform(value, index, channel, now)

    def _transform(self, value: int, index: int, channel, now: int) -> list:
        raise NotImplementedError


@dataclass
class ChannelBitFlip(_ChannelWordFault):
    """Transient upset: XOR one bit of the ``word_index``-th word pushed."""

    word_index: int = 0
    bit: int = 0

    def _transform(self, value, index, channel, now):
        if index != self.word_index:
            return [value]
        flipped = value ^ (1 << (self.bit % channel.width))
        self.events.append(
            f"cycle {now}: {channel.name} word {index}: "
            f"{value:#x} -> {flipped:#x} (bit {self.bit % channel.width})"
        )
        return [flipped]


@dataclass
class StuckAtBit(_ChannelWordFault):
    """Permanent defect: one wire of the channel stuck at 0 or 1."""

    bit: int = 0
    stuck_value: int = 1
    from_word: int = 0

    def _transform(self, value, index, channel, now):
        if index < self.from_word:
            return [value]
        mask = 1 << (self.bit % channel.width)
        forced = (value | mask) if self.stuck_value else (value & ~mask)
        if forced != value and len(self.events) < 64:
            self.events.append(
                f"cycle {now}: {channel.name} word {index}: "
                f"{value:#x} -> {forced:#x} (stuck-at-{self.stuck_value})"
            )
        return [forced]


@dataclass
class DropWord(_ChannelWordFault):
    """Flaky endpoint: the ``word_index``-th word pushed is lost."""

    word_index: int = 0

    def _transform(self, value, index, channel, now):
        if index != self.word_index:
            return [value]
        self.events.append(
            f"cycle {now}: {channel.name} dropped word {index} ({value:#x})"
        )
        return []


@dataclass
class DuplicateWord(_ChannelWordFault):
    """Flaky handshake: the ``word_index``-th word is enqueued twice."""

    word_index: int = 0

    def _transform(self, value, index, channel, now):
        if index != self.word_index:
            return [value]
        self.events.append(
            f"cycle {now}: {channel.name} duplicated word {index} ({value:#x})"
        )
        return [value, value]


@dataclass
class StreamStall(RuntimeFault):
    """Back-pressure storm: the channel refuses pushes for a cycle window.

    Producers (and the board feeder) see a full FIFO during
    ``[start_cycle, start_cycle + duration)``; a correct design merely
    slows down, so this fault probes the schedule's stall robustness and
    gives campaigns their *benign* baseline outcomes.
    """

    target: str = ""
    start_cycle: int = 0
    duration: int = 16

    def __post_init__(self) -> None:
        self.channel = self.target
        super().__post_init__()

    def blocks_push(self, channel, now: int) -> bool:
        stalled = self.start_cycle <= now < self.start_cycle + self.duration
        if stalled and not self.events:
            self.events.append(
                f"cycle {now}: {channel.name} back-pressure storm "
                f"({self.duration} cycles)"
            )
        return stalled


@dataclass
class RegisterUpset(RuntimeFault):
    """Single-event upset: flip one bit of one architectural register.

    The register is chosen by ``reg_index`` into the process's sorted
    register file at the moment the upset fires — stable for a given
    compiled design, independent of register *names*, so seeded campaigns
    survive instrumentation-induced renaming.
    """

    target: str = ""
    cycle: int = 64
    reg_index: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        self.process = self.target
        super().__post_init__()

    def reset(self) -> None:
        super().reset()
        self.fired = False

    def on_cycle(self, now: int, execs: dict) -> None:
        if self.fired or now < self.cycle:
            return
        self.fired = True
        pe = execs.get(self.process)
        if pe is None or pe.done:
            self.events.append(f"cycle {now}: {self.target} already done; no effect")
            return
        reg, bit = pe.upset_register(self.reg_index, self.bit)
        self.events.append(f"cycle {now}: {self.target}.{reg} bit {bit} flipped")


class RuntimeFaultInjector:
    """Owns a fault list and the simulation clock they are armed against.

    ``attach`` validates every fault against the actual fabric (unknown
    channel or process names raise :class:`FaultError`, mirroring
    :func:`repro.faults.ir.apply_faults`'s matched-nothing check), rearms
    the faults, and hooks them into the channels. The executor then calls
    ``tick()`` once per clock.
    """

    def __init__(self, faults=()):
        self.faults = list(faults)
        self.cycle = 0
        self._execs: dict = {}
        self._hooked: list = []

    def detach(self) -> None:
        """Unhook every channel this injector previously attached to."""
        for ch in self._hooked:
            ch.faults = [f for f in ch.faults if all(f is not g for g in self.faults)]
        self._hooked = []

    def attach(self, channels: dict, execs: dict | None = None) -> None:
        self.detach()
        self.cycle = 0
        self._execs = dict(execs or {})
        for fault in self.faults:
            fault.reset()
            if fault.channel is not None:
                if fault.channel not in channels:
                    raise FaultError(
                        f"{fault!r} targets unknown channel {fault.channel!r}; "
                        f"have {sorted(channels)}", code="RPR-F002")
                ch = channels[fault.channel]
                ch.faults.append(fault)
                ch.clock = self
                self._hooked.append(ch)
            if fault.process is not None:
                if self._execs and fault.process not in self._execs:
                    raise FaultError(
                        f"{fault!r} targets unknown process {fault.process!r}; "
                        f"have {sorted(self._execs)}", code="RPR-F003")

    def tick(self) -> None:
        self.cycle += 1
        for fault in self.faults:
            fault.on_cycle(self.cycle, self._execs)

    def event_log(self) -> list[str]:
        out: list[str] = []
        for fault in self.faults:
            out.extend(fault.events)
        return out
