"""Streaming loopback scalability application (paper Section 5.3).

"The application consists of a simple streaming loopback. The loopback
also stores the value and retrieves the value at each stage. Each process
added to the application adds an extra stage in the loopback … The
assertion in each process ensures the number being passed is greater than
zero."

``build_loopback(n)`` generates exactly that: ``n`` chained FPGA processes,
each buffering the word through a small block RAM and asserting
``value > 0`` (a single greater-than comparison per process, as in the
paper), fed and drained by the CPU. This is the workload behind Figures 4
and 5.
"""

from __future__ import annotations

from repro.runtime.taskgraph import Application

_STAGE_TEMPLATE = """
void {name}(co_stream input, co_stream output) {{
  uint32 x;
  uint32 buf[16];
  uint32 i;
  i = 0;
  while (co_stream_read(input, &x)) {{
    buf[i & 15] = x;
    assert(buf[i & 15] > 0);
    co_stream_write(output, buf[i & 15]);
    i = i + 1;
  }}
  co_stream_close(output);
}}
"""


def stage_source(name: str) -> str:
    """The C source of one loopback stage."""
    return _STAGE_TEMPLATE.format(name=name)


def build_loopback(
    n_processes: int,
    data: list[int] | None = None,
    with_assertions: bool = True,
) -> Application:
    """Build an ``n_processes``-stage loopback application.

    ``with_assertions=False`` generates the same chain with the assertion
    compiled out at the source level (for the 'Original' series of
    Figures 4/5 it is equivalent to synthesizing with ``assertions='none'``
    — both paths exist so tests can confirm they agree).
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    data = data if data is not None else list(range(1, 33))
    app = Application(f"loopback{n_processes}")
    for i in range(n_processes):
        name = f"stage{i}"
        src = stage_source(name)
        if not with_assertions:
            src = "\n".join(
                line for line in src.split("\n") if "assert(" not in line
            )
        app.add_c_process(src, name=name, filename=f"{name}.c")
    app.feed("feed", "stage0.input", data=data)
    for i in range(n_processes - 1):
        app.connect(f"link{i}", f"stage{i}.output", f"stage{i + 1}.input")
    app.sink("drain", f"stage{n_processes - 1}.output")
    return app


def expected_output(data: list[int]) -> list[int]:
    """The loopback is an identity pipe."""
    return list(data)
