"""Section 5.1 case studies: in-circuit verification and debugging.

Two applications reproduce the paper's Figure 3 scenarios:

* :func:`build_divergence_app` — assertions that pass in software
  simulation and fail in circuit. Bug 1 is the documented Impulse-C
  translation defect (a 64-bit comparison emitted as a 5-bit comparison:
  ``4294967286 > 4294967296`` is false in C but ``22 > 0`` is true in the
  faulty circuit, driving an array address out of range). Bug 2 is an
  external HDL function whose hardware behaviour differs from the C model
  supplied for simulation.

* :func:`build_hang_app` — a process that completes in software simulation
  but hangs in hardware because a memory *read* was emitted where a *write*
  belonged (the paper's DES speedup bug). With ``NABORT`` defined,
  ``assert(0)`` trace points report how far each run got; comparing the
  failed-assertion line numbers between simulation and circuit locates the
  hang, exactly as Section 5.1 describes.
"""

from __future__ import annotations

from repro.faults import NarrowCompare, ReadForWrite
from repro.runtime.taskgraph import Application

#: line numbers inside DIVERGENCE_SOURCE (kept stable by the literal below)
DIVERGENCE_COMPARE_LINE = 13
DIVERGENCE_SOURCE = """#include "co.h"

void checker_demo(co_stream input, co_stream output) {
  uint64 c1;
  uint64 c2;
  uint32 v;
  uint32 addr;
  uint32 r;
  uint32 data[32];
  c1 = 4294967296;
  c2 = 4294967286;
  while (co_stream_read(input, &v)) {
    if (c2 > c1) { addr = addr + 54; } else { addr = 0; }
    assert(addr < 32);
    data[addr & 31] = v;
    r = ext_hdl(v);
    assert(r == v + 1);
    co_stream_write(output, r + data[addr & 31]);
  }
  co_stream_close(output);
}
"""


def sw_ext_hdl(v: int) -> int:
    """The C model the developer supplies for software simulation."""
    return (v + 1) & 0xFFFFFFFF


def hw_ext_hdl(v: int) -> int:
    """The actual external HDL block: an optimized 8-bit incrementer that
    silently wraps — correct for the vendor's use case, not for this one."""
    return (v & ~0xFF) | ((v + 1) & 0xFF)


def build_divergence_app(
    values: list[int] | None = None,
    inject_compare_bug: bool = True,
    inject_ext_bug: bool = True,
) -> tuple[Application, dict]:
    """Build the Figure 3 application.

    Returns ``(app, faults)`` — pass ``faults`` to
    :func:`repro.core.synthesize` so the translation bug exists only in the
    hardware build, as in the paper.
    """
    values = values if values is not None else [3, 7, 255, 9]
    app = Application("divergence")
    app.add_c_process(
        DIVERGENCE_SOURCE,
        name="checker_demo",
        filename="verify.c",
        ext_sw={"ext_hdl": sw_ext_hdl},
        ext_hw={"ext_hdl": hw_ext_hdl if inject_ext_bug else sw_ext_hdl},
    )
    app.feed("vals", "checker_demo.input", data=values)
    app.sink("res", "checker_demo.output")
    faults = {}
    if inject_compare_bug:
        faults["checker_demo"] = (
            NarrowCompare(width=5, line=DIVERGENCE_COMPARE_LINE),
        )
    return app, faults


#: line numbers of the trace assertions and of the faulty store below
HANG_STORE_LINE = 12
HANG_TRACE_LINES = (8, 14, 19)
HANG_SOURCE = """#include "co.h"

void des_worker(co_stream input, co_stream output) {
  uint32 x;
  uint32 ready;
  uint32 flags[4];
  while (co_stream_read(input, &x)) {
    assert(0);
    flags[0] = 0;
    x = (x * 2654435761) ^ (x >> 13);
    flags[1] = x;
    flags[0] = 1;
    ready = 0;
    assert(0);
    while (ready == 0) {
      ready = flags[0];
    }
    co_stream_write(output, x ^ flags[1]);
    assert(0);
  }
  co_stream_close(output);
}
"""


def build_hang_app(
    values: list[int] | None = None,
    inject_hang_bug: bool = True,
    with_traces: bool = True,
) -> tuple[Application, dict]:
    """Build the hang-debugging application (paper Section 5.1, example 2).

    ``with_traces=False`` removes the ``assert(0)`` trace points (the
    production configuration). The returned faults dict turns the
    ``flags[0] = 1`` store into a read in the hardware build only.
    """
    values = values if values is not None else [11, 22, 33]
    src = HANG_SOURCE
    if not with_traces:
        src = "\n".join(
            "" if line.strip() == "assert(0);" else line
            for line in src.split("\n")
        )
    app = Application("hangdemo")
    app.add_c_process(src, name="des_worker", filename="des_worker.c",
                      defines={"NABORT": ""} if with_traces else None)
    app.feed("blocks", "des_worker.input", data=values)
    app.sink("out", "des_worker.output")
    faults = {}
    if inject_hang_bug:
        faults["des_worker"] = (
            ReadForWrite(array="flags", line=HANG_STORE_LINE),
        )
    return app, faults
