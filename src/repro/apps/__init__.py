"""Case-study applications: Triple-DES, edge detection, loopback, debugging demos."""

from repro.apps.edge_detect import build_edge_app, edge_source, golden_edge
from repro.apps.loopback import build_loopback, expected_output, stage_source
from repro.apps.tripledes import (
    DEFAULT_KEYS,
    build_tdes_app,
    encrypt_text,
    expected_blocks,
    tdes_source,
)
from repro.apps.verification import (
    DIVERGENCE_SOURCE,
    HANG_SOURCE,
    build_divergence_app,
    build_hang_app,
)

__all__ = [
    "build_edge_app",
    "edge_source",
    "golden_edge",
    "build_loopback",
    "expected_output",
    "stage_source",
    "DEFAULT_KEYS",
    "build_tdes_app",
    "encrypt_text",
    "expected_blocks",
    "tdes_source",
    "DIVERGENCE_SOURCE",
    "HANG_SOURCE",
    "build_divergence_app",
    "build_hang_app",
]
