"""Edge-detection application (paper Section 5.2, Table 2).

"The edge-detection application, provided by Impulse-C, reads a 16-bit
grayscale bitmap file on the microprocessor, processes it with pipelined
5x5 image kernels on the FPGA, and streams the image containing
edge-detection information back. Since the FPGA is programmed to process
an image of a specific size, two assertions were added to check that the
image size (height and width) received by the FPGA matches the hardware
configuration."

The FPGA process keeps four line buffers in block RAM and a 5x5 window in
registers, computing a Laplacian-style edge magnitude
``|25*center - sum(window)|`` per pixel in a pipelined loop. The stream
protocol is ``width, height, pixel...``; the process emits one output word
per input pixel (border outputs are don't-care, as in streaming kernels),
and the two paper assertions guard the header against a mismatched
hardware configuration.
"""

from __future__ import annotations

from repro.runtime.taskgraph import Application


def _window_shift_code() -> str:
    lines = []
    for r in range(5):
        for c in range(4):
            lines.append(f"    w{r}{c} = w{r}{c + 1};")
        lines.append(f"    w{r}4 = c{r};")
    return "\n".join(lines)


def _window_decls() -> str:
    names = [f"w{r}{c}" for r in range(5) for c in range(5)]
    return "\n".join(f"  uint16 {n};" for n in names)


def _sum_code() -> str:
    terms = [f"w{r}{c}" for r in range(5) for c in range(5)]
    # balanced accumulation; the scheduler re-chains within depth limits
    lines = []
    acc = terms[0]
    for i, t in enumerate(terms[1:]):
        lines.append(f"    s{i} = {acc} + {t};")
        acc = f"s{i}"
    decls = "\n".join(f"  uint32 s{i};" for i in range(24))
    return decls, lines, acc


def edge_source(width: int = 128, height: int = 64,
                with_assertions: bool = True) -> str:
    """Generate the dialect-C source of the 5x5 edge-detection process."""
    asserts = ""
    if with_assertions:
        asserts = f"""
  assert(w == {width});
  assert(h == {height});"""
    sum_decls, sum_lines, sum_final = _sum_code()
    sum_body = "\n".join(sum_lines)
    return f"""#include "co.h"

void edge5x5(co_stream input, co_stream output) {{
  uint32 w;
  uint32 h;
  uint32 px;
  uint32 x;
  uint32 c0;
  uint32 c1;
  uint32 c2;
  uint32 c3;
  uint32 c4;
  uint32 center25;
  int32 mag;
  uint32 out;
{_window_decls()}
{sum_decls}
  uint16 line0[{width}];
  uint16 line1[{width}];
  uint16 line2[{width}];
  uint16 line3[{width}];

  co_stream_read(input, &w);
  co_stream_read(input, &h);{asserts}

  x = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &px)) {{
    c0 = line0[x];
    c1 = line1[x];
    c2 = line2[x];
    c3 = line3[x];
    c4 = px;
    line0[x] = c1;
    line1[x] = c2;
    line2[x] = c3;
    line3[x] = c4;
{_window_shift_code()}
{sum_body}
    center25 = (w22 << 4) + (w22 << 3) + w22;
    mag = (int32)center25 - (int32){sum_final};
    out = (mag < 0) ? (uint32)(-mag) : (uint32)mag;
    co_stream_write(output, out);
    x = (x + 1 == w) ? 0 : (x + 1);
  }}
  co_stream_close(output);
}}
"""


def golden_edge(width: int, height: int, pixels: list[int]) -> list[int]:
    """Bit-exact Python model of the streaming kernel above."""
    line = [[0] * width for _ in range(4)]
    win = [[0] * 5 for _ in range(5)]
    out = []
    x = 0
    for px in pixels:
        cols = [line[0][x], line[1][x], line[2][x], line[3][x], px & 0xFFFF]
        line[0][x] = cols[1]
        line[1][x] = cols[2]
        line[2][x] = cols[3]
        line[3][x] = cols[4]
        for r in range(5):
            for c in range(4):
                win[r][c] = win[r][c + 1]
            win[r][4] = cols[r]
        total = sum(win[r][c] for r in range(5) for c in range(5))
        mag = 25 * win[2][2] - total
        out.append(abs(mag) & 0xFFFFFFFF)
        x = 0 if x + 1 == width else x + 1
    return out


def build_edge_app(
    width: int = 128,
    height: int = 64,
    pixels: list[int] | None = None,
    with_assertions: bool = True,
    header: tuple[int, int] | None = None,
) -> Application:
    """The paper's Table 2 workload.

    ``header`` overrides the (width, height) words actually sent — feeding
    a size different from the hardware configuration is how the paper's
    assertions fire.
    """
    if pixels is None:
        # deterministic synthetic gradient-with-edges test image
        pixels = [
            ((x * 7 + y * 13) ^ (0xFF if (x // 8 + y // 8) % 2 else 0)) & 0xFFFF
            for y in range(height)
            for x in range(width)
        ]
    hdr = header if header is not None else (width, height)
    app = Application("edge_detect")
    app.add_c_process(
        edge_source(width, height, with_assertions=with_assertions),
        name="edge5x5",
        filename="edge.c",
    )
    app.feed("pixels_in", "edge5x5.input", data=[hdr[0], hdr[1], *pixels])
    app.sink("edges_out", "edge5x5.output")
    return app
