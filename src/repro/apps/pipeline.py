"""Editable multi-stage pipeline — the incremental-synthesis workload.

Like the loopback (Section 5.3) this chains ``stages`` FPGA processes,
but every stage embeds a per-stage ``delta`` constant in its C source
(``y = x + delta``) and asserts ``y > delta``. Changing one stage's delta
is the canonical "edit one process of an N-process app": exactly one
process's canonical IR text changes, so incremental synthesis
(:mod:`repro.lab.incremental`) must rebuild exactly one artifact while
the other ``stages - 1`` hit the cache. Each stage carries exactly one
assertion, which keeps the global error-code bases of *later* stages
stable under edits (an edit never shifts a neighbor's ``code_base``).
"""

from __future__ import annotations

from repro.runtime.taskgraph import Application

_STAGE_TEMPLATE = """
void {name}(co_stream input, co_stream output) {{
  uint32 x;
  uint32 y;
  uint32 acc[16];
  uint32 i;
  i = 0;
  while (co_stream_read(input, &x)) {{
    y = x + {delta};
    acc[i & 15] = y;
    assert(acc[i & 15] > {delta});
    co_stream_write(output, acc[i & 15]);
    i = i + 1;
  }}
  co_stream_close(output);
}}
"""


def stage_source(name: str, delta: int = 0) -> str:
    """The C source of one pipeline stage with its edit constant."""
    return _STAGE_TEMPLATE.format(name=name, delta=int(delta))


def build_pipeline(
    stages: int,
    deltas: dict[int, int] | None = None,
    data: list[int] | None = None,
) -> Application:
    """Build a ``stages``-process pipeline; ``deltas`` maps stage index to
    that stage's add-constant (default 0 — the unedited baseline)."""
    if stages < 1:
        raise ValueError("need at least one stage")
    deltas = deltas or {}
    data = data if data is not None else list(range(1, 33))
    app = Application(f"pipeline{stages}")
    for i in range(stages):
        name = f"stage{i}"
        app.add_c_process(stage_source(name, deltas.get(i, 0)),
                          name=name, filename=f"{name}.c")
    app.feed("feed", "stage0.input", data=data)
    for i in range(stages - 1):
        app.connect(f"link{i}", f"stage{i}.output", f"stage{i + 1}.input")
    app.sink("drain", f"stage{stages - 1}.output")
    return app


def expected_output(data: list[int], stages: int,
                    deltas: dict[int, int] | None = None) -> list[int]:
    """Each word gains the sum of all stage deltas."""
    total = sum((deltas or {}).get(i, 0) for i in range(stages))
    return [x + total for x in data]
