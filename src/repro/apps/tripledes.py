"""Triple-DES streaming decryption application (paper Section 5.2, Table 1).

"The first application case study shows the area and clock frequency
overhead associated with adding performance optimized assertion statements
to a Triple-DES application provided by Impulse-C, which sends encrypted
text files to the FPGA to be decoded. Two assertion statements were added
to verify that the decrypted characters are within the normal bounds of an
ASCII text file."

The FPGA process implements full FIPS 46-3 DES (initial/final permutation,
16 Feistel rounds with E-expansion, the eight S-boxes as a 512-entry ROM,
P-permutation) applied three times in EDE-decrypt order. Round keys are
precomputed by :func:`repro.apps.des_tables.key_schedule` and baked into
the source as a constant ROM, as the Impulse-C demo does. The two ASCII
assertions from the paper guard every decrypted byte.
"""

from __future__ import annotations

from repro.apps import des_tables as T
from repro.runtime.taskgraph import Application


def _fmt_table(values, per_line: int = 16) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        lines.append(", ".join(str(v) for v in values[i:i + per_line]))
    return ",\n    ".join(lines)


def _flat_sbox() -> list[int]:
    flat = []
    for box in T.SBOX:
        flat.extend(box)
    return flat


def round_key_rom(k1: int, k2: int, k3: int) -> list[int]:
    """48 round keys in application order for EDE decryption:
    stage 0 = DES-decrypt with k3, stage 1 = DES-encrypt with k2,
    stage 2 = DES-decrypt with k1."""
    ks1, ks2, ks3 = (
        T.key_schedule(k1),
        T.key_schedule(k2),
        T.key_schedule(k3),
    )
    rom: list[int] = []
    rom.extend(reversed(ks3))   # decrypt applies round keys in reverse
    rom.extend(ks2)
    rom.extend(reversed(ks1))
    return rom


def tdes_source(k1: int, k2: int, k3: int, with_assertions: bool = True) -> str:
    """Generate the dialect-C source of the Triple-DES decrypt process."""
    asserts = ""
    if with_assertions:
        asserts = """
      assert(ch < 127);
      assert((ch >= 32) || (ch == 10) || (ch == 13) || (ch == 9) || (ch == 0));"""
    return f"""#include "co.h"

void tdes_decrypt(co_stream input, co_stream output) {{
  uint64 blk;
  uint64 ip;
  uint64 preout;
  uint64 fpv;
  uint64 xk;
  uint32 left;
  uint32 right;
  uint32 newr;
  uint32 f;
  uint32 sout;
  uint32 six;
  uint32 row;
  uint32 col;
  uint32 r;
  uint32 i;
  uint32 stage;
  uint32 b;
  uint8 ch;
  const uint8 iptab[64] = {{
    {_fmt_table(T.IP)}
  }};
  const uint8 fptab[64] = {{
    {_fmt_table(T.FP)}
  }};
  const uint8 etab[48] = {{
    {_fmt_table(T.E)}
  }};
  const uint8 ptab[32] = {{
    {_fmt_table(T.P)}
  }};
  const uint8 sboxes[512] = {{
    {_fmt_table(_flat_sbox())}
  }};
  const uint64 rk[48] = {{
    {_fmt_table(round_key_rom(k1, k2, k3), per_line=4)}
  }};

  while (co_stream_read(input, &blk)) {{
    for (stage = 0; stage < 3; stage = stage + 1) {{
      ip = 0;
      for (i = 0; i < 64; i = i + 1) {{
        ip = (ip << 1) | ((blk >> (64 - iptab[i])) & 1);
      }}
      left = (uint32)(ip >> 32);
      right = (uint32)ip;
      for (r = 0; r < 16; r = r + 1) {{
        xk = 0;
        for (i = 0; i < 48; i = i + 1) {{
          xk = (xk << 1) | ((right >> (32 - etab[i])) & 1);
        }}
        xk = xk ^ rk[stage * 16 + r];
        sout = 0;
        for (i = 0; i < 8; i = i + 1) {{
          six = (uint32)((xk >> (42 - 6 * i)) & 63);
          row = ((six >> 4) & 2) | (six & 1);
          col = (six >> 1) & 15;
          sout = (sout << 4) | sboxes[(i << 6) | (row << 4) | col];
        }}
        f = 0;
        for (i = 0; i < 32; i = i + 1) {{
          f = (f << 1) | ((sout >> (32 - ptab[i])) & 1);
        }}
        newr = left ^ f;
        left = right;
        right = newr;
      }}
      preout = (((uint64)right) << 32) | ((uint64)left);
      fpv = 0;
      for (i = 0; i < 64; i = i + 1) {{
        fpv = (fpv << 1) | ((preout >> (64 - fptab[i])) & 1);
      }}
      blk = fpv;
    }}
    for (b = 0; b < 8; b = b + 1) {{
      ch = (uint8)((blk >> (b << 3)) & 255);{asserts}
    }}
    co_stream_write(output, blk);
  }}
  co_stream_close(output);
}}
"""


#: default demo keys (parity bits ignored, as in the Impulse-C demo)
DEFAULT_KEYS = (0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123)


def encrypt_text(text: bytes, keys: tuple[int, int, int] = DEFAULT_KEYS) -> list[int]:
    """CPU-side helper: produce the ciphertext blocks the app feeds in."""
    return [
        T.tdes_encrypt_block(b, *keys) for b in T.pack_text(text)
    ]


def build_tdes_app(
    text: bytes = b"Now is the time for all good men to come to the aid!",
    keys: tuple[int, int, int] = DEFAULT_KEYS,
    with_assertions: bool = True,
) -> Application:
    """The paper's Table 1 workload: encrypted text in, plaintext out."""
    app = Application("tripledes")
    app.add_c_process(
        tdes_source(*keys, with_assertions=with_assertions),
        name="tdes_decrypt",
        filename="tdes.c",
    )
    app.feed("cipher", "tdes_decrypt.input", data=encrypt_text(text, keys),
             width=64)
    app.sink("plain", "tdes_decrypt.output", width=64)
    return app


def expected_blocks(text: bytes) -> list[int]:
    return T.pack_text(text)
