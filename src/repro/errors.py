"""Exception hierarchy for the repro HLS toolchain.

Every error raised by the library derives from :class:`ReproError` so callers
can catch toolchain failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all toolchain errors."""


class PreprocessorError(ReproError):
    """Raised for malformed preprocessor directives or unbalanced conditionals."""

    def __init__(self, message: str, filename: str = "<source>", line: int = 0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class ParseError(ReproError):
    """Raised when the C dialect parser rejects the input."""


class TypeError_(ReproError):
    """Raised for C-level type violations (name kept distinct from builtins)."""


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering encounters unsupported constructs."""


class IRError(ReproError):
    """Raised by the IR verifier for malformed IR."""


class SchedulingError(ReproError):
    """Raised when a legal schedule cannot be constructed."""


class BindingError(ReproError):
    """Raised when resource binding fails (e.g. conflicting lifetimes)."""


class CodegenError(ReproError):
    """Raised when RTL generation encounters an unsupported IR shape."""


class SimulationError(ReproError):
    """Raised by the RTL or software simulators for illegal states."""


class DeadlockError(SimulationError):
    """Raised when every process in a simulation is blocked (hang detected).

    Carries a per-process trace so the hang can be located, mirroring the
    paper's Section 5.1 debugging methodology.
    """

    def __init__(self, message: str, traces: dict | None = None):
        super().__init__(message)
        self.traces = dict(traces or {})


class FaultError(ReproError):
    """Raised when a fault injection is misconfigured — an IR fault whose
    selector matches nothing, or a runtime fault naming an unknown channel,
    process or register."""


class CampaignError(ReproError):
    """Raised for malformed fault-injection campaign configurations."""


class PlatformError(ReproError):
    """Raised when a design does not fit the target device."""


class AssertionSynthesisError(ReproError):
    """Raised by the assertion instrumentation/optimization passes."""
