"""Exception hierarchy for the repro HLS toolchain.

Every error raised by the library derives from :class:`ReproError` so
callers can catch toolchain failures without masking programming errors.

Each subclass owns a stable error-code prefix (``RPR-P`` preprocessor,
``RPR-S`` syntax, ``RPR-T`` types, ...) and every raise site supplies a
specific code like ``RPR-L017`` (enforced by ``tools/lint_diagnostics.py``
in CI), plus an optional source :class:`~repro.diagnostics.span.Span`.
This makes every toolchain failure convertible to a structured
:class:`~repro.diagnostics.core.Diagnostic` — machine-readable, renderable
with a caret-underlined source excerpt, and serializable into lab/
campaign/difftest result records and failure bundles.

Errors must survive a ``pickle`` round-trip unchanged (lab executor
workers raise them inside ``ProcessPoolExecutor`` children), which the
``__reduce__`` below guarantees even for subclasses with custom
constructor signatures.
"""

from __future__ import annotations

from repro.diagnostics.span import Span

__all__ = [
    "CODE_PREFIXES",
    "AssertionSynthesisError",
    "BindingError",
    "CampaignError",
    "CodegenError",
    "DeadlockError",
    "DiagnosticError",
    "FaultError",
    "IRError",
    "LoweringError",
    "ParseError",
    "PlatformError",
    "PreprocessorError",
    "ReproError",
    "ReproTypeError",
    "SchedulingError",
    "ServeError",
    "SimCompileError",
    "SimulationError",
    "TypeError_",
]


def _rebuild_error(cls, args, state):
    """Unpickle helper: bypass subclass ``__init__`` signatures entirely."""
    exc = cls.__new__(cls)
    Exception.__init__(exc, *args)
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class for all toolchain errors.

    ``code`` is a stable machine-readable identifier (``RPR-X123``);
    ``span`` locates the error in the user's C source when known;
    ``notes`` are secondary explanation lines and ``hint`` a fix
    suggestion — all carried into the structured diagnostic.
    """

    #: per-subclass error-code prefix; see :data:`CODE_PREFIXES`
    code_prefix = "RPR-E"

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        span: Span | None = None,
        notes: tuple[str, ...] = (),
        hint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = str(message)
        self.code = code or f"{self.code_prefix}000"
        self.span = span
        self.notes = tuple(notes)
        self.hint = hint

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.__dict__))

    def diagnostic(self):
        """This error as a structured :class:`Diagnostic` record."""
        from repro.diagnostics.core import Diagnostic

        return Diagnostic(
            code=self.code,
            severity="error",
            message=self.message,
            span=self.span,
            notes=self.notes,
            hint=self.hint,
        )


class PreprocessorError(ReproError):
    """Raised for malformed preprocessor directives or unbalanced conditionals."""

    code_prefix = "RPR-P"

    def __init__(self, message: str, filename: str = "<source>", line: int = 0,
                 **kwargs) -> None:
        kwargs.setdefault("span", Span(file=filename, line=line))
        super().__init__(f"{filename}:{line}: {message}", **kwargs)
        self.filename = filename
        self.line = line
        #: the message without the location prefix (the span carries that)
        self.plain_message = str(message)

    def diagnostic(self):
        diag = super().diagnostic()
        # the span already locates the error; don't repeat file:line in text
        return diag.replace(message=self.plain_message)


class ParseError(ReproError):
    """Raised when the C dialect parser rejects the input."""

    code_prefix = "RPR-S"


class ReproTypeError(ReproError):
    """Raised for C-level type violations (name kept distinct from builtins)."""

    code_prefix = "RPR-T"


#: deprecated alias, kept for callers written against the pre-diagnostics
#: API; new code should spell it ReproTypeError
TypeError_ = ReproTypeError


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering encounters unsupported constructs."""

    code_prefix = "RPR-L"


class IRError(ReproError):
    """Raised by the IR verifier for malformed IR."""

    code_prefix = "RPR-I"


class SchedulingError(ReproError):
    """Raised when a legal schedule cannot be constructed."""

    code_prefix = "RPR-H"


class BindingError(ReproError):
    """Raised when resource binding fails (e.g. conflicting lifetimes)."""

    code_prefix = "RPR-B"


class CodegenError(ReproError):
    """Raised when RTL generation encounters an unsupported IR shape."""

    code_prefix = "RPR-C"


class SimulationError(ReproError):
    """Raised by the RTL or software simulators for illegal states."""

    code_prefix = "RPR-X"


class SimCompileError(ReproError):
    """Raised by the compiled-simulation backend (:mod:`repro.simc`) when a
    design cannot be specialized to Python bytecode.

    Backend selection (:func:`repro.simc.make_rtl_sim` /
    :func:`repro.simc.make_process_exec`) catches this and falls back to
    the interpreted simulators, surfacing the reason as an ``RPR-K101``
    warning diagnostic; strict call sites (the difftest lockstep legs)
    let it propagate."""

    code_prefix = "RPR-K"


class DeadlockError(SimulationError):
    """Raised when every process in a simulation is blocked (hang detected).

    Carries a per-process trace so the hang can be located, mirroring the
    paper's Section 5.1 debugging methodology.
    """

    def __init__(self, message: str, traces: dict | None = None, **kwargs):
        kwargs.setdefault("code", "RPR-X900")
        super().__init__(message, **kwargs)
        self.traces = dict(traces or {})


class FaultError(ReproError):
    """Raised when a fault injection is misconfigured — an IR fault whose
    selector matches nothing, or a runtime fault naming an unknown channel,
    process or register."""

    code_prefix = "RPR-F"


class CampaignError(ReproError):
    """Raised for malformed fault-injection campaign configurations."""

    code_prefix = "RPR-G"


class ServeError(ReproError):
    """Raised by the synthesis service (:mod:`repro.serve`) — malformed
    protocol messages, admission-control rejections, a draining daemon, or
    client-side connection failures."""

    code_prefix = "RPR-V"


class PlatformError(ReproError):
    """Raised when a design does not fit the target device."""

    code_prefix = "RPR-D"


class AssertionSynthesisError(ReproError):
    """Raised by the assertion instrumentation/optimization passes."""

    code_prefix = "RPR-A"


class DiagnosticError(ReproError):
    """A diagnostic emitted into a strict sink, re-raised as an exception.

    Used when a component produces a :class:`Diagnostic` directly (rather
    than raising) but the caller asked for raise-on-first behavior.
    """

    code_prefix = "RPR-E"

    @classmethod
    def from_diagnostic(cls, diag) -> "DiagnosticError":
        return cls(
            diag.message,
            code=diag.code,
            span=diag.span,
            notes=diag.notes,
            hint=diag.hint,
        )


def error_classes() -> dict[str, type[ReproError]]:
    """Every concrete error class defined here, by name (for tooling)."""
    out: dict[str, type[ReproError]] = {"ReproError": ReproError}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            if sub.__name__ not in out:
                out[sub.__name__] = sub
                stack.append(sub)
    return out


#: code-prefix table: one row per error category, in pipeline order.
#: ``repro synth --help-codes`` and the README error-code section render it.
CODE_PREFIXES: dict[str, str] = {
    "RPR-P": "preprocessor (directives, conditionals, includes)",
    "RPR-S": "syntax / parse (pycparser rejection, duplicate definitions)",
    "RPR-T": "C type system (unknown types, illegal widths)",
    "RPR-L": "AST-to-IR lowering (unsupported constructs)",
    "RPR-I": "IR verifier (malformed IR)",
    "RPR-H": "HLS scheduling / pipelining",
    "RPR-B": "resource binding",
    "RPR-C": "RTL code generation",
    "RPR-X": "simulation (interpreter, cycle model, RTL sim; X9xx = hangs)",
    "RPR-K": "compiled-simulation backend (codegen, backend selection)",
    "RPR-A": "assertion synthesis passes",
    "RPR-F": "fault-injection configuration",
    "RPR-G": "campaign orchestration",
    "RPR-D": "platform / device fit",
    "RPR-R": "task-graph construction (processes, streams, taps)",
    "RPR-W": "design-space sweeps",
    "RPR-V": "synthesis service (serve daemon: protocol, admission, client)",
    "RPR-Y": "differential-testing harness",
    "RPR-M": "performance-bench harness (backend mismatch, baseline gate)",
    "RPR-E": "generic / internal (E999 = bridged non-toolchain exception)",
}
