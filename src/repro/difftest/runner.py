"""Differential-testing campaigns over the repro.lab infrastructure.

A campaign is a seed range evaluated in parallel through
:class:`repro.lab.executor.LabExecutor` (crash-isolated workers), with
every seed's verdict journaled in the :mod:`repro.lab.store` JSONL result
store (so an interrupted campaign resumes) and compilation memoized in
:class:`repro.lab.cache.SynthesisCache`. Diverging seeds are reduced
in-worker and saved as standalone JSON seed files under the run
directory's ``seeds/``, replayable with ``repro difftest --replay``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.diagnostics.bundle import bundle_name, write_bundle
from repro.difftest.generator import GenConfig, generate
from repro.difftest.oracle import (
    DiffReport,
    DifftestError,
    divergence_diagnostics,
    run_difftest,
)
from repro.difftest.reduce import reduce_program, same_bug
from repro.lab.cache import SynthesisCache
from repro.lab.executor import LabExecutor, PointOutcome
from repro.lab.store import ResultStore, RunHandle
from repro.utils.idgen import stable_fingerprint
from repro.utils.tables import render_table

__all__ = [
    "DifftestResult",
    "DifftestSpec",
    "evaluate_seed",
    "replay_seed_file",
    "run_difftest_campaign",
    "write_divergence_bundle",
]

SEED_SCHEMA = 1


@dataclass(frozen=True)
class DifftestSpec:
    """One campaign: a half-open seed range plus generator knobs."""

    name: str = "difftest"
    seeds: tuple[int, int] = (0, 50)
    gen: GenConfig = field(default_factory=GenConfig)
    max_cycles: int = 200_000
    reduce: bool = True
    reduce_checks: int = 300
    #: "interp" runs the classic three-way oracle; "compiled" adds the
    #: :mod:`repro.simc` specialized simulators as strict lockstep legs
    sim_backend: str = "interp"
    #: >= 1 appends the ``scalar-vs-batched`` phase with this many lanes
    #: per seed program (lane 0 = the original feed); 0 disables it
    batch_lanes: int = 0

    def seed_list(self) -> list[int]:
        lo, hi = self.seeds
        return list(range(lo, hi))

    def fingerprint(self) -> str:
        parts = ["difftest", self.name, self.seeds, self.gen.key_parts(),
                 self.max_cycles, self.sim_backend]
        # appended only when enabled so pre-existing run ids (and their
        # resumable journals) keep resolving for non-batched campaigns
        if self.batch_lanes:
            parts.append(("batch-lanes", self.batch_lanes))
        fp = stable_fingerprint(*parts)
        return f"{fp:012x}"

    def run_id(self) -> str:
        return f"{self.name}-{self.fingerprint()}"


# ---- worker (runs in ProcessPool children; must stay picklable) -------------


def evaluate_seed(args: tuple) -> dict:
    """Evaluate one seed; returns a JSON-able record.

    ``args`` is ``(spec, seed, cache_root)``. A diverging seed still
    returns status "ok" at the store level (the *evaluation* succeeded;
    resume must not retry it) with ``divergent: true`` and the full
    reproducer payload in the record.
    """
    spec, seed, cache_root = args
    cache = SynthesisCache(cache_root)
    prog = generate(seed, spec.gen)
    t0 = time.monotonic()
    report = run_difftest(
        prog.render(), prog.feed, filename=f"seed{seed}.c",
        max_cycles=spec.max_cycles, cache=cache,
        sim_backend=spec.sim_backend, batch_lanes=spec.batch_lanes,
    )
    record = {
        "point_id": f"seed-{seed}",
        "seed": seed,
        "stmts": prog.stmt_count(),
        "feed_len": len(prog.feed),
        "assertions": report.assertions,
        "cm_cycles": report.cm_cycles,
        "rtl_cycles": report.rtl_cycles,
        "divergent": not report.ok,
        "cache_hit": cache.stats.hits > 0,
        "sim_backend": spec.sim_backend,
        "elapsed_s": round(time.monotonic() - t0, 4),
    }
    if spec.batch_lanes:
        record["batch_lanes"] = report.batch_lanes
    if report.ok:
        return record

    record["divergence"] = report.divergence.as_dict()
    # which program record["divergence"] localizes — the failure bundle
    # must pair the divergence with the program that produced it
    record["divergence_program"] = "original"
    record["source"] = prog.render()
    record["feed"] = list(prog.feed)
    if spec.reduce:
        original = report.divergence

        def still_fails(candidate) -> bool:
            r = run_difftest(candidate.render(), candidate.feed,
                             filename=f"seed{seed}-reduce.c",
                             max_cycles=spec.max_cycles, cache=cache,
                             sim_backend=spec.sim_backend,
                             batch_lanes=spec.batch_lanes)
            return same_bug(original, r.divergence)

        reduced = reduce_program(prog, still_fails,
                                 max_checks=spec.reduce_checks)
        final = run_difftest(reduced.render(), reduced.feed,
                             filename=f"seed{seed}-reduced.c",
                             max_cycles=spec.max_cycles, cache=cache,
                             sim_backend=spec.sim_backend,
                             batch_lanes=spec.batch_lanes)
        record["reduced_source"] = reduced.render()
        record["reduced_feed"] = list(reduced.feed)
        record["reduced_stmts"] = reduced.stmt_count()
        # the reduced program's localization is the one worth reading
        if final.divergence is not None:
            record["divergence"] = final.divergence.as_dict()
            record["divergence_program"] = "reduced"
    return record


def write_divergence_bundle(run: RunHandle, spec: DifftestSpec,
                            record: dict) -> Path:
    """Persist one diverging seed as a replayable failure bundle.

    Pairs the recorded divergence with the program that produced it (the
    reduced one when reduction re-confirmed the bug), so ``repro replay``
    re-runs exactly that program and compares diagnostics byte for byte.
    """
    if record.get("divergence_program") == "reduced":
        source, feed = record["reduced_source"], record["reduced_feed"]
    else:
        source, feed = record["source"], record["feed"]
    return write_bundle(
        run.dir / "bundles" / bundle_name(record["point_id"]),
        "difftest",
        divergence_diagnostics(record.get("divergence")),
        context={
            "seed": record["seed"],
            "feed": list(feed or []),
            "filename": f"seed{record['seed']}.c",
            "max_cycles": spec.max_cycles,
        },
        source=source,
    )


def write_seed_file(run: RunHandle, record: dict) -> Path:
    """Persist one diverging seed as a standalone replayable JSON file."""
    seeds_dir = run.dir / "seeds"
    seeds_dir.mkdir(exist_ok=True)
    payload = {
        "schema": SEED_SCHEMA,
        "seed": record["seed"],
        "divergence": record.get("divergence"),
        "source": record.get("source"),
        "feed": record.get("feed"),
    }
    for k in ("reduced_source", "reduced_feed"):
        if k in record:
            payload[k] = record[k]
    path = seeds_dir / f"seed-{record['seed']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay_seed_file(path: str, max_cycles: int = 200_000,
                     reduced: bool = True) -> DiffReport:
    """Re-run the program stored in a seed file through the oracle."""
    data = json.loads(Path(path).read_text())
    if reduced and data.get("reduced_source"):
        source, feed = data["reduced_source"], data["reduced_feed"]
    else:
        source, feed = data.get("source"), data.get("feed")
    if not source:
        raise DifftestError(f"{path}: no program source in seed file", code="RPR-Y007")
    return run_difftest(source, feed or [], filename=Path(path).name,
                        max_cycles=max_cycles)


# ---- the driver -------------------------------------------------------------


@dataclass
class DifftestResult:
    """Per-seed records plus the campaign manifest."""

    spec: DifftestSpec
    run: RunHandle
    manifest: dict
    records: dict[str, dict]
    seed_files: list[str] = field(default_factory=list)
    #: the seeds this run was responsible for (== spec.seed_list() unless
    #: the run was sharded with ``--shard K/N``)
    selected: list[int] | None = None

    @property
    def seeds(self) -> list[int]:
        return self.selected if self.selected is not None else \
            self.spec.seed_list()

    @property
    def divergent(self) -> list[dict]:
        return [r for r in self.records.values() if r.get("divergent")]

    @property
    def failed(self) -> list[dict]:
        return [r for r in self.records.values()
                if r.get("status") != "ok"]

    @property
    def ok(self) -> bool:
        return (not self.divergent and not self.failed
                and len(self.records) == len(self.seeds))

    def render(self) -> str:
        rows = []
        for rec in sorted(self.records.values(),
                          key=lambda r: r.get("seed", -1)):
            if rec.get("status") != "ok":
                rows.append([rec.get("point_id", "?"), "-", "-",
                             rec.get("status", "failed"),
                             str(rec.get("error", ""))[:60]])
            elif rec.get("divergent"):
                d = rec.get("divergence", {})
                what = (f"{d.get('phase', '?')}/{d.get('kind', '?')}"
                        + (f" @cycle {d['cycle']}" if "cycle" in d else "")
                        + (f" state {d['state']}" if "state" in d else "")
                        + (f" signal {d['signal']}" if "signal" in d else ""))
                rows.append([rec["point_id"], rec["stmts"],
                             rec.get("cm_cycles", "-"), "DIVERGENT", what])
        n = len(self.seeds)
        ndiv, nfail = len(self.divergent), len(self.failed)
        title = (f"DIFFTEST {self.spec.name} ({n} seeds, run "
                 f"{self.run.run_id}): {ndiv} divergent, {nfail} failed")
        if not rows:
            return f"{title}\nall {len(self.records)} evaluated seeds agree " \
                   "across interpreter / cycle model / RTL"
        return render_table(["seed", "stmts", "cycles", "status", "where"],
                            rows, title=title)


def run_difftest_campaign(
    spec: DifftestSpec,
    jobs: int = 1,
    store_root: str = "lab-runs",
    cache_root: str | None = None,
    resume: bool = True,
    timeout: float | None = None,
    progress=None,
    shard=None,
    retry=None,
    hedge: bool = False,
) -> DifftestResult:
    """Evaluate every seed in ``spec``; journaled, resumable, cached.

    ``shard`` (:class:`repro.lab.shard.ShardSpec`) restricts the run to a
    deterministic K/N slice of the seed range in its own run directory;
    ``repro merge`` folds slices back together. ``retry``/``hedge``
    configure executor fault tolerance.
    """
    out = sys.stderr if progress is None else progress
    store = ResultStore(store_root)
    all_seeds = spec.seed_list()
    selected = (shard.select(all_seeds, key=lambda s: f"seed-{s}")
                if shard is not None else all_seeds)
    run_id = shard.run_id(spec.run_id()) if shard is not None \
        else spec.run_id()
    run = store.open_run(run_id)
    if not resume and run.results_path.exists():
        run.results_path.unlink()
    done = run.completed_ids() if resume else set()
    journal_corrupt = run.stats.corrupt
    pending = [s for s in selected if f"seed-{s}" not in done]

    counters = {
        "total": len(selected),
        "skipped_resume": len(selected) - len(pending),
        "done": 0,
        "failed": 0,
        "retried": 0,
        "divergent": 0,
        "journal_corrupt": journal_corrupt,
    }
    seed_files: list[str] = []
    bundle_paths: list[str] = []
    executor = LabExecutor(jobs=jobs, timeout=timeout, retry=retry,
                           hedge=hedge)

    def manifest(status: str, wall: float) -> dict:
        counters["retried"] = executor.stats.retries
        return {
            "kind": "difftest",
            "run_id": run.run_id,
            "name": spec.name,
            "difftest": spec.name,
            "fingerprint": spec.fingerprint(),
            "status": status,
            "jobs": jobs,
            "shard": shard.as_dict() if shard is not None else None,
            "seeds": list(spec.seeds),
            "cache_root": str(cache_root) if cache_root else None,
            "store_root": str(store_root),
            "counters": dict(counters),
            "executor": executor.stats.as_dict(),
            "retry": retry.as_dict() if retry is not None else None,
            "seed_files": list(seed_files),
            "bundles": list(bundle_paths),
            "wall_time_s": round(wall, 3),
        }

    def say(text: str) -> None:
        if out:
            print(text, file=out, flush=True)

    shard_note = f" [shard {shard.index}/{shard.total}]" \
        if shard is not None else ""
    say(f"difftest {spec.name}{shard_note}: {len(pending)}/"
        f"{counters['total']} seeds to run "
        f"({counters['skipped_resume']} already done), jobs={jobs}")
    if journal_corrupt:
        say(f"difftest {spec.name}: WARNING: skipped {journal_corrupt} "
            f"torn/corrupt journal line(s) in {run.results_path}; "
            "affected seeds re-run")
    t0 = time.monotonic()
    run.write_manifest(manifest("running", 0.0))

    def on_result(oc: PointOutcome) -> None:
        seed = pending[oc.index]
        if oc.ok:
            record = dict(oc.value)
            record["status"] = "ok"
            record["attempts"] = oc.attempts
            counters["done"] += 1
            if record.get("divergent"):
                counters["divergent"] += 1
                path = write_seed_file(run, record)
                seed_files.append(str(path))
                bdir = write_divergence_bundle(run, spec, record)
                record["bundle"] = str(bdir)
                bundle_paths.append(str(bdir))
                d = record.get("divergence", {})
                note = f"DIVERGENT {d.get('phase')}/{d.get('kind')}"
            else:
                note = f"agree ({record.get('cm_cycles')} cycles)"
        else:
            record = {"point_id": f"seed-{seed}", "seed": seed,
                      "status": oc.status, "error": oc.error,
                      "attempts": oc.attempts,
                      "diagnostics": list(oc.diagnostics)}
            counters["failed"] += 1
            note = oc.error
        run.append(record)
        finished = counters["done"] + counters["failed"]
        say(f"[{finished + counters['skipped_resume']}/{counters['total']}] "
            f"seed {seed}: {oc.status} ({note})")

    try:
        executor.map(evaluate_seed,
                     [(spec, s, cache_root) for s in pending],
                     on_result=on_result)
    except KeyboardInterrupt:
        run.write_manifest(manifest("interrupted", time.monotonic() - t0))
        say(f"difftest {spec.name}: interrupted after {counters['done']} "
            "seeds; rerun to resume")
        raise

    wall = time.monotonic() - t0
    status = "completed" if not counters["failed"] and \
        not counters["divergent"] else "completed-with-findings"
    run.write_manifest(manifest(status, wall))
    say(f"difftest {spec.name}: seeds total={counters['total']} "
        f"done={counters['done']} divergent={counters['divergent']} "
        f"failed={counters['failed']} skipped={counters['skipped_resume']}, "
        f"wall time {wall:.2f}s")

    latest: dict[str, dict] = {}
    for rec in run.records():
        pid = rec.get("point_id")
        if pid is not None:
            latest[pid] = rec
    # resumed diverging seeds keep their seed files from the earlier run
    for rec in latest.values():
        if rec.get("divergent"):
            path = run.dir / "seeds" / f"seed-{rec['seed']}.json"
            if path.exists() and str(path) not in seed_files:
                seed_files.append(str(path))
    return DifftestResult(spec=spec, run=run, manifest=run.read_manifest(),
                          records=latest, seed_files=sorted(seed_files),
                          selected=selected)
