"""Deterministic seeded program generator over the supported dialect.

Programs are built as a tiny structured AST (so the reducer can shrink
them) and rendered to dialect C accepted by
:func:`repro.frontend.lowering.lower_source`. Every program has the
paper's canonical process shape::

    void dt(co_stream input, co_stream output) {
        <decls>
        while (co_stream_read(input, &x)) { <body> }
        co_stream_close(output);
    }

Generation is a pure function of ``(seed, GenConfig)`` — the only entropy
source is one :class:`random.Random` seeded from those — so campaigns are
reproducible and seed files replayable.

Constraints baked in so that a *correct* toolchain can never diverge on a
generated program (anything the oracle flags is then a real bug):

* array indices are masked to the (power-of-two) array size — the
  interpreter traps out-of-bounds while hardware wraps;
* every divisor and shift amount is a non-zero / in-range constant —
  division by zero raises in all three models but at different "times";
* stream writes are rendered with an explicit ``(uint32)`` cast so the
  interpreter's 64-bit event value matches the 32-bit channel;
* loop bounds are small constants and nesting is bounded, keeping cycle
  counts low enough for lockstep comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["GenConfig", "Program", "generate", "SCALAR_TYPES"]

#: widths offered for locals — deliberately includes odd widths, which
#: stress the promote-to-32 C conversion rules in both directions
SCALAR_TYPES = (
    "int8", "uint8", "int13", "uint13", "int16", "uint16",
    "int24", "uint24", "int32", "uint32",
)

ARRAY_TYPES = ("uint8", "int16", "uint16", "int32", "uint32")

#: bit patterns worth feeding: sign boundaries at every common width
CORNER_WORDS = (
    0, 1, 2, 0x7F, 0x80, 0xFF, 0x7FFF, 0x8000, 0xFFFF,
    0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xFFFFFFF3, 0xAAAAAAAA,
)


# ---- mini AST ---------------------------------------------------------------
# Plain mutable dataclasses: the reducer deep-copies programs and edits
# nodes in place, and render() is the only consumer.


@dataclass
class Num:
    value: int

    def render(self) -> str:
        return str(self.value) if self.value >= 0 else f"(-{-self.value})"


@dataclass
class Var:
    name: str

    def render(self) -> str:
        return self.name


@dataclass
class Bin:
    op: str
    left: object
    right: object

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass
class Un:
    op: str
    operand: object

    def render(self) -> str:
        return f"({self.op}{self.operand.render()})"


@dataclass
class Cond:
    cond: object
    iftrue: object
    iffalse: object

    def render(self) -> str:
        return (f"({self.cond.render()} ? {self.iftrue.render()}"
                f" : {self.iffalse.render()})")


@dataclass
class Cast:
    type_name: str
    operand: object

    def render(self) -> str:
        return f"(({self.type_name}){self.operand.render()})"


@dataclass
class Load:
    array: str
    index: object
    mask: int

    def render(self) -> str:
        return f"{self.array}[({self.index.render()} & {self.mask})]"


@dataclass
class Assign:
    var: str
    op: str  # '=', '+=', '^=', ...
    expr: object

    def render(self, indent: str) -> list[str]:
        return [f"{indent}{self.var} {self.op} {self.expr.render()};"]


@dataclass
class Store:
    array: str
    index: object
    mask: int
    expr: object

    def render(self, indent: str) -> list[str]:
        return [f"{indent}{self.array}[({self.index.render()} & "
                f"{self.mask})] = {self.expr.render()};"]


@dataclass
class IfS:
    cond: object
    then: list = field(default_factory=list)
    els: list = field(default_factory=list)

    def render(self, indent: str) -> list[str]:
        lines = [f"{indent}if ({self.cond.render()}) {{"]
        lines += _render_body(self.then, indent + "  ")
        if self.els:
            lines += [f"{indent}}} else {{"]
            lines += _render_body(self.els, indent + "  ")
        lines += [f"{indent}}}"]
        return lines


@dataclass
class ForS:
    var: str
    bound: int
    body: list = field(default_factory=list)

    def render(self, indent: str) -> list[str]:
        v = self.var
        lines = [f"{indent}for ({v} = 0; {v} < {self.bound}; {v}++) {{"]
        lines += _render_body(self.body, indent + "  ")
        lines += [f"{indent}}}"]
        return lines


@dataclass
class Write:
    expr: object

    def render(self, indent: str) -> list[str]:
        # the (uint32) cast is part of the statement's rendering, not the
        # expression tree, so the reducer can never strip it and introduce
        # a spurious 64-vs-32-bit write mismatch
        return [f"{indent}co_stream_write(output, "
                f"(uint32)({self.expr.render()}));"]


@dataclass
class AssertS:
    cond: object

    def render(self, indent: str) -> list[str]:
        return [f"{indent}assert({self.cond.render()});"]


def _render_body(stmts: list, indent: str) -> list[str]:
    out: list[str] = []
    for s in stmts:
        out += s.render(indent)
    return out


# ---- program ----------------------------------------------------------------


@dataclass
class Program:
    """One generated test program plus the stimulus to feed it."""

    seed: int
    decls: dict[str, str]  # var -> dialect type name (insertion order)
    arrays: dict[str, tuple[str, int, tuple[int, ...]]]
    body: list
    feed: tuple[int, ...]
    name: str = "dt"

    def render(self) -> str:
        lines = [f"void {self.name}(co_stream input, co_stream output) {{"]
        lines.append("  uint32 x;")
        for var, ty in self.decls.items():
            lines.append(f"  {ty} {var};")
        for arr, (ety, size, init) in self.arrays.items():
            if init:
                vals = ", ".join(str(v) for v in init)
                lines.append(f"  {ety} {arr}[{size}] = {{{vals}}};")
            else:
                lines.append(f"  {ety} {arr}[{size}];")
        lines.append("  while (co_stream_read(input, &x)) {")
        lines += _render_body(self.body, "    ")
        lines.append("  }")
        lines.append("  co_stream_close(output);")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def stmt_count(self) -> int:
        def count(stmts: list) -> int:
            n = 0
            for s in stmts:
                n += 1
                if isinstance(s, IfS):
                    n += count(s.then) + count(s.els)
                elif isinstance(s, ForS):
                    n += count(s.body)
            return n

        return count(self.body)


# ---- configuration ----------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Knobs for the generator; hashable so it fingerprints into run ids."""

    max_stmts: int = 8
    max_depth: int = 3        # expression nesting
    max_block_depth: int = 2  # if/for nesting
    arrays: bool = True
    loops: bool = True
    asserts: bool = True
    #: always append a signed division/modulo kernel so every seed
    #: exercises the historical RtlSim sign-extension bug class
    signed_kernel: bool = True
    min_feed: int = 2
    max_feed: int = 6

    def key_parts(self) -> tuple:
        return (self.max_stmts, self.max_depth, self.max_block_depth,
                self.arrays, self.loops, self.asserts, self.signed_kernel,
                self.min_feed, self.max_feed)


# ---- generation -------------------------------------------------------------


class _Gen:
    def __init__(self, seed: int, cfg: GenConfig) -> None:
        # seed with a str: Random() hashes it with sha512, which is stable
        # across processes (tuple seeding would go through PYTHONHASHSEED)
        self.rng = random.Random(f"repro-difftest-{seed}")
        self.cfg = cfg
        self.decls: dict[str, str] = {}
        self.arrays: dict[str, tuple[str, int, tuple[int, ...]]] = {}
        self.loop_vars: list[str] = []

    # -- leaves ---------------------------------------------------------------

    def _const(self) -> Num:
        r = self.rng
        pick = r.random()
        if pick < 0.4:
            return Num(r.randint(0, 15))
        if pick < 0.7:
            return Num(r.choice((0x7F, 0x80, 0xFF, 0x7FFF, 0x8000,
                                 0xFFFF, 0x12345, 0x7FFFFFFF)))
        return Num(-r.randint(1, 1 << 16))

    def _var_ref(self) -> Var:
        pool = ["x", *self.decls, *self.loop_vars]
        return Var(self.rng.choice(pool))

    def _nonzero_divisor(self) -> Num:
        r = self.rng
        mag = r.choice((1, 2, 3, 5, 7, 9, 13, 100, 1000))
        return Num(-mag if r.random() < 0.4 else mag)

    # -- expressions ----------------------------------------------------------

    def expr(self, depth: int = 0):
        r = self.rng
        if depth >= self.cfg.max_depth or r.random() < 0.3:
            return self._var_ref() if r.random() < 0.6 else self._const()
        pick = r.random()
        if pick < 0.50:
            op = r.choice(("+", "-", "*", "&", "|", "^", "+", "-"))
            return Bin(op, self.expr(depth + 1), self.expr(depth + 1))
        if pick < 0.62:
            op = r.choice(("/", "%"))
            return Bin(op, self.expr(depth + 1), self._nonzero_divisor())
        if pick < 0.70:
            op = r.choice(("<<", ">>"))
            return Bin(op, self.expr(depth + 1), Num(r.randint(0, 15)))
        if pick < 0.80:
            op = r.choice(("==", "!=", "<", "<=", ">", ">="))
            return Bin(op, self.expr(depth + 1), self.expr(depth + 1))
        if pick < 0.86:
            op = r.choice(("&&", "||"))
            return Bin(op, self.expr(depth + 1), self.expr(depth + 1))
        if pick < 0.92:
            return Cast(r.choice(SCALAR_TYPES), self.expr(depth + 1))
        if pick < 0.96 and self.arrays:
            arr = r.choice(list(self.arrays))
            _, size, _ = self.arrays[arr]
            return Load(arr, self.expr(depth + 1), size - 1)
        if pick < 0.98:
            return Un(r.choice(("-", "~", "!")), self.expr(depth + 1))
        return Cond(self.expr(depth + 1), self.expr(depth + 1),
                    self.expr(depth + 1))

    # -- statements -----------------------------------------------------------

    def stmt(self, block_depth: int):
        r = self.rng
        pick = r.random()
        # never assign to a loop variable whose loop is still open: the
        # three models would agree on the resulting infinite loop, and a
        # consistent hang is a harness failure, not a divergence
        targets = [d for d in self.decls if d not in self.loop_vars] or ["x"]
        if pick < 0.45 or not self.decls:
            var = r.choice(targets)
            op = r.choice(("=", "=", "=", "+=", "-=", "^=", "|="))
            return Assign(var, op, self.expr())
        if pick < 0.60:
            return Write(self.expr())
        if pick < 0.72 and block_depth < self.cfg.max_block_depth:
            s = IfS(self.expr(1))
            s.then = self.stmts(r.randint(1, 2), block_depth + 1)
            if r.random() < 0.5:
                s.els = self.stmts(r.randint(1, 2), block_depth + 1)
            return s
        if pick < 0.82 and self.cfg.loops and \
                block_depth < self.cfg.max_block_depth:
            lv = f"i{len(self.loop_vars)}"
            self.decls.setdefault(lv, "uint8")
            self.loop_vars.append(lv)
            s = ForS(lv, r.randint(2, 6),
                     self.stmts(r.randint(1, 2), block_depth + 1))
            self.loop_vars.pop()
            return s
        if pick < 0.90 and self.arrays:
            arr = r.choice(list(self.arrays))
            _, size, _ = self.arrays[arr]
            return Store(arr, self.expr(1), size - 1, self.expr())
        if self.cfg.asserts:
            op = self.rng.choice(("<", "<=", ">", ">=", "!=", "=="))
            return AssertS(Bin(op, self.expr(1), self._const()))
        return Assign(r.choice(targets), "=", self.expr())

    def stmts(self, n: int, block_depth: int) -> list:
        return [self.stmt(block_depth) for _ in range(n)]

    # -- whole program --------------------------------------------------------

    def program(self, seed: int) -> Program:
        r = self.rng
        for i in range(r.randint(2, 5)):
            self.decls[f"v{i}"] = r.choice(SCALAR_TYPES)
        if self.cfg.arrays and r.random() < 0.6:
            ety = r.choice(ARRAY_TYPES)
            size = 8
            init = tuple(r.randint(0, 255) for _ in range(r.randint(0, size)))
            self.arrays["a0"] = (ety, size, init)

        body = self.stmts(r.randint(2, self.cfg.max_stmts), 0)
        if self.cfg.signed_kernel:
            sv = "sdk"
            sty = r.choice(("int8", "int16", "int32"))
            self.decls[sv] = sty
            body.append(Assign(
                sv, "=",
                Bin(r.choice(("/", "%")), Cast(sty, Var("x")),
                    self._nonzero_divisor()),
            ))
            body.append(Write(Var(sv)))
        if not any(isinstance(s, Write) for s in body):
            body.append(Write(self._var_ref()))

        n = r.randint(self.cfg.min_feed, self.cfg.max_feed)
        feed = tuple(
            r.choice(CORNER_WORDS) if r.random() < 0.5
            else r.getrandbits(32)
            for _ in range(n)
        )
        return Program(seed=seed, decls=self.decls, arrays=self.arrays,
                       body=body, feed=feed)


def generate(seed: int, cfg: GenConfig | None = None) -> Program:
    """Generate the program for ``seed`` — same seed, same program."""
    cfg = cfg or GenConfig()
    return _Gen(seed, cfg).program(seed)
