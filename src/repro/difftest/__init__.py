"""Three-way differential testing of the HLS flow.

The reproduction's correctness story rests on three executable models of
the same process agreeing: the IR interpreter (software-simulation C
semantics, :mod:`repro.ir.interp`), the schedule-level cycle model
(:mod:`repro.hls.cyclemodel`) and the RTL simulator
(:mod:`repro.rtl.sim`). This package turns that invariant into a standing
oracle, after FLASH-style lockstep cross-validation of HLS simulators:

* :mod:`repro.difftest.generator` — deterministic, seeded random programs
  over the supported Impulse-C dialect;
* :mod:`repro.difftest.oracle` — runs one program through all three
  models in lockstep and localizes the first divergence (cycle, FSM
  state, signal, both values);
* :mod:`repro.difftest.reduce` — greedily shrinks a failing program to a
  minimal reproducer;
* :mod:`repro.difftest.runner` — fans seed campaigns across the
  :mod:`repro.lab` executor/cache/store; ``repro difftest`` is the CLI.
"""

from repro.difftest.generator import GenConfig, Program, generate
from repro.difftest.oracle import DiffReport, DifftestError, Divergence, run_difftest
from repro.difftest.reduce import reduce_program, same_bug
from repro.difftest.runner import (
    DifftestResult,
    DifftestSpec,
    evaluate_seed,
    replay_seed_file,
    run_difftest_campaign,
)

__all__ = [
    "DiffReport",
    "DifftestError",
    "DifftestResult",
    "DifftestSpec",
    "Divergence",
    "GenConfig",
    "Program",
    "evaluate_seed",
    "generate",
    "reduce_program",
    "replay_seed_file",
    "run_difftest",
    "run_difftest_campaign",
    "same_bug",
]
