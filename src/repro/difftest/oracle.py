"""Three-way lockstep oracle: interpreter vs cycle model vs RTL simulator.

One program, three executable semantics:

1. the IR interpreter (:mod:`repro.ir.interp`) — the software-simulation
   reference, exact C width rules, idealized timing;
2. the HLS cycle model (:mod:`repro.hls.cyclemodel`) — the schedule-level
   semantics of the synthesized FSMD;
3. the RTL simulator (:mod:`repro.rtl.sim`) — the generated
   register-transfer structure itself.

The oracle first checks interpreter outputs against a standalone cycle
model run (functional equivalence of software and hardware semantics),
then replays the cycle model against the RTL simulator *in lockstep*,
clock tick by clock tick, comparing stream traffic as it appears and
tracking the first register whose value disagrees with its scheduled
temp. A divergence report therefore names the phase that disagreed, the
stream/index or cycle/FSM-state/signal where it first became visible and
both values — the localization the reducer and CI artifacts carry.

Assertions are handled by instrumenting the IR once
(:func:`repro.core.instrument.instrument_unoptimized`) and running **all
three** models on the instrumented function: ``assert`` becomes a branch
plus an error-code write to the appended ``__afail`` stream, which the
comparison then treats as just another output. This sidesteps the cycle
model's (deliberate) refusal to execute raw ``assert_check`` ops and
makes assertion behaviour itself differential-tested.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.instrument import instrument_unoptimized
from repro.errors import ReproError, SimCompileError, SimulationError
from repro.frontend.lowering import lower_source
from repro.hls.compiler import CompiledProcess, compile_process
from repro.hls.constraints import HLSConfig
from repro.hls.cyclemodel import Channel, ProcessExec
from repro.ir.function import IRFunction
from repro.ir.interp import run_to_completion
from repro.ir.ops import OpKind
from repro.rtl.sim import RtlSim
from repro.utils.bitops import truncate
from repro.utils.idgen import stable_fingerprint

__all__ = ["DiffReport", "DifftestError", "Divergence",
           "divergence_diagnostics", "run_difftest"]

#: error codes for instrumented assertions start here (matches nothing a
#: generated program writes on its own data stream)
ASSERT_CODE_BASE = 0xA000


class DifftestError(ReproError):
    """The harness itself failed (bad program, compile error) — distinct
    from a genuine model divergence."""

    code_prefix = "RPR-Y"


@dataclass
class Divergence:
    """First observable disagreement between two execution models."""

    # 'interp-vs-cyclemodel' | 'cyclemodel-vs-rtl' | 'scalar-vs-batched'
    # (plus the strict compiled legs 'cyclemodel-vs-compiled' /
    # 'rtl-vs-compiled')
    phase: str
    kind: str   # 'stream-data' | 'stream-count' | 'cycle-count' | 'hang' | 'error'
    message: str
    stream: str | None = None
    index: int | None = None
    cycle: int | None = None
    state: str | None = None     # RTL FSM state label
    location: str | None = None  # cycle-model block[step]
    signal: str | None = None    # first diverging register, if localized
    values: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {"phase": self.phase, "kind": self.kind,
               "message": self.message}
        for k in ("stream", "index", "cycle", "state", "location", "signal"):
            v = getattr(self, k)
            if v is not None:
                out[k] = v
        if self.values:
            out["values"] = dict(self.values)
        return out

    def describe(self) -> str:
        bits = [f"{self.phase}: {self.kind}"]
        if self.stream is not None:
            bits.append(f"stream={self.stream}[{self.index}]")
        if self.cycle is not None:
            bits.append(f"cycle={self.cycle}")
        if self.state is not None:
            bits.append(f"state={self.state}")
        if self.signal is not None:
            bits.append(f"signal={self.signal}")
        if self.values:
            vals = ", ".join(f"{k}={v}" for k, v in self.values.items())
            bits.append(f"({vals})")
        return " ".join(bits)


#: diagnostic code for a genuine model divergence (harness errors keep
#: their own RPR-Y00x codes)
DIVERGENCE_CODE = "RPR-Y100"


def divergence_diagnostics(div) -> list[dict]:
    """Structured diagnostic dicts for a divergence (or ``[]`` for None).

    Accepts a :class:`Divergence` or its :meth:`Divergence.as_dict` form.
    Deterministic for a fixed divergence, which is what lets difftest
    failure bundles replay bit-identically: the bundle stores the dicts
    this produced at campaign time, and ``repro replay`` compares them
    against a fresh run through the same function.
    """
    from repro.diagnostics.core import Diagnostic

    if div is None:
        return []
    if isinstance(div, dict):
        fields = {k: div[k] for k in ("phase", "kind", "message", "stream",
                                      "index", "cycle", "state", "location",
                                      "signal", "values") if k in div}
        div = Divergence(**fields)
    return [Diagnostic(
        code=DIVERGENCE_CODE,
        severity="error",
        message=div.describe(),
        notes=(div.message,),
        hint="replay the failure bundle with 'repro replay' to confirm "
             "the divergence reproduces",
    ).to_dict()]


#: how many recent per-cycle register snapshots the lockstep loop retains
#: for divergence context (ring buffer; tuples, not dict copies)
REG_WINDOW = 8


@dataclass
class DiffReport:
    """Outcome of one three-way differential run."""

    divergence: Divergence | None
    outputs: dict[str, list[int]]  # interpreter-side reference outputs
    interp_steps: int = 0
    cm_cycles: int = 0
    rtl_cycles: int = 0
    assertions: int = 0  # instrumented assertion count
    #: lanes checked by the ``scalar-vs-batched`` phase (0 = phase off)
    batch_lanes: int = 0
    #: last :data:`REG_WINDOW` register-file snapshots before a
    #: cyclemodel-vs-rtl divergence (empty when the run agreed)
    reg_window: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None


# ---- helpers ----------------------------------------------------------------


def _stream_roles(func: IRFunction) -> tuple[set[str], set[str]]:
    reads, writes = set(), set()
    for instr in func.instructions():
        if instr.op == OpKind.STREAM_READ:
            reads.add(instr.attrs["stream"])
        elif instr.op in (OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE):
            writes.add(instr.attrs["stream"])
    return reads, writes


def _fresh_channels(func: IRFunction, reads: set[str], writes: set[str],
                    feed: dict[str, list[int]]) -> dict[str, Channel]:
    channels: dict[str, Channel] = {}
    for s in func.stream_names():
        depth = 1_000_000 if s in writes and s not in reads else 4096
        channels[s] = Channel(s, depth=depth)
    for s, data in feed.items():
        for v in data:
            channels[s].push(v)
        channels[s].close()
    return channels


def _prepare(source: str, filename: str) -> tuple[IRFunction, int]:
    """Lower and (if needed) instrument; returns (func, assertion count)."""
    try:
        module = lower_source(source, filename=filename)
    except ReproError as exc:
        raise DifftestError(f"frontend rejected program: {exc}", code="RPR-Y001") from exc
    names = sorted(module.functions)
    if len(names) != 1:
        raise DifftestError(f"expected one process, got {names}", code="RPR-Y002")
    func = module.functions[names[0]].clone()
    has_asserts = any(i.op == OpKind.ASSERT_CHECK
                      for i in func.instructions())
    n = 0
    if has_asserts:
        codes = itertools.count(ASSERT_CODE_BASE)
        n = instrument_unoptimized(func, lambda site: next(codes))
    return func, n


def _compile(func: IRFunction, faults: tuple, cache) -> CompiledProcess:
    key = None
    if cache is not None and cache.enabled:
        fp = stable_fingerprint("difftest-compile", str(func), repr(faults))
        key = f"dt-{fp:016x}"
        cached = cache.get(key)
        if cached is not None:
            return cached
    try:
        config = HLSConfig(faults=tuple(faults)) if faults else None
        cp = compile_process(func, config)
        cp.rtl  # force codegen inside the cacheable unit
    except ReproError as exc:
        raise DifftestError(f"HLS compile failed: {exc}", code="RPR-Y003") from exc
    if key is not None:
        cache.put(key, cp)
    return cp


# ---- the oracle -------------------------------------------------------------


def run_difftest(
    source: str,
    feed,
    *,
    filename: str = "difftest.c",
    faults: tuple = (),
    max_cycles: int = 200_000,
    cache=None,
    sim_backend: str = "interp",
    batch_lanes: int = 0,
) -> DiffReport:
    """Run ``source`` through all three models; report the first divergence.

    ``feed`` is the word sequence for the single input stream. ``faults``
    are :mod:`repro.faults.ir` translation faults applied to the
    hardware-side IR only (the interpreter keeps the clean function), so a
    non-empty tuple *should* produce a divergence — that is how the oracle
    itself is tested. ``cache`` is an optional
    :class:`repro.lab.cache.SynthesisCache` memoizing compilation.

    ``sim_backend="compiled"`` adds the :mod:`repro.simc` compiled
    simulators as a fourth and fifth leg, run in the same lockstep loop
    and compared tick-for-tick against their tree-walking counterparts
    (phases ``cyclemodel-vs-compiled`` / ``rtl-vs-compiled``). The
    compiled legs are constructed in strict mode: a design the code
    generator cannot specialize is a harness error (RPR-Y008), not a
    silent fallback.

    ``batch_lanes >= 1`` appends a ``scalar-vs-batched`` phase: the
    program runs once through the structure-of-arrays batched executor
    (:class:`repro.simc.schedgen.BatchedProcessExec`) with ``batch_lanes``
    lanes — lane 0 replays the original feed, every other lane a
    deterministic seed-derived perturbation of it — and each lane's
    outputs are checked against an interpreter reference for that lane's
    feed. The full scalar cycle model re-runs only on lanes that diverge,
    to pin whether the batched backend or the underlying model is wrong.
    Like the compiled legs, the batched executor is strict: a design it
    cannot specialize is a harness error (RPR-Y011).
    """
    if sim_backend not in ("interp", "compiled"):
        raise DifftestError(
            f"unknown sim backend {sim_backend!r}; expected "
            "interp/compiled", code="RPR-Y009")
    if batch_lanes < 0:
        raise DifftestError(
            f"batch_lanes must be >= 0, got {batch_lanes}", code="RPR-Y010")
    func, n_asserts = _prepare(source, filename)
    reads, writes = _stream_roles(func)
    if len(reads) > 1:
        raise DifftestError(f"expected at most one input stream, got {reads}", code="RPR-Y004")
    in_stream = next(iter(reads)) if reads else None
    out_streams = sorted(writes - reads)
    stimulus = {in_stream: list(feed)} if in_stream else {}

    # -- phase 0: software reference ---------------------------------------
    try:
        ires, sw_out = run_to_completion(func, stimulus)
    except SimulationError as exc:
        raise DifftestError(f"interpreter failed on program: {exc}", code="RPR-Y005") from exc
    sw_out = {s: sw_out.get(s, []) for s in out_streams}

    cp = _compile(func, faults, cache)
    report = DiffReport(divergence=None, outputs=sw_out,
                        interp_steps=ires.steps, assertions=n_asserts)

    # -- phase 1: interpreter vs standalone cycle model ---------------------
    channels = _fresh_channels(cp.hw_func, reads, writes, stimulus)
    pe = ProcessExec(cp.schedule, channels)
    error: str | None = None
    try:
        while not pe.done and pe.cycles < max_cycles:
            pe.tick()
    except SimulationError as exc:
        error = str(exc)
    report.cm_cycles = pe.cycles
    if error is not None:
        report.divergence = Divergence(
            phase="interp-vs-cyclemodel", kind="error",
            message=f"cycle model raised: {error}",
            cycle=pe.cycles, location=f"{pe.block}[{pe.step}]",
        )
        return report
    if not pe.done:
        report.divergence = Divergence(
            phase="interp-vs-cyclemodel", kind="hang",
            message=f"cycle model not done after {max_cycles} cycles "
                    f"(interpreter finished in {ires.steps} steps)",
            cycle=pe.cycles, location=f"{pe.block}[{pe.step}]",
        )
        return report
    for s in out_streams:
        hw = list(channels[s].queue)
        ref = sw_out[s]
        for i, (a, b) in enumerate(zip(ref, hw)):
            if truncate(a, channels[s].width) != b:
                report.divergence = Divergence(
                    phase="interp-vs-cyclemodel", kind="stream-data",
                    message=f"output {s}[{i}]: interpreter wrote "
                            f"{truncate(a, channels[s].width)}, "
                            f"cycle model wrote {b}",
                    stream=s, index=i,
                    values={"interp": truncate(a, channels[s].width),
                            "cyclemodel": b},
                )
                return report
        if len(ref) != len(hw):
            report.divergence = Divergence(
                phase="interp-vs-cyclemodel", kind="stream-count",
                message=f"output {s}: interpreter wrote {len(ref)} words, "
                        f"cycle model wrote {len(hw)}",
                stream=s, index=min(len(ref), len(hw)),
                values={"interp": len(ref), "cyclemodel": len(hw)},
            )
            return report

    # -- phase 2: cycle model vs RTL, in lockstep ---------------------------
    d = _lockstep(cp, reads, writes, stimulus, out_streams, max_cycles,
                  report, sim_backend=sim_backend)
    report.divergence = d

    # -- phase 3: scalar vs batched lanes -----------------------------------
    if d is None and batch_lanes >= 1:
        report.batch_lanes = batch_lanes
        report.divergence = _batched_phase(
            cp, reads, writes, stimulus, out_streams, max_cycles,
            batch_lanes)
    return report


def _lane_feeds(base_feed: list[int], lanes: int) -> list[list[int]]:
    """Derive the per-lane stimulus for the scalar-vs-batched phase.

    Lane 0 replays the original feed untouched; every other lane gets a
    deterministic perturbation (word XORs, occasional tail truncation)
    seeded only by the lane index and the feed itself, so the same
    (program, lanes) pair always exercises the same lane set.
    """
    feeds = [list(base_feed)]
    for i in range(1, lanes):
        rng = random.Random(
            stable_fingerprint("difftest-batch-lane", i, tuple(base_feed)))
        feed = [v ^ rng.getrandbits(8) for v in base_feed]
        if feed and rng.random() < 0.25:
            del feed[rng.randrange(1, len(feed) + 1):]
        feeds.append(feed)
    return feeds


def _batched_phase(cp: CompiledProcess, reads, writes, stimulus,
                   out_streams, max_cycles: int,
                   lanes: int) -> Divergence | None:
    """Run ``lanes`` feed variants through one batched executor and check
    every lane against an interpreter reference for its feed; re-run the
    scalar cycle model only on diverging lanes to localize the bug."""
    from repro.simc.schedgen import BatchedProcessExec

    func = cp.hw_func
    in_stream = next(iter(reads)) if reads else None
    base_feed = list(stimulus.get(in_stream, ())) if in_stream else []
    lane_feeds = _lane_feeds(base_feed, lanes)
    lane_stims = [
        ({in_stream: f} if in_stream else {}) for f in lane_feeds
    ]
    lane_channels = [
        _fresh_channels(func, reads, writes, st) for st in lane_stims
    ]
    try:
        bx = BatchedProcessExec(cp.schedule, lane_channels)
    except SimCompileError as exc:
        raise DifftestError(
            f"batched backend rejected design: {exc}", code="RPR-Y011"
        ) from exc

    statuses: list = [None] * lanes
    live = list(range(lanes))
    while live:
        try:
            bx.tick_lanes(live, statuses)
        except SimulationError as exc:
            return Divergence(
                phase="scalar-vs-batched", kind="error",
                message=f"batched executor raised: {exc}",
                values={"lanes": live})
        live = [l for l in live
                if not bx.lanes[l].done and bx.lanes[l].cycles < max_cycles]

    for l in range(lanes):
        pe_b = bx.lanes[l]
        try:
            _, sw_out = run_to_completion(func, lane_stims[l])
        except SimulationError as exc:
            raise DifftestError(
                f"interpreter failed on lane {l} feed: {exc}",
                code="RPR-Y005") from exc
        mismatch = not pe_b.done
        if not mismatch:
            for s in out_streams:
                ch = lane_channels[l][s]
                ref = [truncate(v, ch.width) for v in sw_out.get(s, [])]
                if list(ch.queue) != ref:
                    mismatch = True
                    break
        if not mismatch:
            continue
        # scalar oracle, only here: replay this lane's feed through the
        # tree-walking cycle model and compare it field-for-field with the
        # batched lane — any difference is a batched-backend bug
        ch_s = _fresh_channels(func, reads, writes, lane_stims[l])
        pe_s = ProcessExec(cp.schedule, ch_s)
        err_s: str | None = None
        try:
            while not pe_s.done and pe_s.cycles < max_cycles:
                pe_s.tick()
        except SimulationError as exc:
            err_s = str(exc)
        diffs = {}
        if err_s is not None:
            diffs["error"] = {"scalar": err_s, "batched": None}
        if pe_s.done != pe_b.done:
            diffs["done"] = {"scalar": pe_s.done, "batched": pe_b.done}
        if pe_s.cycles != pe_b.cycles:
            diffs["cycles"] = {"scalar": pe_s.cycles,
                               "batched": pe_b.cycles}
        if pe_s.stall_cycles != pe_b.stall_cycles:
            diffs["stalls"] = {"scalar": pe_s.stall_cycles,
                               "batched": pe_b.stall_cycles}
        if pe_s.env != pe_b.env:
            names = sorted(k for k in set(pe_s.env) | set(pe_b.env)
                           if pe_s.env.get(k) != pe_b.env.get(k))
            diffs["env"] = {"signal": names[0],
                            "scalar": pe_s.env.get(names[0]),
                            "batched": pe_b.env.get(names[0])}
        for s in out_streams:
            qa = list(ch_s[s].queue)
            qb = list(lane_channels[l][s].queue)
            if qa != qb:
                diffs[f"stream:{s}"] = {"scalar": len(qa),
                                        "batched": len(qb)}
        if diffs:
            what = sorted(diffs)[0]
            return Divergence(
                phase="scalar-vs-batched", kind="backend",
                message=f"lane {l}: batched executor diverged from scalar "
                        f"cycle model ({', '.join(sorted(diffs))})",
                index=l, cycle=pe_b.cycles,
                signal=diffs.get("env", {}).get("signal"),
                values={"lane": l, "first": what, **diffs[what]},
            )
        # batched agrees with scalar — the derived feed exposed a model
        # bug (cycle model vs interpreter), not a batching bug
        return Divergence(
            phase="scalar-vs-batched", kind="lane-reference",
            message=f"lane {l}: cycle model (scalar and batched agree) "
                    "diverges from the interpreter on a derived feed",
            index=l, cycle=pe_b.cycles,
            values={"lane": l, "feed_len": len(lane_feeds[l]),
                    "done": pe_b.done},
        )
    return None


def _lockstep(cp: CompiledProcess, reads, writes, stimulus, out_streams,
              max_cycles: int, report: DiffReport,
              sim_backend: str = "interp") -> Divergence | None:
    func = cp.hw_func
    ch_cm = _fresh_channels(func, reads, writes, stimulus)
    ch_rt = _fresh_channels(func, reads, writes, stimulus)
    pe = ProcessExec(cp.schedule, ch_cm)
    try:
        sim = RtlSim(cp.rtl, ch_rt)
    except SimulationError as exc:
        raise DifftestError(f"RTL simulator rejected module: {exc}", code="RPR-Y006") from exc

    # optional compiled legs: the simc-specialized simulators replay the
    # identical stimulus on their own channels; any tick where their
    # status, register file or stream traffic differs from the
    # tree-walking models is a backend divergence
    cpe = csim = None
    ch_ccm = ch_crt = None
    if sim_backend == "compiled":
        from repro import simc

        ch_ccm = _fresh_channels(func, reads, writes, stimulus)
        ch_crt = _fresh_channels(func, reads, writes, stimulus)
        try:
            cpe = simc.make_process_exec(cp.schedule, ch_ccm, strict=True)
            csim = simc.make_rtl_sim(cp.rtl, ch_crt, strict=True)
        except (SimCompileError, SimulationError) as exc:
            raise DifftestError(
                f"compiled backend rejected design: {exc}", code="RPR-Y008"
            ) from exc

    labels = {sc.index: sc.label for sc in cp.rtl.states}
    checked = {s: 0 for s in out_streams}
    # first (cycle, reg, cm value, rtl value) where a scheduled temp and
    # its register disagree — used to *localize* a later observable
    # divergence, never to declare one by itself (transient skew between
    # the models' update points within a cycle is legal)
    reg_delta: tuple[int, str, int, int] | None = None
    scalars = {n: t for n, t in func.scalars.items()
               if f"r_{n}" in sim.regs}
    # lazy per-cycle capture: one itemgetter call per side builds a value
    # tuple at C speed; the per-register truncate/compare scan only runs
    # on the (at most one) cycle where the tuples first disagree. The
    # ring buffer keeps the last few snapshots for divergence context.
    reg_names = list(scalars)
    cm_get = rt_get = None
    if reg_names:
        cm_get = itemgetter(*reg_names)
        rt_get = itemgetter(*[f"r_{n}" for n in reg_names])
        if len(reg_names) == 1:  # itemgetter of one key returns a scalar
            _cg, _rg = cm_get, rt_get
            cm_get = lambda d, g=_cg: (g(d),)  # noqa: E731
            rt_get = lambda d, g=_rg: (g(d),)  # noqa: E731
    ring: deque = deque(maxlen=REG_WINDOW)

    def flush_ring() -> None:
        report.reg_window = [
            {"cycle": c,
             "cyclemodel": dict(zip(reg_names, a)),
             "rtl": dict(zip(reg_names, b))}
            for c, a, b in ring
        ]

    def here(cycle: int) -> dict:
        state = labels.get(sim.regs.get("state"), "?")
        loc = "done" if pe.done else f"{pe.block}[{pe.step}]"
        d = {"cycle": cycle, "state": state, "location": loc}
        if reg_delta is not None:
            d["cycle"] = reg_delta[0]
            d["signal"] = reg_delta[1]
        flush_ring()
        return d

    for cycle in range(1, max_cycles + 1):
        try:
            s_cm = pe.tick() if not pe.done else "done"
        except SimulationError as exc:
            return Divergence(phase="cyclemodel-vs-rtl", kind="error",
                              message=f"cycle model raised: {exc}",
                              **here(cycle))
        try:
            s_rt = sim.tick() if not sim.done else "done"
        except SimulationError as exc:
            return Divergence(phase="cyclemodel-vs-rtl", kind="error",
                              message=f"RTL simulator raised: {exc}",
                              **here(cycle))

        if cpe is not None:
            d = _compiled_step(cycle, s_cm, s_rt, pe, sim, cpe, csim, here)
            if d is not None:
                return d

        for s in out_streams:
            qa, qb = list(ch_cm[s].queue), list(ch_rt[s].queue)
            n = min(len(qa), len(qb))
            for i in range(checked[s], n):
                if qa[i] != qb[i]:
                    loc = here(cycle)
                    values = {"cyclemodel": qa[i], "rtl": qb[i]}
                    if reg_delta is not None:
                        values["cyclemodel_reg"] = reg_delta[2]
                        values["rtl_reg"] = reg_delta[3]
                    return Divergence(
                        phase="cyclemodel-vs-rtl", kind="stream-data",
                        message=f"output {s}[{i}]: cycle model wrote "
                                f"{qa[i]}, RTL wrote {qb[i]}",
                        stream=s, index=i, values=values, **loc,
                    )
            checked[s] = n

        if reg_delta is None and cm_get is not None \
                and not pe.done and not sim.done:
            cm_t = cm_get(pe.env)
            rt_t = rt_get(sim.regs)
            ring.append((cycle, cm_t, rt_t))
            if cm_t != rt_t:
                # localize with the exact historical semantics: compare
                # width-truncated env values in declaration order, first
                # mismatch wins (a raw-pattern difference that truncates
                # equal is not a delta)
                for name, ty in scalars.items():
                    cm_v = truncate(pe.env.get(name, 0), ty.width)
                    rt_v = sim.regs[f"r_{name}"]
                    if cm_v != rt_v:
                        reg_delta = (cycle, f"r_{name}", cm_v, rt_v)
                        break

        if s_cm == "done" and s_rt == "done":
            break
    else:
        who = ("cycle model" if not pe.done else
               "RTL simulator" if not sim.done else "both")
        return Divergence(phase="cyclemodel-vs-rtl", kind="hang",
                          message=f"{who} not done after {max_cycles} "
                                  f"lockstep cycles", **here(max_cycles))

    report.rtl_cycles = sim.cycles
    report.cm_cycles = pe.cycles

    for s in out_streams:
        qa, qb = list(ch_cm[s].queue), list(ch_rt[s].queue)
        if len(qa) != len(qb):
            return Divergence(
                phase="cyclemodel-vs-rtl", kind="stream-count",
                message=f"output {s}: cycle model wrote {len(qa)} words, "
                        f"RTL wrote {len(qb)}",
                stream=s, index=min(len(qa), len(qb)),
                values={"cyclemodel": len(qa), "rtl": len(qb)},
                **here(sim.cycles),
            )
    if pe.cycles != sim.cycles:
        return Divergence(
            phase="cyclemodel-vs-rtl", kind="cycle-count",
            message=f"cycle model finished in {pe.cycles} cycles, "
                    f"RTL in {sim.cycles}",
            values={"cyclemodel": pe.cycles, "rtl": sim.cycles},
            **here(sim.cycles),
        )

    if cpe is not None:
        d = _compiled_final(pe, sim, cpe, csim, ch_cm, ch_rt, ch_ccm, ch_crt,
                            out_streams, here)
        if d is not None:
            return d
    return None


def _compiled_step(cycle, s_cm, s_rt, pe, sim, cpe, csim, here):
    """One lockstep tick of the compiled legs, compared to the interpreted
    ones. Status, exception text, FSM position and the full register file /
    environment must match every cycle — the comparisons are plain dict
    equality, so the common all-agree case costs two C-level compares."""
    try:
        s_ccm = cpe.tick() if not cpe.done else "done"
        e_ccm = None
    except SimulationError as exc:
        s_ccm, e_ccm = "error", str(exc)
    try:
        s_crt = csim.tick() if not csim.done else "done"
        e_crt = None
    except SimulationError as exc:
        s_crt, e_crt = "error", str(exc)

    if s_ccm != s_cm or e_ccm is not None \
            or (pe.block, pe.step) != (cpe.block, cpe.step):
        return Divergence(
            phase="cyclemodel-vs-compiled", kind="backend",
            message=f"compiled cycle model diverged at cycle {cycle}: "
                    f"interp {s_cm} at {pe.block}[{pe.step}], "
                    f"compiled {s_ccm} at {cpe.block}[{cpe.step}]"
                    + (f" ({e_ccm})" if e_ccm else ""),
            values={"interp": s_cm, "compiled": e_ccm or s_ccm},
            **here(cycle))
    if s_crt != s_rt or e_crt is not None:
        return Divergence(
            phase="rtl-vs-compiled", kind="backend",
            message=f"compiled RTL simulator diverged at cycle {cycle}: "
                    f"interp {s_rt}, compiled {s_crt}"
                    + (f" ({e_crt})" if e_crt else ""),
            values={"interp": s_rt, "compiled": e_crt or s_crt},
            **here(cycle))
    if pe.env != cpe.env:
        diffs = {k: (pe.env.get(k), cpe.env.get(k))
                 for k in set(pe.env) | set(cpe.env)
                 if pe.env.get(k) != cpe.env.get(k)}
        name = sorted(diffs)[0]
        return Divergence(
            phase="cyclemodel-vs-compiled", kind="backend",
            message=f"compiled cycle model env diverged at cycle {cycle}: "
                    f"{name} interp={diffs[name][0]} "
                    f"compiled={diffs[name][1]}",
            signal=name,
            values={"interp": diffs[name][0], "compiled": diffs[name][1]},
            cycle=cycle)
    if sim.regs != csim.regs:
        diffs = {k: (sim.regs.get(k), csim.regs.get(k))
                 for k in set(sim.regs) | set(csim.regs)
                 if sim.regs.get(k) != csim.regs.get(k)}
        name = sorted(diffs)[0]
        return Divergence(
            phase="rtl-vs-compiled", kind="backend",
            message=f"compiled RTL register diverged at cycle {cycle}: "
                    f"{name} interp={diffs[name][0]} "
                    f"compiled={diffs[name][1]}",
            signal=name,
            values={"interp": diffs[name][0], "compiled": diffs[name][1]},
            cycle=cycle)
    return None


def _compiled_final(pe, sim, cpe, csim, ch_cm, ch_rt, ch_ccm, ch_crt,
                    out_streams, here):
    """End-of-run checks for the compiled legs: stream contents, cycle and
    stall counters, and RTL tap captures must be bit-identical."""
    for s in out_streams:
        for who, a, b in (("cyclemodel-vs-compiled", ch_cm[s], ch_ccm[s]),
                          ("rtl-vs-compiled", ch_rt[s], ch_crt[s])):
            if list(a.queue) != list(b.queue):
                return Divergence(
                    phase=who, kind="backend",
                    message=f"output {s}: interp backend wrote "
                            f"{len(a.queue)} words, compiled wrote "
                            f"{len(b.queue)} (or contents differ)",
                    stream=s,
                    values={"interp": len(a.queue),
                            "compiled": len(b.queue)},
                    **here(sim.cycles))
    counters = (
        ("cyclemodel-vs-compiled", "cycles", pe.cycles, cpe.cycles),
        ("cyclemodel-vs-compiled", "stalls",
         pe.stall_cycles, cpe.stall_cycles),
        ("rtl-vs-compiled", "cycles", sim.cycles, csim.cycles),
        ("rtl-vs-compiled", "stalls", sim.stalled, csim.stalled),
    )
    for who, what, a, b in counters:
        if a != b:
            return Divergence(
                phase=who, kind="backend",
                message=f"{what}: interp backend counted {a}, "
                        f"compiled counted {b}",
                values={"interp": a, "compiled": b},
                **here(sim.cycles))
    if sim.taps != csim.taps:
        return Divergence(
            phase="rtl-vs-compiled", kind="backend",
            message="RTL tap captures differ between backends",
            values={"interp": {k: len(v) for k, v in sim.taps.items()},
                    "compiled": {k: len(v) for k, v in csim.taps.items()}},
            **here(sim.cycles))
    return None
