"""Greedy program reduction: shrink a diverging program to a minimal repro.

Works on the generator's structured AST (never on text), applying
semantics-preserving-enough shrink steps and keeping any candidate on
which the oracle still reports *the same bug* (same phase and kind). The
strategy is classic greedy delta debugging run to a fixpoint:

1. delete whole statements (deepest first);
2. flatten control structure (``if`` → taken branch, ``for`` → body);
3. replace expressions by their sub-expressions;
4. drop input feed words;
5. prune now-unused declarations.

Every acceptance re-runs the oracle, so reduction cost is bounded by
``max_checks``; the loop stops early once the budget is spent, returning
the best (smallest still-failing) program found so far.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.difftest.generator import (
    Assign,
    AssertS,
    Bin,
    Cast,
    Cond,
    ForS,
    IfS,
    Load,
    Program,
    Store,
    Un,
    Write,
)
from repro.difftest.oracle import Divergence

__all__ = ["reduce_program", "same_bug"]


def same_bug(a: Divergence | None, b: Divergence | None) -> bool:
    """Loose identity for 'still the same failure' during reduction."""
    if a is None or b is None:
        return False
    return a.phase == b.phase and a.kind == b.kind


# ---- AST navigation ---------------------------------------------------------

_BRANCHES = {IfS: ("then", "els"), ForS: ("body",)}


def _stmt_paths(stmts: list, prefix=()) -> list[tuple]:
    """Every statement position, as a path of (index, branch-name) hops.

    A path ``((i, None),)`` addresses ``body[i]``; ``((i, 'then'), (j,
    None))`` addresses ``body[i].then[j]``; deepest paths come first so
    deletion tries leaves before the blocks containing them.
    """
    out: list[tuple] = []
    for i, s in enumerate(stmts):
        for br in _BRANCHES.get(type(s), ()):
            out += _stmt_paths(getattr(s, br), prefix + ((i, br),))
        out.append(prefix + ((i, None),))
    return out


def _resolve_list(prog: Program, path: tuple) -> list:
    """The statement list containing the statement addressed by ``path``."""
    lst = prog.body
    for i, br in path[:-1]:
        lst = getattr(lst[i], br)
    return lst


def _expr_slots(stmt) -> list[str]:
    return {
        Assign: ["expr"],
        Store: ["index", "expr"],
        Write: ["expr"],
        AssertS: ["cond"],
        IfS: ["cond"],
    }.get(type(stmt), [])


def _subexprs(expr) -> list:
    if isinstance(expr, Bin):
        return [expr.left, expr.right]
    if isinstance(expr, (Un, Cast)):
        return [expr.operand]
    if isinstance(expr, Cond):
        return [expr.cond, expr.iftrue, expr.iffalse]
    if isinstance(expr, Load):
        return [expr.index]
    return []


def _used_names(prog: Program) -> set[str]:
    names: set[str] = set()

    def expr(e) -> None:
        from repro.difftest.generator import Var

        if isinstance(e, Var):
            names.add(e.name)
        for sub in _subexprs(e):
            expr(sub)

    def stmts(lst: list) -> None:
        for s in lst:
            if isinstance(s, Assign):
                names.add(s.var)
            elif isinstance(s, (Store, Load)):
                names.add(s.array)
            elif isinstance(s, ForS):
                names.add(s.var)
            for slot in _expr_slots(s):
                expr(getattr(s, slot))
            if isinstance(s, Store):
                names.add(s.array)
            for br in _BRANCHES.get(type(s), ()):
                stmts(getattr(s, br))

    stmts(prog.body)
    return names


# ---- the reducer ------------------------------------------------------------


def reduce_program(
    prog: Program,
    check: Callable[[Program], bool],
    max_checks: int = 300,
) -> Program:
    """Shrink ``prog`` while ``check(candidate)`` stays true.

    ``check`` must return True iff the candidate still exhibits the
    original failure (build it with :func:`same_bug` against the oracle).
    The input program is never mutated.
    """
    budget = [max_checks]

    def accept(candidate: Program) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return bool(check(candidate))
        except Exception:
            # a shrink step can produce a program the harness rejects
            # (e.g. no writes left); that candidate is simply not taken
            return False

    current = copy.deepcopy(prog)
    changed = True
    while changed and budget[0] > 0:
        changed = False

        # 1. statement deletion, deepest-first
        for path in _stmt_paths(current.body):
            cand = copy.deepcopy(current)
            lst = _resolve_list(cand, path)
            idx = path[-1][0]
            if idx >= len(lst):
                continue
            del lst[idx]
            if accept(cand):
                current = cand
                changed = True
                break  # paths are stale after a structural edit
        if changed:
            continue

        # 2. control-structure flattening
        for path in _stmt_paths(current.body):
            i = path[-1][0]
            lst = _resolve_list(current, path)
            if i >= len(lst):
                continue
            stmt = lst[i]
            replacements = []
            if isinstance(stmt, IfS):
                replacements = [list(stmt.then), list(stmt.els)]
            elif isinstance(stmt, ForS):
                replacements = [list(stmt.body)]
            for repl in replacements:
                cand = copy.deepcopy(current)
                clst = _resolve_list(cand, path)
                clst[i: i + 1] = copy.deepcopy(repl)
                if accept(cand):
                    current = cand
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue

        # 3. expression shrinking: replace a node by one of its children
        for path in _stmt_paths(current.body):
            i = path[-1][0]
            lst = _resolve_list(current, path)
            if i >= len(lst):
                continue
            for slot in _expr_slots(lst[i]):
                root = getattr(lst[i], slot)
                for sub_i, sub in enumerate(_subexprs(root)):
                    cand = copy.deepcopy(current)
                    cstmt = _resolve_list(cand, path)[i]
                    csub = _subexprs(getattr(cstmt, slot))[sub_i]
                    setattr(cstmt, slot, csub)
                    if accept(cand):
                        current = cand
                        changed = True
                        break
                if changed:
                    break
            if changed:
                break
        if changed:
            continue

        # 4. feed shrinking: drop one word at a time
        for i in range(len(current.feed) - 1, -1, -1):
            cand = copy.deepcopy(current)
            cand.feed = cand.feed[:i] + cand.feed[i + 1:]
            if cand.feed and accept(cand):
                current = cand
                changed = True
                break

    # 5. prune declarations nothing references any more (checked once —
    # removing an unused decl cannot change behaviour, but run the oracle
    # anyway so we never return an unverified program)
    used = _used_names(current)
    cand = copy.deepcopy(current)
    cand.decls = {k: v for k, v in cand.decls.items() if k in used}
    cand.arrays = {k: v for k, v in cand.arrays.items() if k in used}
    if (len(cand.decls) < len(current.decls)
            or len(cand.arrays) < len(current.arrays)):
        budget[0] = max(budget[0], 1)
        if accept(cand):
            current = cand
    return current
