"""Shared utilities: bit manipulation, deterministic ids, table rendering."""

from repro.utils.bitops import (
    bit_length_for,
    clog2,
    mask,
    sign_extend,
    truncate,
    to_signed,
    to_unsigned,
)
from repro.utils.idgen import IdGenerator, stable_fingerprint
from repro.utils.tables import delta, pct, render_table

__all__ = [
    "bit_length_for",
    "clog2",
    "mask",
    "sign_extend",
    "truncate",
    "to_signed",
    "to_unsigned",
    "IdGenerator",
    "stable_fingerprint",
    "render_table",
    "pct",
    "delta",
]
