"""Plain-text table rendering for benchmark and report output.

The benchmark harness prints rows in the same format as the paper's tables
(resource counts with percentages, frequency rows with deltas), so a
side-by-side comparison with the publication is a visual diff.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render a monospace table.

    ``align`` is a per-column sequence of ``"l"`` or ``"r"``; defaults to
    left for the first column and right for the rest (the paper's style).
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = max(len(r) for r in cells)
    for row in cells:
        row.extend([""] * (ncols - len(row)))
    widths = [max(len(row[i]) for row in cells) for i in range(ncols)]
    if align is None:
        align = ["l"] + ["r"] * (ncols - 1)

    def fmt_row(row: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(row):
            if align[i] == "r":
                out.append(cell.rjust(widths[i]))
            else:
                out.append(cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells[1:])
    return "\n".join(lines)


def pct(numerator: float, denominator: float) -> str:
    """Format ``numerator/denominator`` as a percentage string like the paper."""
    if denominator == 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.2f}%"


def delta(new: float, old: float, unit: str = "") -> str:
    """Format an absolute+relative delta, e.g. ``+174 (+0.12%)``."""
    d = new - old
    sign = "+" if d >= 0 else ""
    if old == 0:
        return f"{sign}{d:g}{unit}"
    rel = 100.0 * d / old
    return f"{sign}{d:g}{unit} ({sign}{rel:.2f}%)"
