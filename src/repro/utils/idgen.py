"""Deterministic id generation and design fingerprinting.

The timing model uses :func:`stable_fingerprint` to derive the seeded
"placement jitter" that reproduces the non-monotonic Fmax behaviour the
paper observed across Quartus runs (Section 5.3). The fingerprint depends
only on design content, so results are reproducible run to run.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator


class IdGenerator:
    """Produces unique, readable names within one namespace.

    >>> g = IdGenerator()
    >>> g.next("tmp"), g.next("tmp"), g.next("st")
    ('tmp0', 'tmp1', 'st0')
    """

    def __init__(self) -> None:
        self._counters: dict[str, Iterator[int]] = {}

    def next(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}{next(counter)}"

    def reserve(self, name: str) -> str:
        """Return ``name`` unchanged; exists for symmetry in builder code."""
        return name


def stable_fingerprint(*parts: object) -> int:
    """64-bit deterministic hash of the stringified parts.

    Unlike ``hash()`` this is stable across interpreter runs (no
    PYTHONHASHSEED dependence), which keeps benchmark output reproducible.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")
