"""Deterministic id generation and design fingerprinting.

The timing model uses :func:`stable_fingerprint` to derive the seeded
"placement jitter" that reproduces the non-monotonic Fmax behaviour the
paper observed across Quartus runs (Section 5.3). The fingerprint depends
only on design content, so results are reproducible run to run. The lab
subsystem (:mod:`repro.lab.cache`) builds its content-addressed cache keys
on the same primitive.
"""

from __future__ import annotations

import hashlib


class IdGenerator:
    """Produces unique, readable names within one namespace.

    >>> g = IdGenerator()
    >>> g.next("tmp"), g.next("tmp"), g.next("st")
    ('tmp0', 'tmp1', 'st0')

    ``reserve()`` claims a literal name so later ``next()`` calls with the
    same prefix skip over it:

    >>> g.reserve("st1")
    'st1'
    >>> g.next("st")
    'st2'
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._reserved: set[str] = set()

    def next(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0)
        name = f"{prefix}{n}"
        while name in self._reserved:
            n += 1
            name = f"{prefix}{n}"
        self._counters[prefix] = n + 1
        return name

    def reserve(self, name: str) -> str:
        """Claim ``name`` so no later ``next()`` can emit it again."""
        self._reserved.add(name)
        return name


def stable_fingerprint(*parts: object) -> int:
    """64-bit deterministic hash of the stringified parts.

    Unlike ``hash()`` this is stable across interpreter runs (no
    PYTHONHASHSEED dependence), which keeps benchmark output reproducible.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")
