"""Exact-width two's-complement bit arithmetic helpers.

The HLS flow models hardware values as Python integers constrained to a
declared bit width. These helpers implement the wrapping/truncation rules
used by both the IR interpreter (software semantics) and the RTL simulator
(hardware semantics), so the two agree except where a translation fault is
deliberately injected.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits. ``mask(0) == 0``."""
    if width < 0:
        raise ValueError(f"negative width {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, returning the unsigned pattern."""
    return value & mask(width)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    if width <= 0:
        return 0
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_signed(value: int, width: int) -> int:
    """Alias of :func:`sign_extend` with a name matching RTL terminology."""
    return sign_extend(value, width)


def to_unsigned(value: int, width: int) -> int:
    """Reduce a (possibly negative) integer to its unsigned bit pattern."""
    return value & mask(width)


def clog2(n: int) -> int:
    """Ceiling log2: number of bits needed to index ``n`` distinct values.

    ``clog2(1) == 0`` (a single value needs no index bits); ``clog2(0)`` is
    an error.
    """
    if n <= 0:
        raise ValueError(f"clog2 of non-positive value {n}")
    return (n - 1).bit_length()


def bit_length_for(value: int) -> int:
    """Minimum unsigned width able to hold ``value`` (at least 1 bit)."""
    if value < 0:
        raise ValueError("bit_length_for takes unsigned values")
    return max(1, value.bit_length())
