"""Exact-width two's-complement bit arithmetic helpers.

The HLS flow models hardware values as Python integers constrained to a
declared bit width. These helpers implement the wrapping/truncation rules
used by both the IR interpreter (software semantics) and the RTL simulator
(hardware semantics), so the two agree except where a translation fault is
deliberately injected.
"""

from __future__ import annotations

#: memoized mask tables, indexed by width. Every simulator hot loop
#: (interpreter, cycle model, RTL simulators — interpreted and compiled)
#: funnels through :func:`truncate`/:func:`sign_extend`, so the
#: ``(1 << width) - 1`` shift pair is recomputed millions of times per run
#: for the same handful of widths; a dict hit replaces both shifts.
#: Entries are tiny ints and the set of widths in any design is bounded
#: (RPR-T001 caps declared widths), so the tables never need eviction.
_MASKS: dict[int, int] = {}
_SIGN_BITS: dict[int, int] = {}
_MODULI: dict[int, int] = {}


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits. ``mask(0) == 0``."""
    m = _MASKS.get(width)
    if m is None:
        if width < 0:
            raise ValueError(f"negative width {width}")
        m = (1 << width) - 1
        _MASKS[width] = m
        _SIGN_BITS[width] = 1 << (width - 1) if width > 0 else 0
        _MODULI[width] = 1 << width
    return m


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, returning the unsigned pattern."""
    m = _MASKS.get(width)
    if m is None:
        m = mask(width)
    return value & m


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    if width <= 0:
        return 0
    m = _MASKS.get(width)
    if m is None:
        m = mask(width)
    value &= m
    if value & _SIGN_BITS[width]:
        return value - _MODULI[width]
    return value


def to_signed(value: int, width: int) -> int:
    """Alias of :func:`sign_extend` with a name matching RTL terminology."""
    return sign_extend(value, width)


def to_unsigned(value: int, width: int) -> int:
    """Reduce a (possibly negative) integer to its unsigned bit pattern."""
    return value & mask(width)


def clog2(n: int) -> int:
    """Ceiling log2: number of bits needed to index ``n`` distinct values.

    ``clog2(1) == 0`` (a single value needs no index bits); ``clog2(0)`` is
    an error.
    """
    if n <= 0:
        raise ValueError(f"clog2 of non-positive value {n}")
    return (n - 1).bit_length()


def bit_length_for(value: int) -> int:
    """Minimum unsigned width able to hold ``value`` (at least 1 bit)."""
    if value < 0:
        raise ValueError("bit_length_for takes unsigned values")
    return max(1, value.bit_length())
