"""RTL intermediate representation.

A deliberately small, synthesizable subset: modules with clocked FSMD
processes in the style Impulse-C emits — one state machine per process,
blocking-assignment datapath chains inside the clocked block, flow-through
memories, and ready/valid stream endpoints. The Verilog emitter
(:mod:`repro.rtl.verilog`) prints it; the RTL simulator (:mod:`repro.rtl.sim`)
executes it for cross-validation against the schedule-level cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


@dataclass(frozen=True)
class Signal:
    """A named wire or register of ``width`` bits."""

    name: str
    width: int
    signed: bool = False


class PortDir(str, Enum):
    IN = "input"
    OUT = "output"


@dataclass(frozen=True)
class Port:
    signal: Signal
    direction: PortDir


# ---- expressions ---------------------------------------------------------------


class Expr:
    width: int


@dataclass(frozen=True)
class Ref(Expr):
    signal: Signal

    @property
    def width(self) -> int:
        return self.signal.width


@dataclass(frozen=True)
class Lit(Expr):
    value: int
    width: int


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str            # '-', '~', '!'
    operand: Expr
    width: int


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str            # '+','-','*','/','%','&','|','^','<<','>>','>>>',
    #                    '==','!=','<','<=','>','>=','&&','||'
    left: Expr
    right: Expr
    width: int
    signed_cmp: bool = False


@dataclass(frozen=True)
class CondExpr(Expr):
    cond: Expr
    iftrue: Expr
    iffalse: Expr
    width: int


@dataclass(frozen=True)
class SliceExpr(Expr):
    operand: Expr
    msb: int
    lsb: int

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1


@dataclass(frozen=True)
class MemRead(Expr):
    memory: str
    index: Expr
    width: int


# ---- statements (inside the clocked process) ------------------------------------


class Stmt:
    pass


@dataclass
class BlockingAssign(Stmt):
    """``target = expr;`` — datapath chaining within a state."""

    target: Signal
    expr: Expr


@dataclass
class RegAssign(Stmt):
    """``target <= expr;`` — register update."""

    target: Signal
    expr: Expr


@dataclass
class MemWrite(Stmt):
    memory: str
    index: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: list[Stmt] = field(default_factory=list)
    otherwise: list[Stmt] = field(default_factory=list)


@dataclass
class Memory:
    name: str
    width: int
    depth: int
    init: tuple[int, ...] | None = None


@dataclass
class StateCase:
    """One FSM state: statements executed when ``state == index`` and the
    state's stall condition is false."""

    index: int
    label: str
    stall: Expr | None
    body: list[Stmt] = field(default_factory=list)
    next_state: Expr | None = None  # expression producing the next state id


@dataclass
class Module:
    """One hardware process."""

    name: str
    ports: list[Port] = field(default_factory=list)
    regs: list[Signal] = field(default_factory=list)
    wires: list[Signal] = field(default_factory=list)
    memories: list[Memory] = field(default_factory=list)
    #: continuous assignments (wire = expr)
    assigns: list[tuple[Signal, Expr]] = field(default_factory=list)
    #: the FSM: state register width and cases
    state_width: int = 1
    states: list[StateCase] = field(default_factory=list)
    #: free-form metadata (pipeline descriptors etc.) for the emitter
    meta: dict = field(default_factory=dict)

    def port_signals(self) -> dict[str, Signal]:
        return {p.signal.name: p.signal for p in self.ports}

    def find_state(self, label: str) -> StateCase:
        for sc in self.states:
            if sc.label == label:
                return sc
        raise KeyError(label)
