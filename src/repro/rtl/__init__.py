"""RTL IR, Verilog emitter and RTL simulator."""

from repro.rtl.core import (
    BinExpr,
    BlockingAssign,
    CondExpr,
    If,
    Lit,
    Memory,
    MemRead,
    MemWrite,
    Module,
    Port,
    PortDir,
    Ref,
    RegAssign,
    Signal,
    SliceExpr,
    StateCase,
    UnExpr,
)
from repro.rtl.sim import RtlRunResult, RtlSim
from repro.rtl.verilog import emit_expr, emit_image, emit_module

__all__ = [
    "BinExpr",
    "BlockingAssign",
    "CondExpr",
    "If",
    "Lit",
    "Memory",
    "MemRead",
    "MemWrite",
    "Module",
    "Port",
    "PortDir",
    "Ref",
    "RegAssign",
    "Signal",
    "SliceExpr",
    "StateCase",
    "UnExpr",
    "RtlRunResult",
    "RtlSim",
    "emit_expr",
    "emit_image",
    "emit_module",
]
