"""RTL simulator: executes generated :class:`repro.rtl.core.Module` objects.

Used to cross-validate the emitted RTL against the schedule-level cycle
model: for sequential (non-pipelined) processes the two must agree cycle
for cycle on outputs and cycle counts — a strong end-to-end check that the
Verilog we print means what the cycle model measured. Pipelined regions
are not simulated here (their executable semantics are owned by
:mod:`repro.hls.cyclemodel`); passing a module with pipeline metadata
raises :class:`SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.hls.cyclemodel import Channel
from repro.rtl import core as R
from repro.utils.bitops import sign_extend, truncate


def _value_operands(a: int, b: int, expr: "R.BinExpr") -> tuple[int, int]:
    """Recover mathematical operand values for value-dependent ops.

    ``signed_cmp`` marks expressions the code generator synthesized with
    signed semantics (``$signed`` in the emitted Verilog); for those the
    unsigned patterns are sign-extended at their declared widths. Kept as
    a module-level seam so the differential tester can re-introduce the
    historical unsigned-division bug and prove it would be caught.
    """
    if expr.signed_cmp:
        return (sign_extend(a, expr.left.width),
                sign_extend(b, expr.right.width))
    return a, b


def _peek_fn(ch: Channel) -> Callable[[], int]:
    return lambda: int(ch.queue[0]) if ch.queue else 0


def _empty_fn(ch: Channel) -> Callable[[], int]:
    return lambda: int(not ch.can_pop())


def _eos_fn(ch: Channel) -> Callable[[], int]:
    return lambda: int(ch.closed)


def _full_fn(ch: Channel) -> Callable[[], int]:
    return lambda: int(not ch.can_push())


@dataclass
class RtlRunResult:
    cycles: int
    done: bool
    stalled_cycles: int = 0
    taps: dict[str, list[int]] = field(default_factory=dict)


class RtlSim:
    """Cycle simulator for one sequential module bound to channels."""

    #: which simulation backend this class implements (repro.simc overrides)
    backend = "interp"

    def __init__(
        self,
        module: R.Module,
        streams: dict[str, Channel],
        ext_hdl: Callable[[int], int] | None = None,
        injector=None,
    ) -> None:
        if module.meta.get("pipelines"):
            raise SimulationError(
                f"{module.name}: RTL simulation of pipelined regions is not "
                "supported; use the cycle model", code="RPR-X101")
        self.module = module
        self.streams = streams
        self.ext_hdl = ext_hdl or (lambda v: v)
        #: runtime-fault injector (repro.faults.runtime); channel faults it
        #: attached to ``streams`` are honored because this simulator moves
        #: every word through Channel.push/pop, and ticking it here keeps
        #: cycle-armed faults (stalls) aligned with the RTL clock
        self.injector = injector
        if injector is not None:
            injector.attach(streams, execs={})
        self.regs: dict[str, int] = {"state": 0}
        port_set = set()
        for p in module.ports:
            port_set.add(p.signal.name)
        for sig in module.regs:
            self.regs[sig.name] = 0
        self.memories: dict[str, list[int]] = {}
        for mem in module.memories:
            image = [0] * mem.depth
            for i, v in enumerate(mem.init or ()):
                image[i] = truncate(v, mem.width)
            self.memories[mem.name] = image
        self.cycles = 0
        self.stalled = 0
        self.done = False
        self.taps: dict[str, list[int]] = {}
        self._state_by_index = {sc.index: sc for sc in module.states}

        # identify stream roles from port names; a bound stream must be
        # wired to a read strobe or a write strobe — silently treating an
        # unconnected binding as a writer would swallow typos in the
        # harness and "verify" a stream the module never drives
        self._readers: dict[str, Channel] = {}
        self._writers: dict[str, Channel] = {}
        for name, ch in streams.items():
            if f"{name}_re" in port_set:
                self._readers[name] = ch
            elif f"{name}_we" in port_set:
                self._writers[name] = ch
            else:
                raise SimulationError(
                    f"{module.name}: stream {name!r} matches neither a "
                    f"{name}_re nor a {name}_we port; module streams are "
                    f"{sorted(self._stream_port_names(port_set))}", code="RPR-X102")

        # port-value dispatch: name -> zero-arg callable, precomputed once
        # so the per-access cost is a dict hit instead of a linear scan over
        # every bound stream. The compiled backend (repro.simc) reuses this
        # table for ports it could not resolve statically.
        self._port_fns: dict[str, Callable[[], int]] = {}
        for stream, ch in self._readers.items():
            self._port_fns[f"{stream}_data"] = _peek_fn(ch)
            self._port_fns[f"{stream}_empty"] = _empty_fn(ch)
            self._port_fns[f"{stream}_eos"] = _eos_fn(ch)
        for stream, ch in self._writers.items():
            self._port_fns[f"{stream}_full"] = _full_fn(ch)

    @staticmethod
    def _stream_port_names(port_set: set[str]) -> set[str]:
        """Stream names implied by the module's strobe ports."""
        return {
            p[: -len(suffix)]
            for p in port_set
            for suffix in ("_re", "_we")
            if p.endswith(suffix)
        }

    # ---- evaluation -----------------------------------------------------------

    def _port_value(self, name: str) -> int:
        fn = self._port_fns.get(name)
        if fn is None:
            raise SimulationError(f"{self.module.name}: unknown port {name!r}", code="RPR-X103")
        return fn()

    # helpers referenced from generated simc code (scalar and batched) ----------

    def _dyn_ref(self, name: str) -> int:
        """Interpreter-identical dynamic name resolution (reg, then port)."""
        regs = self.regs
        if name in regs:
            return regs[name]
        return self._port_value(name)

    def _div(self, a: int, b: int) -> int:
        if b == 0:
            raise SimulationError(
                f"{self.module.name}: divide by zero", code="RPR-X105")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q

    def _mod(self, a: int, b: int) -> int:
        if b == 0:
            raise SimulationError(
                f"{self.module.name}: divide by zero", code="RPR-X105")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return a - q * b

    def eval(self, expr: R.Expr) -> int:
        if isinstance(expr, R.Ref):
            name = expr.signal.name
            if name in self.regs:
                return truncate(self.regs[name], expr.width)
            return truncate(self._port_value(name), expr.width)
        if isinstance(expr, R.Lit):
            return truncate(expr.value, expr.width)
        if isinstance(expr, R.UnExpr):
            v = self.eval(expr.operand)
            if expr.op == "-":
                return truncate(-v, expr.width)
            if expr.op == "~":
                return truncate(~v, expr.width)
            if expr.op == "!":
                return int(v == 0)
            if expr.op in ("zext",):
                return truncate(v, expr.width)
            if expr.op == "sext":
                return truncate(sign_extend(v, expr.operand.width), expr.width)
            raise SimulationError(f"unknown unary {expr.op}", code="RPR-X104")
        if isinstance(expr, R.BinExpr):
            a = self.eval(expr.left)
            b = self.eval(expr.right)
            op = expr.op
            # ``a``/``b`` are unsigned bit patterns here. Pattern ops
            # (+, -, *, bitwise, <<) are congruent modulo 2**width, so they
            # run on the raw patterns; ops whose *result* depends on the
            # mathematical value (division, modulo, comparisons, arithmetic
            # shift) must first recover signed operands when the expression
            # was synthesized signed ($signed in the emitted Verilog) —
            # otherwise e.g. (-13)/3 would compute on the pattern
            # 0xFFFFFFF3 and the truncate-toward-zero sign correction
            # could never fire.
            if op == "+":
                return truncate(a + b, expr.width)
            if op == "-":
                return truncate(a - b, expr.width)
            if op == "*":
                return truncate(a * b, expr.width)
            if op in ("/", "%"):
                a, b = _value_operands(a, b, expr)
                if b == 0:
                    raise SimulationError(f"{self.module.name}: divide by zero", code="RPR-X105")
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                r = a - q * b
                return truncate(q if op == "/" else r, expr.width)
            if op == "&":
                return truncate(a & b, expr.width)
            if op == "|":
                return truncate(a | b, expr.width)
            if op == "^":
                return truncate(a ^ b, expr.width)
            if op == "<<":
                return truncate(a << (b % 64), expr.width)
            if op == ">>":
                return truncate(a >> (b % 64), expr.width)
            if op == ">>>":
                a_s = sign_extend(a, expr.left.width)
                return truncate(a_s >> (b % 64), expr.width)
            if op in ("==", "!=", "<", "<=", ">", ">="):
                a, b = _value_operands(a, b, expr)
                table = {
                    "==": a == b, "!=": a != b, "<": a < b,
                    "<=": a <= b, ">": a > b, ">=": a >= b,
                }
                return int(table[op])
            if op == "&&":
                return int(bool(a) and bool(b))
            if op == "||":
                return int(bool(a) or bool(b))
            if op == "concat":
                return truncate(
                    (a << expr.right.width) | b, expr.width
                )
            raise SimulationError(f"unknown binop {op}", code="RPR-X106")
        if isinstance(expr, R.CondExpr):
            return truncate(
                self.eval(expr.iftrue) if self.eval(expr.cond) else
                self.eval(expr.iffalse),
                expr.width,
            )
        if isinstance(expr, R.SliceExpr):
            v = self.eval(expr.operand)
            return (v >> expr.lsb) & ((1 << (expr.msb - expr.lsb + 1)) - 1)
        if isinstance(expr, R.MemRead):
            if expr.memory == "$ext_hdl":
                return truncate(self.ext_hdl(self.eval(expr.index)), expr.width)
            mem = self.memories[expr.memory]
            return mem[self.eval(expr.index) % len(mem)]
        raise SimulationError(f"unknown expr {expr!r}", code="RPR-X107")

    def _exec(self, stmt: R.Stmt, deferred: list) -> None:
        if isinstance(stmt, R.BlockingAssign):
            self.regs[stmt.target.name] = truncate(
                self.eval(stmt.expr), stmt.target.width
            )
        elif isinstance(stmt, R.RegAssign):
            deferred.append(
                (stmt.target.name, stmt.target.width, self.eval(stmt.expr))
            )
        elif isinstance(stmt, R.MemWrite):
            mem = self.memories[stmt.memory]
            mem[self.eval(stmt.index) % len(mem)] = self.eval(stmt.value)
        elif isinstance(stmt, R.If):
            branch = stmt.then if self.eval(stmt.cond) else stmt.otherwise
            for s in branch:
                self._exec(s, deferred)
        else:
            raise SimulationError(f"unknown stmt {stmt!r}", code="RPR-X108")

    # ---- clocking --------------------------------------------------------------

    def tick(self) -> str:
        if self.done:
            return "done"
        state = self.regs["state"]
        if state == self.module.meta.get("done_state"):
            self.done = True
            return "done"
        self.cycles += 1
        if self.injector is not None:
            self.injector.tick()
        sc = self._state_by_index.get(state)
        if sc is None:
            raise SimulationError(f"{self.module.name}: no state {state}", code="RPR-X109")
        if sc.stall is not None and self.eval(sc.stall):
            self.stalled += 1
            return "stalled"
        deferred: list = []
        for stmt in sc.body:
            self._exec(stmt, deferred)
        next_state = self.eval(sc.next_state) if sc.next_state is not None \
            else state
        # interface strobes evaluate against the post-datapath values but
        # the *pre-transition* state
        for sig, expr in self.module.assigns:
            value = self.eval(expr)
            self._interface_strobe(sig.name, value)
        for name, width, value in deferred:
            self.regs[name] = truncate(value, width)
        self.regs["state"] = next_state
        return "active"

    def _interface_strobe(self, name: str, value: int) -> None:
        for stream, ch in self._readers.items():
            if name == f"{stream}_re" and value and ch.can_pop():
                ch.pop()
                return
        for stream, ch in self._writers.items():
            if name == f"{stream}_we" and value:
                ch.push(truncate(self.regs[f"{stream}_data_r"], ch.width))
                return
            if name == f"{stream}_close" and value:
                ch.close()
                return
        if name.startswith("tap_") and name.endswith("_valid") and value:
            channel = name[len("tap_"):-len("_valid")]
            self.taps.setdefault(channel, []).append(
                self.regs.get(f"tap_{channel}_r", 0)
            )

    def run(self, max_cycles: int = 1_000_000) -> RtlRunResult:
        for _ in range(max_cycles):
            if self.tick() == "done":
                break
        return RtlRunResult(
            cycles=self.cycles,
            done=self.done,
            stalled_cycles=self.stalled,
            taps=self.taps,
        )
