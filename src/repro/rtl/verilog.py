"""Verilog-2001 emission for generated RTL modules.

The output is Impulse-C-flavoured FSMD Verilog: one clocked process with a
state machine, blocking-assignment datapath chains inside states,
flow-through memories, and ready/valid stream endpoints. Pipelined loop
regions are emitted as stage-valid-guarded blocks.

The emitted text is meant to be read (and fed to a synthesis tool); the
bit-exact executable semantics of the same RTL live in
:mod:`repro.rtl.sim`.
"""

from __future__ import annotations

from repro.rtl import core as R


def _sig_decl(sig: R.Signal) -> str:
    if sig.width == 1:
        return sig.name
    return f"[{sig.width - 1}:0] {sig.name}"


def emit_expr(expr: R.Expr) -> str:
    if isinstance(expr, R.Ref):
        return expr.signal.name
    if isinstance(expr, R.Lit):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, R.UnExpr):
        inner = emit_expr(expr.operand)
        if expr.op == "zext":
            pad = expr.width - expr.operand.width
            return f"{{{{{pad}{{1'b0}}}}, {inner}}}"
        if expr.op == "sext":
            pad = expr.width - expr.operand.width
            msb = expr.operand.width - 1
            return f"{{{{{pad}{{{inner}[{msb}]}}}}, {inner}}}"
        return f"({expr.op}{inner})"
    if isinstance(expr, R.BinExpr):
        a, b = emit_expr(expr.left), emit_expr(expr.right)
        if expr.op == "concat":
            return f"{{{a}, {b}}}"
        if expr.signed_cmp:
            return f"($signed({a}) {expr.op} $signed({b}))"
        return f"({a} {expr.op} {b})"
    if isinstance(expr, R.CondExpr):
        return (f"({emit_expr(expr.cond)} ? {emit_expr(expr.iftrue)}"
                f" : {emit_expr(expr.iffalse)})")
    if isinstance(expr, R.SliceExpr):
        inner = emit_expr(expr.operand)
        if expr.msb == expr.lsb:
            return f"{inner}[{expr.msb}]"
        return f"{inner}[{expr.msb}:{expr.lsb}]"
    if isinstance(expr, R.MemRead):
        if expr.memory == "$ext_hdl":
            return f"ext_hdl({emit_expr(expr.index)})"
        return f"{expr.memory}[{emit_expr(expr.index)}]"
    raise TypeError(f"unknown expr {expr!r}")


def _emit_stmt(stmt: R.Stmt, indent: str, out: list[str]) -> None:
    if isinstance(stmt, R.BlockingAssign):
        out.append(f"{indent}{stmt.target.name} = {emit_expr(stmt.expr)};")
    elif isinstance(stmt, R.RegAssign):
        out.append(f"{indent}{stmt.target.name} <= {emit_expr(stmt.expr)};")
    elif isinstance(stmt, R.MemWrite):
        out.append(
            f"{indent}{stmt.memory}[{emit_expr(stmt.index)}] = "
            f"{emit_expr(stmt.value)};"
        )
    elif isinstance(stmt, R.If):
        out.append(f"{indent}if ({emit_expr(stmt.cond)}) begin")
        for s in stmt.then:
            _emit_stmt(s, indent + "  ", out)
        if stmt.otherwise:
            out.append(f"{indent}end else begin")
            for s in stmt.otherwise:
                _emit_stmt(s, indent + "  ", out)
        out.append(f"{indent}end")
    else:
        raise TypeError(f"unknown stmt {stmt!r}")


def emit_module(module: R.Module) -> str:
    """Emit one module as Verilog-2001 text."""
    out: list[str] = []
    port_names = ", ".join(p.signal.name for p in module.ports)
    out.append(f"module {module.name} ({port_names});")
    for p in module.ports:
        out.append(f"  {p.direction.value} {_sig_decl(p.signal)};")
    out.append("")
    out.append(f"  reg [{module.state_width - 1}:0] state;")
    port_set = {p.signal.name for p in module.ports}
    for sig in module.regs:
        if sig.name not in port_set:
            out.append(f"  reg {_sig_decl(sig)};")
    for mem in module.memories:
        out.append(
            f"  reg [{mem.width - 1}:0] {mem.name} [0:{mem.depth - 1}];"
        )
    out.append("")
    if any(mem.init for mem in module.memories):
        out.append("  integer init_i;")
        out.append("  initial begin")
        for mem in module.memories:
            if mem.init:
                for i, v in enumerate(mem.init):
                    out.append(f"    {mem.name}[{i}] = {v};")
        out.append("  end")
        out.append("")

    for sig, expr in module.assigns:
        decl = "" if sig.name in port_set else f"  wire {_sig_decl(sig)};\n"
        if decl:
            out.append(decl.rstrip())
        out.append(f"  assign {sig.name} = {emit_expr(expr)};")
    out.append("")

    out.append("  always @(posedge clk) begin")
    out.append("    if (rst) begin")
    out.append("      state <= 0;")
    out.append("    end else begin")
    out.append("      case (state)")
    for sc in module.states:
        out.append(f"        {sc.index}: begin // {sc.label}")
        body: list[str] = []
        for stmt in sc.body:
            _emit_stmt(stmt, "            ", body)
        if sc.stall is not None:
            out.append(f"          if (!({emit_expr(sc.stall)})) begin")
            out.extend(body)
            if sc.next_state is not None:
                out.append(
                    f"            state <= {emit_expr(sc.next_state)};"
                )
            out.append("          end")
        else:
            out.extend(body)
            if sc.next_state is not None:
                out.append(f"          state <= {emit_expr(sc.next_state)};")
        out.append("        end")
    done = module.meta.get("done_state")
    if done is not None:
        out.append(f"        {done}: begin // done")
        out.append("          state <= state;")
        out.append("        end")
    out.append("      endcase")
    out.append("    end")
    out.append("  end")

    # pipelined regions: stage-registered datapath with valid bits
    for header, info in module.meta.get("pipelines", {}).items():
        latency = info["latency"]
        ii = info["ii"]
        stages = info.get("stages", [])
        out.append("")
        out.append(
            f"  // pipelined loop {header}: II={ii}, depth={latency} stages"
        )
        out.append(f"  reg [{max(latency - 1, 0)}:0] {header}_valid;")
        ii_bits = max(1, (ii - 1).bit_length())
        out.append(f"  reg [{ii_bits - 1}:0] {header}_ii;")
        out.append(
            f"  wire {header}_go = ({header}_ii == 0); "
            f"// initiation every {ii} cycle(s); stall gating in the wrapper"
        )
        out.append("  always @(posedge clk) begin")
        out.append("    if (rst) begin")
        out.append(f"      {header}_valid <= 0;")
        out.append(f"      {header}_ii <= 0;")
        out.append("    end else if (state == "
                   f"{module.state_width}'d{info['state']}) begin")
        out.append(
            f"      {header}_ii <= ({header}_ii == {ii - 1}) ? 0 : "
            f"{header}_ii + 1;"
        )
        if latency > 1:
            out.append(
                f"      {header}_valid <= "
                f"{{{header}_valid[{latency - 2}:0], {header}_go}};"
            )
        else:
            out.append(f"      {header}_valid <= {header}_go;")
        for stage_index, stmts in enumerate(stages):
            guard = (f"{header}_go" if stage_index == 0
                     else f"{header}_valid[{stage_index - 1}]")
            out.append(f"      if ({guard}) begin // stage {stage_index}")
            body: list[str] = []
            for stmt in stmts:
                _emit_stmt(stmt, "        ", body)
            out.extend(body)
            out.append("      end")
        out.append("    end")
        out.append("  end")
    out.append("endmodule")
    return "\n".join(out) + "\n"


def emit_image(image) -> dict[str, str]:
    """Verilog for every compiled process of a hardware image."""
    return {name: cp.verilog() for name, cp in image.compiled.items()}
