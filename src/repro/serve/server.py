"""The ``repro serve`` daemon: synthesis as a long-running local service.

One process owns one warm :class:`~repro.lab.cache.SynthesisCache` handle
(thread-safe), one in-process codegen memo, and one thread pool; clients
submit jobs over localhost TCP (:mod:`repro.serve.protocol`) and get
streamed events back. The interesting machinery lives in two policies the
server composes per request:

* :class:`~repro.serve.coalesce.Coalescer` — identical in-flight requests
  share one execution (leader runs, followers wait);
* :class:`~repro.serve.admission.AdmissionController` — bounded global
  and per-client budgets, rejected loudly rather than queued silently.

The submit path, end to end::

    parse -> fingerprint -> acquire_client          (every request)
          -> coalescer.join(can_lead=acquire_global)
          -> leader: pool.submit(run_job); complete the flight
             follower: flight.wait()
          -> stream "accepted" then terminal "result"

Shutdown is drain-first: SIGTERM (via :meth:`ReproServer.request_shutdown`,
which is signal-safe) flips admission into draining, closes the listener,
lets in-flight work finish up to ``drain_timeout`` seconds, aborts any
still-open flight with a transient RPR-V004 failure (so every waiting
follower receives a terminal event), then tears the pool down and reports
whether the drain was clean.

Two fabric-facing layers ride on top (see :mod:`repro.serve.fabric`):

* every accepted job is logged to a crash-recoverable **write-ahead
  journal** (:mod:`repro.serve.journal`) before execution, so a SIGKILL
  between acceptance and completion surfaces as an *orphaned job* in the
  restarted daemon's ``/stats`` instead of vanishing;
* with ``--peers`` configured, a :class:`~repro.serve.peers.PeerRegistry`
  plus health checker tracks the other daemons, the ``lookup`` verb
  answers their coalescing hints, and a would-be leader first asks the
  fabric whether a peer is already flying the same fingerprint — if so
  it relays the submit and follows remotely rather than duplicating the
  computation.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field

from repro.diagnostics.bridge import diagnostics_from_exception
from repro.diagnostics.core import Diagnostic
from repro.errors import ReproError, ServeError
from repro.lab.cache import SynthesisCache
from repro.lab.chaos import active_chaos
from repro.lab.executor import ExecStats, PointOutcome
from repro.lab.retry import is_transient
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer
from repro.serve.jobs import JobContext, job_fingerprint, parse_job, run_job
from repro.serve.journal import JobJournal
from repro.serve.peers import HealthChecker, PeerRegistry
from repro.simc.codecache import memo_stats

__all__ = ["JobResult", "ReproServer", "ServeConfig"]

#: diagnostic code a timed-out job carries — deliberately the executor's
#: hang code, so :func:`repro.lab.retry.is_transient` classifies daemon
#: timeouts exactly like sweep-fabric timeouts
TIMEOUT_CODE = "RPR-E002"


@dataclass
class ServeConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = kernel-assigned; the bound port is in .address
    max_inflight: int = 4
    queue_depth: int = 16
    per_client: int = 16
    #: inner parallelism handed to sweep/campaign/difftest drivers
    inner_jobs: int = 1
    cache_root: str | None = None
    store_root: str = "serve-runs"
    #: default per-job timeout (seconds); a request's own timeout wins
    job_timeout: float | None = None
    drain_timeout: float = 30.0
    #: stable daemon name — keys the write-ahead job journal across
    #: restarts; defaults to host-port once the listener is bound
    name: str = ""
    #: peer daemon addresses ("host:port") forming the serve fabric;
    #: enables the health checker and cross-node coalescing hints
    peers: tuple[str, ...] = ()
    #: seconds between peer health sweeps
    health_interval: float = 1.0


@dataclass
class JobResult:
    """What one executed job produced, in terminal-event shape."""

    status: str  # ok | failed | timeout
    record: dict | None = None
    diagnostics: list = field(default_factory=list)
    transient: bool = False
    elapsed_s: float = 0.0


def _timeout_result(fingerprint: str, timeout: float,
                    elapsed: float) -> JobResult:
    diag = Diagnostic(
        code=TIMEOUT_CODE,
        severity="error",
        message=f"job {fingerprint} exceeded its {timeout:.1f}s timeout",
        hint="raise --timeout, or let the client's retry policy resubmit; "
             "the daemon keeps running the job and later identical "
             "requests may find its result cached",
    ).to_dict()
    return JobResult(status="timeout", diagnostics=[diag], transient=True,
                     elapsed_s=elapsed)


class ReproServer:
    """The daemon. Construct, then :meth:`serve_forever`.

    The listener socket binds in the constructor so ``.address`` is known
    (and printable / writable to an address file) before the accept loop
    starts — tests and the CLI rely on that ordering.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.cache = SynthesisCache(cfg.cache_root)
        self.coalescer = Coalescer()
        self.admission = AdmissionController(
            max_inflight=cfg.max_inflight, queue_depth=cfg.queue_depth,
            per_client=cfg.per_client)
        self.context = JobContext(
            cache=self.cache, cache_root=cfg.cache_root,
            store_root=cfg.store_root, jobs=cfg.inner_jobs)
        self.pool = ThreadPoolExecutor(
            max_workers=cfg.max_inflight,
            thread_name_prefix="repro-serve-worker")
        #: fabric stats folded out of every driver-run manifest
        self.exec_stats = ExecStats()
        self._counters = {
            "submitted": 0, "completed": 0, "failed": 0, "timeout": 0,
            "rejected": 0, "coalesced": 0,
        }
        #: incremental-synthesis work done by this daemon's synth jobs:
        #: how many process rebuilds cold submissions actually cost, and
        #: how many were warm partial rebuilds (the edited-app fast path)
        self._incremental = {
            "synth_jobs": 0, "resyntheses": 0, "proc_hits": 0,
            "proc_misses": 0, "partial_rebuilds": 0,
        }
        self._by_kind: dict[str, int] = {}
        self._active_jobs = 0
        self._job_seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self._started = time.monotonic()

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((cfg.host, cfg.port))
        self._listener.listen(128)
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]

        #: stable identity for the write-ahead journal (and peer logs)
        self.name = cfg.name or f"{self.address[0]}-{self.address[1]}"
        self.journal = JobJournal(cfg.store_root, self.name)
        #: fabric layer: peer health + cross-node coalescing hints
        self.registry: PeerRegistry | None = None
        self.health: HealthChecker | None = None
        if cfg.peers:
            self.registry = PeerRegistry(cfg.peers)
            self.health = HealthChecker(self.registry,
                                        interval_s=cfg.health_interval)
        self._fabric = {
            "lookups_answered": 0, "peer_lookups": 0,
            "remote_followed": 0, "remote_fallback": 0, "relayed_in": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the accept loop to stop; safe to call from a signal
        handler (only sets an Event)."""
        self._stop.set()

    def serve_forever(self) -> dict:
        """Accept until :meth:`request_shutdown`, then drain; returns the
        shutdown report (``{"drained": bool, ...}``)."""
        if self.health is not None:
            self.health.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us
                t = threading.Thread(target=self._handle_connection,
                                     args=(conn,), daemon=True)
                t.start()
                with self._lock:
                    self._conn_threads.append(t)
                    # prune finished handlers so the list stays bounded
                    self._conn_threads = [
                        th for th in self._conn_threads if th.is_alive()]
        finally:
            report = self._drain()
        return report

    def _drain(self) -> dict:
        """Stop accepting, let in-flight jobs finish, tear down."""
        self.admission.start_drain()
        if self.health is not None:
            self.health.stop()
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline:
            with self._lock:
                active = self._active_jobs
            if active == 0:
                break
            time.sleep(0.05)
        with self._lock:
            abandoned = self._active_jobs
            threads = list(self._conn_threads)
        # last rites: any flight still open (a leader that will never
        # report, or a job the drain deadline abandoned) is resolved with
        # a transient RPR-V004 failure so every waiting follower receives
        # a terminal event instead of hanging on a dead daemon
        aborted = self.coalescer.abort_all(JobResult(
            status="failed",
            diagnostics=diagnostics_from_exception(ServeError(
                "job abandoned by daemon shutdown", code="RPR-V004")),
            transient=True))
        self.pool.shutdown(wait=abandoned == 0, cancel_futures=True)
        for t in threads:
            t.join(timeout=1.0)
        return {
            "drained": abandoned == 0,
            "abandoned_jobs": abandoned,
            "aborted_flights": aborted,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.job_counters(),
        }

    # -- per-connection protocol ----------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(30.0)
            with conn, conn.makefile("rwb") as stream:
                line = stream.readline()
                if not line:
                    return
                try:
                    request = protocol.parse_request(
                        protocol.decode_line(line))
                except ServeError as exc:
                    self._send(stream, protocol.error_event(
                        exc.code, exc.message))
                    return
                conn.settimeout(None)  # submits block on job completion
                try:
                    self._dispatch(stream, request)
                except ReproError as exc:
                    # last-resort: a structured failure anywhere in the
                    # dispatch path becomes an error event, never a dead
                    # handler thread with a traceback
                    self._send(stream, protocol.error_event(
                        exc.code, exc.message))
        except (OSError, ValueError):
            pass  # client went away mid-stream; nothing to clean up

    def _send(self, stream, event: dict) -> None:
        stream.write(protocol.encode(event))
        stream.flush()

    def _dispatch(self, stream, request: dict) -> None:
        op = request["op"]
        if op == "ping":
            self._send(stream, {"schema": protocol.PROTOCOL_VERSION,
                                "event": "pong",
                                "draining": self.admission.draining})
        elif op == "stats":
            self._send(stream, self.stats())
        elif op == "lookup":
            fingerprint = request["fingerprint"]
            inflight, waiters = self.coalescer.flight_info(fingerprint)
            with self._lock:
                self._fabric["lookups_answered"] += 1
            self._send(stream, protocol.lookup_event(
                fingerprint, inflight=inflight, waiters=waiters,
                known=self.journal.known(fingerprint)))
        elif op == "shutdown":
            self._send(stream, {"schema": protocol.PROTOCOL_VERSION,
                                "event": "shutdown"})
            self.request_shutdown()
        else:
            self._submit(stream, request)

    # -- the submit path ------------------------------------------------------

    def _submit(self, stream, request: dict) -> None:
        client = request["client"]
        timeout = request["timeout"] or self.config.job_timeout
        try:
            spec = parse_job(request["job"])
            fingerprint = job_fingerprint(spec)
        except ReproError as exc:
            # fingerprinting builds the app, so a malformed job (bad app
            # params, unparseable C source) is refused here — before it
            # consumes any admission budget or worker time
            self._send(stream, protocol.error_event(exc.code, exc.message))
            return

        if request.get("relay"):
            with self._lock:
                self._fabric["relayed_in"] += 1

        try:
            # a request that can ride an existing flight is a "rider":
            # admitted even during drain (its leader predates the drain)
            self.admission.acquire_client(
                client, rider=self.coalescer.flight_info(fingerprint)[0])
        except ServeError as exc:
            with self._lock:
                self._counters["rejected"] += 1
            self._send(stream, protocol.rejected_event(
                exc.code, exc.message, fingerprint=fingerprint))
            return

        try:
            try:
                flight, is_leader = self.coalescer.join(
                    fingerprint, can_lead=self.admission.acquire_global)
            except ServeError as exc:
                with self._lock:
                    self._counters["rejected"] += 1
                self._send(stream, protocol.rejected_event(
                    exc.code, exc.message, fingerprint=fingerprint))
                return

            with self._lock:
                self._job_seq += 1
                job_id = f"j{self._job_seq}"
                self._counters["submitted"] += 1
                self._by_kind[spec.kind] = self._by_kind.get(spec.kind, 0) + 1
                if not is_leader:
                    self._counters["coalesced"] += 1
            self._send(stream, protocol.accepted_event(
                job_id, spec.kind, fingerprint, coalesced=not is_leader))

            t0 = time.monotonic()
            if is_leader:
                result = self._lead(spec, fingerprint, flight, timeout,
                                    job_id=job_id,
                                    relay=bool(request.get("relay")),
                                    client=client)
            else:
                result = self._follow(fingerprint, flight, timeout, t0)
            with self._lock:
                self._counters[
                    "completed" if result.status == "ok"
                    else result.status if result.status in self._counters
                    else "failed"] += 1
            chaos = active_chaos()
            if chaos is not None:
                if chaos.cut_stream(f"serve-stream:{fingerprint}"):
                    return  # handler exits; client sees a truncated stream
                chaos.delay_reply(f"serve-reply:{fingerprint}")
            self._send(stream, protocol.result_event(
                job_id, spec.kind, result.status, record=result.record,
                diagnostics=result.diagnostics, transient=result.transient,
                coalesced=not is_leader, elapsed_s=result.elapsed_s))
        finally:
            self.admission.release_client(client)

    def _lead(self, spec, fingerprint: str, flight,
              timeout: float | None, job_id: str = "j0",
              relay: bool = False, client: str = "anon") -> JobResult:
        """Run the job (locally or by following a peer's in-flight
        execution), publish its outcome to the flight.

        The accepted record hits the write-ahead journal *before* any
        execution: if the daemon dies past this point, the next epoch
        reports the job as orphaned instead of forgetting it.
        """
        self.journal.accepted(job_id, fingerprint, spec.kind, client)
        result = self._lead_inner(spec, fingerprint, flight, timeout,
                                  relay)
        self.journal.done(job_id, fingerprint, result.status)
        return result

    def _lead_inner(self, spec, fingerprint: str, flight,
                    timeout: float | None, relay: bool) -> JobResult:
        # cross-node coalescing: before spending a local worker, ask the
        # fabric whether a peer is already flying this fingerprint — if
        # so, follow remotely (relay) instead of duplicating the work.
        # The leader keeps its global slot while waiting, exactly as a
        # local execution would.
        if self.registry is not None and not relay:
            result = self._remote_follow(spec, fingerprint, timeout)
            if result is not None:
                self.admission.release_global()
                self.coalescer.complete(flight, result)
                return result

        with self._lock:
            self._active_jobs += 1
        t0 = time.monotonic()
        try:
            future = self.pool.submit(self._execute, spec, fingerprint, t0)
        except RuntimeError as exc:  # pool torn down mid-submit
            with self._lock:
                self._active_jobs -= 1
            self.admission.release_global()
            result = JobResult(
                status="failed",
                diagnostics=diagnostics_from_exception(ServeError(
                    f"worker pool unavailable: {exc}", code="RPR-V004")),
                transient=True, elapsed_s=0.0)
            self.coalescer.complete(flight, result)
            return result
        try:
            result = future.result(timeout)
        except CancelledError:  # drain cancelled a queued job
            with self._lock:
                self._active_jobs -= 1
            self.admission.release_global()
            result = JobResult(
                status="failed",
                diagnostics=diagnostics_from_exception(ServeError(
                    "job cancelled by daemon shutdown", code="RPR-V004")),
                transient=True, elapsed_s=round(time.monotonic() - t0, 4))
            self.coalescer.complete(flight, result)
            return result
        except FuturesTimeout:
            # the worker keeps running (its global slot frees when
            # _execute actually returns); the flight resolves now so
            # followers time out in lockstep rather than hanging
            result = _timeout_result(fingerprint, timeout,
                                     time.monotonic() - t0)
            self.coalescer.complete(flight, result)
            return result
        self.coalescer.complete(flight, result)
        return result

    def _remote_follow(self, spec, fingerprint: str,
                       timeout: float | None) -> JobResult | None:
        """Ask healthy peers whether ``fingerprint`` is in flight there;
        if one says yes, relay the submit and ride its execution. None
        means "no peer hint (or the follow failed) — run it locally"."""
        from repro.serve.client import ServeClient

        found_hint = False
        for peer in self.registry.routable():
            with self._lock:
                self._fabric["peer_lookups"] += 1
            peer_client = ServeClient(peer, client_id=f"peer:{self.name}",
                                      connect_attempts=1)
            try:
                hint = peer_client.lookup(fingerprint, timeout=2.0)
            except (ReproError, OSError) as exc:
                self.registry.record_failure(peer, exc)
                continue
            self.registry.record_success(peer)
            if not hint.get("inflight"):
                continue
            found_hint = True
            try:
                reply = peer_client.submit(spec.kind, dict(spec.params),
                                           timeout=timeout, relay=True)
            except (ReproError, OSError) as exc:
                self.registry.record_failure(peer, exc)
                break  # the flight we meant to ride died; run locally
            terminal = reply.terminal
            if terminal.get("event") != "result":
                break  # rejected/error over there; run locally
            with self._lock:
                self._fabric["remote_followed"] += 1
            return JobResult(
                status=terminal.get("status", "failed"),
                record=terminal.get("record"),
                diagnostics=list(terminal.get("diagnostics", ())),
                transient=bool(terminal.get("transient")),
                elapsed_s=float(terminal.get("elapsed_s", 0.0)))
        if found_hint:
            with self._lock:
                self._fabric["remote_fallback"] += 1
        return None

    def _follow(self, fingerprint: str, flight, timeout: float | None,
                t0: float) -> JobResult:
        """Wait out the leader; the result is shared verbatim except for
        the follower's own elapsed time."""
        try:
            result = flight.wait(timeout)
        except TimeoutError:
            return _timeout_result(fingerprint, timeout or 0.0,
                                   time.monotonic() - t0)
        return JobResult(
            status=result.status, record=result.record,
            diagnostics=result.diagnostics, transient=result.transient,
            elapsed_s=round(time.monotonic() - t0, 4))

    def _execute(self, spec, fingerprint: str, t0: float) -> JobResult:
        """Worker-thread body: run the job, classify any failure."""
        try:
            chaos = active_chaos()
            if chaos is not None:
                # the hardest fault in the chaos menu: SIGKILL the whole
                # daemon as execution starts (subprocess daemons only)
                chaos.injure_daemon(f"serve-exec:{fingerprint}")
            record = run_job(spec, self.context)
        except BaseException as exc:  # noqa: BLE001 - classified below
            diags = diagnostics_from_exception(exc)
            shim = PointOutcome(index=0, status="failed",
                                diagnostics=diags)
            return JobResult(status="failed", diagnostics=diags,
                             transient=is_transient(shim),
                             elapsed_s=round(time.monotonic() - t0, 4))
        finally:
            with self._lock:
                self._active_jobs -= 1
            self.admission.release_global()
        self._merge_exec_stats(record)
        if spec.kind == "synth" and isinstance(record, dict):
            with self._lock:
                inc = self._incremental
                inc["synth_jobs"] += 1
                inc["resyntheses"] += record.get("resyntheses", 0)
                inc["proc_hits"] += record.get("proc_hits", 0)
                inc["proc_misses"] += record.get("proc_misses", 0)
                if record.get("partial_rebuild"):
                    inc["partial_rebuilds"] += 1
        return JobResult(status="ok", record=record,
                         elapsed_s=round(time.monotonic() - t0, 4))

    def _merge_exec_stats(self, record: dict) -> None:
        """Fold a driver result's manifest executor block into the
        daemon-wide aggregate (synth records have none; that's fine)."""
        manifest = record.get("manifest") if isinstance(record, dict) else None
        if isinstance(manifest, dict):
            block = manifest.get("executor")
            if isinstance(block, dict):
                with self._lock:
                    self.exec_stats.merge(block)

    # -- observability --------------------------------------------------------

    def job_counters(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            counters["active"] = self._active_jobs
            counters["by_kind"] = dict(self._by_kind)
        return counters

    def incremental_counters(self) -> dict:
        with self._lock:
            return dict(self._incremental)

    def stats(self) -> dict:
        """The ``/stats`` verb's payload — every layer's counters."""
        cfg = self.config
        with self._lock:
            exec_block = self.exec_stats.as_dict()
            fabric_block = dict(self._fabric)
        return {
            "schema": protocol.PROTOCOL_VERSION,
            "event": "stats",
            "address": list(self.address),
            "name": self.name,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self.admission.draining,
            "jobs": self.job_counters(),
            "coalesce": self.coalescer.snapshot(),
            "admission": self.admission.snapshot(),
            "journal": self.journal.snapshot(),
            "fabric": fabric_block,
            "peers": (self.registry.snapshot()
                      if self.registry is not None else None),
            "cache": self.cache.stats.as_dict(),
            "incremental": self.incremental_counters(),
            "executor": exec_block,
            "codecache": memo_stats.as_dict(),
            "config": {
                "max_inflight": cfg.max_inflight,
                "queue_depth": cfg.queue_depth,
                "per_client": cfg.per_client,
                "inner_jobs": cfg.inner_jobs,
                "cache_root": cfg.cache_root,
                "store_root": cfg.store_root,
                "job_timeout": cfg.job_timeout,
                "drain_timeout": cfg.drain_timeout,
                "name": self.name,
                "peers": list(cfg.peers),
            },
        }
