"""Wire protocol for the repro synthesis service.

The transport is deliberately primitive: newline-delimited JSON over a
local TCP socket. A client connects, writes exactly one request object on
one line, and reads a stream of event objects (one per line) until a
terminal event arrives; the server then closes the connection. Framing a
request per connection keeps the daemon's concurrency model trivial (one
handler thread per request) and makes every client — shell scripts with
``nc``, the bundled :mod:`repro.serve.client`, tests — equally easy.

Requests (``op`` field)::

    {"op": "submit", "job": {"kind": "synth", "params": {...}},
     "client": "bench-3", "timeout": 120.0, "relay": false}
    {"op": "lookup", "fingerprint": "..."}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

``relay`` marks a submit a *peer daemon* forwarded on behalf of its own
client (cross-node coalescing); a relayed job is never forwarded again,
so hints cannot loop between peers. ``lookup`` is the fingerprint-keyed
peer-hint verb: it answers whether this daemon has the job in flight
right now (``inflight`` + follower count) or already completed/cached
(``known``) — a peer daemon consults it before leading a duplicate
flight.

Events (``event`` field)::

    {"event": "accepted", "job_id": "j12", "fingerprint": "...",
     "coalesced": true}                      # job admitted; result follows
    {"event": "result", "job_id": "j12", "status": "ok",
     "record": {...}, ...}                   # terminal: the job's payload
    {"event": "rejected", "code": "RPR-V002", ...}   # admission refused it
    {"event": "error", "code": "RPR-V001", ...}      # malformed request
    {"event": "stats", ...} / {"event": "pong", ...} / {"event": "shutdown"}

Every event carries ``schema`` so clients can detect version skew. The
``record`` payload of a result event uses the *same* summary schema the
CLI's ``--json`` flags print (:func:`sweep_summary`,
:func:`campaign_summary`, :func:`difftest_summary`, and the sweep point
record for ``synth`` jobs), so daemon output and CLI output stay
byte-compatible.
"""

from __future__ import annotations

import json

from repro.diagnostics.render import diagnostic_records
from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_KINDS",
    "OPS",
    "TERMINAL_EVENTS",
    "VOLATILE_RECORD_KEYS",
    "accepted_event",
    "campaign_summary",
    "canonical_record",
    "decode_line",
    "difftest_summary",
    "encode",
    "error_event",
    "lookup_event",
    "lookup_request",
    "parse_request",
    "rejected_event",
    "result_event",
    "submit_request",
    "sweep_summary",
]

PROTOCOL_VERSION = 1

#: job kinds the daemon executes; ``sleep`` exists for load probing and
#: admission/timeout tests (it holds a worker slot and does nothing else)
JOB_KINDS = ("synth", "sweep", "campaign", "difftest", "sleep")

OPS = ("submit", "lookup", "stats", "ping", "shutdown")

#: events that end a request's stream (the server closes after one)
TERMINAL_EVENTS = ("result", "rejected", "error", "stats", "pong",
                   "shutdown", "lookup")

#: record fields that legitimately differ between a fresh synthesis, a
#: cache hit and a coalesced reply for the *same* design point — strip
#: them before comparing payloads for identity
VOLATILE_RECORD_KEYS = ("elapsed_s", "cache_hit", "cache_stats", "attempts",
                        "resyntheses", "proc_hits", "proc_misses",
                        "partial_rebuild")


# ---- framing ----------------------------------------------------------------


def encode(msg: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(msg, sort_keys=True, default=str) + "\n").encode()


def decode_line(line: str | bytes) -> dict:
    """Parse one received line; raises :class:`ServeError` on garbage."""
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ServeError(f"undecodable protocol line: {exc}",
                             code="RPR-V001") from None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed protocol line (not JSON): {exc}",
                         code="RPR-V001") from None
    if not isinstance(msg, dict):
        raise ServeError(
            f"protocol message must be a JSON object, got "
            f"{type(msg).__name__}", code="RPR-V001")
    return msg


# ---- requests ---------------------------------------------------------------


def submit_request(kind: str, params: dict, client: str | None = None,
                   timeout: float | None = None,
                   relay: bool = False) -> dict:
    """Build a submit request (the client module's one constructor)."""
    req = {"op": "submit", "job": {"kind": kind, "params": dict(params)}}
    if client is not None:
        req["client"] = client
    if timeout is not None:
        req["timeout"] = float(timeout)
    if relay:
        req["relay"] = True
    return req


def lookup_request(fingerprint: str, client: str | None = None) -> dict:
    """Build a fingerprint-keyed peer-hint lookup."""
    req = {"op": "lookup", "fingerprint": str(fingerprint)}
    if client is not None:
        req["client"] = client
    return req


def parse_request(msg: dict) -> dict:
    """Validate one request object; raises :class:`ServeError` RPR-V001.

    Returns the message with defaults normalized (``client`` always set,
    ``timeout`` a float or None, submit jobs shaped ``{kind, params}``).
    """
    op = msg.get("op")
    if op not in OPS:
        raise ServeError(
            f"unknown op {op!r}; have {', '.join(OPS)}", code="RPR-V001")
    out = {"op": op, "client": str(msg.get("client") or "anon"),
           "relay": bool(msg.get("relay"))}
    timeout = msg.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ServeError(f"timeout must be a number, got {timeout!r}",
                             code="RPR-V001") from None
        if timeout <= 0:
            raise ServeError(f"timeout must be positive, got {timeout}",
                             code="RPR-V001")
    out["timeout"] = timeout
    if op == "submit":
        job = msg.get("job")
        if not isinstance(job, dict):
            raise ServeError("submit needs a job object", code="RPR-V001")
        kind = job.get("kind")
        if kind not in JOB_KINDS:
            raise ServeError(
                f"unknown job kind {kind!r}; have {', '.join(JOB_KINDS)}",
                code="RPR-V001")
        params = job.get("params", {})
        if not isinstance(params, dict):
            raise ServeError("job params must be an object",
                             code="RPR-V001")
        out["job"] = {"kind": kind, "params": params}
    if op == "lookup":
        fingerprint = msg.get("fingerprint")
        if not fingerprint or not isinstance(fingerprint, str):
            raise ServeError("lookup needs a fingerprint string",
                             code="RPR-V001")
        out["fingerprint"] = fingerprint
    return out


# ---- events -----------------------------------------------------------------


def _event(name: str, **fields) -> dict:
    ev = {"schema": PROTOCOL_VERSION, "event": name}
    ev.update(fields)
    return ev


def accepted_event(job_id: str, kind: str, fingerprint: str,
                   coalesced: bool) -> dict:
    return _event("accepted", job_id=job_id, kind=kind,
                  fingerprint=fingerprint, coalesced=bool(coalesced))


def result_event(
    job_id: str,
    kind: str,
    status: str,
    record: dict | None = None,
    diagnostics: list | None = None,
    transient: bool | None = None,
    coalesced: bool = False,
    elapsed_s: float = 0.0,
) -> dict:
    """The terminal event of a submitted job (ok, failed or timeout)."""
    ev = _event("result", job_id=job_id, kind=kind, status=status,
                coalesced=bool(coalesced),
                elapsed_s=round(float(elapsed_s), 4))
    if status == "ok":
        ev["record"] = record
    else:
        ev["diagnostics"] = diagnostic_records(diagnostics or [])
        ev["transient"] = bool(transient)
    return ev


def lookup_event(fingerprint: str, inflight: bool, waiters: int,
                 known: bool) -> dict:
    """The peer-hint answer: is ``fingerprint`` in flight here right now
    (``inflight``, with the follower count), or already completed /
    cached on this node (``known``)?"""
    return _event("lookup", fingerprint=fingerprint,
                  inflight=bool(inflight), waiters=int(waiters),
                  known=bool(known))


def rejected_event(code: str, message: str, **extra) -> dict:
    return _event("rejected", code=code, message=message, **extra)


def error_event(code: str, message: str, **extra) -> dict:
    return _event("error", code=code, message=message, **extra)


# ---- shared result schemas --------------------------------------------------
#
# These builders are the single source of truth for "what a finished job
# looks like as JSON": the daemon embeds them in result events and the CLI
# prints them for `repro sweep --json` / `repro campaign --json`, so the
# two surfaces can never drift apart.


def canonical_record(record: dict) -> dict:
    """A result record with volatile fields stripped (timings, cache
    bookkeeping) — what byte-identity assertions compare."""
    return {k: v for k, v in record.items()
            if k not in VOLATILE_RECORD_KEYS}


def sweep_summary(result) -> dict:
    """One JSON object for a finished :class:`repro.lab.sweep.SweepResult`:
    the run manifest (counters, executor stats, cache stats) plus the
    latest record per point."""
    return {
        "schema": PROTOCOL_VERSION,
        "kind": "sweep",
        "name": result.spec.name,
        "run_id": result.run.run_id,
        "ok": result.ok,
        "points": [p.point_id for p in result.points],
        "manifest": result.manifest,
        "records": [result.records[pid]
                    for pid in sorted(result.records)],
    }


def campaign_summary(result) -> dict:
    """One JSON object for a finished
    :class:`repro.faults.campaign.CampaignResult`: the coverage matrix as
    records, per-level classification counts and detection rates."""
    from repro.faults.campaign import record_from_outcome

    return {
        "schema": PROTOCOL_VERSION,
        "kind": "campaign",
        "app": result.app,
        "seed": result.seed,
        "run_id": result.run_id,
        "levels": list(result.levels),
        "ok": not result.harness_errors,
        "scenarios": [{"name": sc.name, "description": sc.description}
                      for sc in result.scenarios],
        "summary": {lv: result.summary(lv) for lv in result.levels},
        "detection_rate": {lv: result.detection_rate(lv)
                           for lv in result.levels},
        "outcomes": [record_from_outcome(oc) for oc in result.outcomes],
    }


def difftest_summary(result) -> dict:
    """One JSON object for a finished
    :class:`repro.difftest.runner.DifftestResult`."""
    return {
        "schema": PROTOCOL_VERSION,
        "kind": "difftest",
        "name": result.spec.name,
        "run_id": result.run.run_id,
        "ok": result.ok,
        "seeds": list(result.spec.seeds),
        "manifest": result.manifest,
        "records": [result.records[pid]
                    for pid in sorted(result.records)],
        "seed_files": list(result.seed_files),
    }
