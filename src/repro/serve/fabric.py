"""The fabric router: one campaign, N daemons, any one allowed to die.

This is the client-side half of the multi-node serve fabric. Given a set
of peer daemons (all sharing one ``--store`` root on a common
filesystem), the router:

1. **Shards** the job space with :meth:`repro.lab.shard.ShardSpec.partition`
   — the same deterministic point-fingerprint partitioning CI matrix legs
   use, so shard membership depends only on content, never on which peer
   runs it;
2. **Submits** one shard per routable peer, concurrently, each as an
   ordinary submit with a ``shard: "K/N"`` param (the daemon's drivers
   journal into ``<base>.sKofN`` run directories);
3. **Re-routes** on failure: a transient outcome (dead peer RPR-V006,
   truncated stream RPR-V007, capacity/drain rejection RPR-V002/V004,
   timeout) moves the *same* shard spec to the next surviving peer in
   deterministic cyclic order, after a deterministic
   :class:`repro.lab.retry.RetryPolicy` backoff. Nothing is recomputed:
   the failed peer already journaled its completed points into the
   shard's run directory, and the survivor's driver resumes past them
   (torn tails from a SIGKILL heal on first append). A *permanent*
   failure (the job itself is broken) fails the shard immediately —
   re-routing deterministic failures would just fail N times;
4. **Merges** the per-shard run directories with
   :func:`repro.lab.shard.merge_runs` into the canonical run, which is
   byte-identical to a clean unsharded (or 1-node) run of the same spec —
   the invariant the chaos suite asserts across daemon SIGKILLs.

Retry/backoff and transience classification come from
:mod:`repro.lab.retry` — the fabric adds routing on top, never a second
retry implementation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.lab.retry import (
    TRANSIENT_CODES,
    RetryPolicy,
    is_transient_exception,
)
from repro.lab.shard import ShardSpec, base_run_id, merge_runs
from repro.serve.peers import PeerRegistry

__all__ = ["FabricResult", "FabricRouter", "ShardOutcome"]

#: default ceiling on re-routes per shard (beyond the first attempt)
MAX_REROUTES = 4


def _default_client_factory(address: str):
    from repro.serve.client import ServeClient

    return ServeClient(address, client_id="fabric-router")


@dataclass
class ShardOutcome:
    """One shard's journey through the fabric."""

    shard: str                       # "K/N"
    status: str = "pending"          # ok | failed | timeout | rejected | lost
    peer: str | None = None          # who finally produced the outcome
    record: dict | None = None
    diagnostics: list = field(default_factory=list)
    #: every (peer, what-happened) hop, in order — the failover audit trail
    attempts: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rerouted(self) -> bool:
        return len(self.attempts) > 1

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "status": self.status,
            "peer": self.peer,
            "attempts": list(self.attempts),
            "rerouted": self.rerouted,
        }


@dataclass
class FabricResult:
    """A sharded, failover-capable run: per-shard outcomes plus the
    canonical merge."""

    kind: str
    shards: list[ShardOutcome]
    base_run_id: str | None = None
    merge: object | None = None      # MergeResult when every shard landed
    peers: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.shards) and all(s.ok for s in self.shards)

    @property
    def rerouted_shards(self) -> int:
        return sum(1 for s in self.shards if s.rerouted)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ok": self.ok,
            "base_run_id": self.base_run_id,
            "merged_dir": str(self.merge.run.dir) if self.merge else None,
            "merged_records": len(self.merge.records) if self.merge else 0,
            "rerouted_shards": self.rerouted_shards,
            "shards": [s.as_dict() for s in self.shards],
            "peers": self.peers,
            "elapsed_s": round(self.elapsed_s, 3),
        }


class FabricRouter:
    """Routes one sharded job across a :class:`PeerRegistry`.

    ``client_factory(address)`` is injectable for tests; ``retry``
    supplies the *backoff schedule* for re-route attempts (transience
    classification is :func:`repro.lab.retry.is_transient_exception` and
    :data:`TRANSIENT_CODES` — shared with every other layer).
    """

    def __init__(self, registry: PeerRegistry, store_root: str,
                 client_factory=None, retry: RetryPolicy | None = None,
                 max_reroutes: int = MAX_REROUTES,
                 timeout: float | None = None, progress=None) -> None:
        self.registry = registry
        self.store_root = store_root
        self.client_factory = client_factory or _default_client_factory
        self.retry = retry or RetryPolicy(
            max_attempts=max(1, max_reroutes + 1),
            base_delay=0.1, max_delay=5.0, breaker=None)
        self.max_reroutes = max_reroutes
        self.timeout = timeout
        self.progress = progress
        self._lock = threading.Lock()
        self._run_ids: list[str] = []

    def _say(self, msg: str) -> None:
        if self.progress:
            print(f"[fabric] {msg}", file=self.progress, flush=True)

    # -- the run --------------------------------------------------------------

    def run(self, kind: str, params: dict,
            shards: int | None = None) -> FabricResult:
        """Shard ``params`` over the routable peers, submit, re-route,
        merge. ``shards`` defaults to the number of routable peers."""
        t0 = time.monotonic()
        peers = self.registry.routable()
        if not peers:
            raise ServeError(
                "no routable peers in the fabric (all down?)",
                code="RPR-V006")
        total = shards or len(peers)
        specs = ShardSpec.partition(total)
        self._say(f"{kind}: {total} shard(s) over {len(peers)} peer(s) "
                  f"{peers}")
        outcomes = [ShardOutcome(shard=f"{s.index}/{s.total}")
                    for s in specs]
        threads = []
        for i, spec in enumerate(specs):
            # deterministic initial assignment: shard k -> k-th routable
            # peer (wrapping); failover walks the sorted order from there
            home = peers[i % len(peers)]
            t = threading.Thread(
                target=self._run_shard,
                args=(kind, params, spec, home, outcomes[i]),
                name=f"fabric-shard-{spec.label}", daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join()

        result = FabricResult(kind=kind, shards=outcomes,
                              peers=self.registry.snapshot())
        with self._lock:
            run_ids = list(self._run_ids)
        if run_ids:
            result.base_run_id = base_run_id(run_ids[0])
        if result.ok and result.base_run_id:
            result.merge = merge_runs(self.store_root, result.base_run_id,
                                      progress=self.progress or None)
            self._say(f"merged -> {result.merge.run.dir}")
        result.elapsed_s = time.monotonic() - t0
        return result

    def _run_shard(self, kind: str, params: dict, spec: ShardSpec,
                   home: str, out: ShardOutcome) -> None:
        """Drive one shard to a terminal outcome, re-routing across
        surviving peers on transient failures."""
        shard_text = f"{spec.index}/{spec.total}"
        job_params = dict(params)
        job_params["shard"] = shard_text
        peer = home
        for attempt in range(1, self.max_reroutes + 2):
            if peer is None:
                out.status = "lost"
                out.attempts.append(
                    {"peer": None, "outcome": "no-routable-peer"})
                self._say(f"shard {shard_text}: no surviving peer left")
                return
            if attempt > 1:
                # deterministic backoff before hammering the survivor
                time.sleep(self.retry.delay(
                    attempt, f"{spec.label}@{peer}"))
            hop = {"peer": peer, "outcome": "?"}
            out.attempts.append(hop)
            try:
                reply = self.client_factory(peer).submit(
                    kind, job_params, timeout=self.timeout)
            except ServeError as exc:
                self.registry.record_failure(peer, exc)
                hop["outcome"] = f"error:{exc.code}"
                if not is_transient_exception(exc):
                    out.status = "failed"
                    out.peer = peer
                    out.diagnostics = [{"code": exc.code,
                                        "message": exc.message}]
                    return
                self._say(f"shard {shard_text}: {peer} failed "
                          f"({exc.code}); re-routing")
                peer = self.registry.survivor_after(peer)
                continue

            terminal = reply.terminal
            event = terminal.get("event")
            if event == "result" and terminal.get("status") == "ok":
                self.registry.record_success(peer)
                out.status = "ok"
                out.peer = peer
                out.record = terminal.get("record")
                hop["outcome"] = "ok"
                rid = (out.record or {}).get("run_id")
                if rid:
                    with self._lock:
                        self._run_ids.append(rid)
                return

            # a non-ok terminal: decide re-route vs final failure
            code = terminal.get("code")
            status = terminal.get("status", event)
            transient = bool(terminal.get("transient")) or \
                (code in TRANSIENT_CODES) or status == "timeout"
            hop["outcome"] = f"{status}:{code or '-'}"
            if transient:
                # the peer answered, so it is not dead — but it cannot
                # take this work (draining, at capacity, timing out);
                # treat like a soft failure for routing purposes
                self.registry.record_failure(
                    peer, f"{status} ({code or 'transient'})")
                self._say(f"shard {shard_text}: {peer} answered "
                          f"{status}; re-routing")
                peer = self.registry.survivor_after(peer)
                continue
            self.registry.record_success(peer)
            out.status = "rejected" if event == "rejected" else str(status)
            out.peer = peer
            out.diagnostics = list(terminal.get("diagnostics", ()))
            return
        out.status = out.status if out.status != "pending" else "lost"
        self._say(f"shard {shard_text}: re-route budget exhausted")

    # -- observability --------------------------------------------------------

    def status(self) -> dict:
        """Ping every peer once and return the fabric's health view
        (the ``repro fabric status`` payload)."""
        self.registry.sweep()
        return self.registry.snapshot()
