"""Peer registry and health checking for the multi-node serve fabric.

A *fabric* is N independent ``repro serve`` daemons that know each
other's addresses. Nothing here elects a coordinator or replicates
state — every daemon (and every fabric router) keeps its own
:class:`PeerRegistry` and forms its own opinion of who is alive, from
evidence it gathered itself: ping probes and the outcomes of real
requests. That keeps the failure model honest — there is no membership
service to be wrong about a partition.

Health is a three-state machine per peer, driven by *consecutive*
failures so one dropped packet never reroutes a campaign:

``up``       last contact succeeded; fully routable.
``suspect``  1..down_after-1 consecutive failures; still routable (the
             client's bounded reconnect retries absorb blips), but on
             notice.
``down``     ``down_after`` consecutive failures; **not** routable.
             Recovery probing is deterministic: a down peer is pinged on
             every ``probe_every``-th health sweep rather than every
             sweep, so a dead peer costs O(1/probe_every) of the
             checker's budget but a restarted one is noticed within
             ``probe_every`` sweeps. One successful contact returns it
             straight to ``up``.

The registry is fed from two directions: the optional
:class:`HealthChecker` thread (periodic pings) and the fabric router's
:meth:`PeerRegistry.record_success` / :meth:`PeerRegistry.record_failure`
calls on real traffic — a submit that dies mid-stream is better evidence
than any ping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["HealthChecker", "PeerRegistry", "PeerState"]

#: consecutive failures that turn suspect into down
DOWN_AFTER = 3
#: a down peer is probed on every Nth health sweep
PROBE_EVERY = 4
#: health-probe socket budget (seconds) — pings must fail fast
PING_TIMEOUT_S = 2.0


def _default_client_factory(address: str):
    """One-shot client for health probes: no reconnect retries (a probe
    wants the fast truth, not a soothed answer)."""
    from repro.serve.client import ServeClient

    return ServeClient(address, client_id="peer-health", connect_attempts=1)


@dataclass
class PeerState:
    """Everything the registry believes about one peer."""

    address: str
    status: str = "up"  # up | suspect | down
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0
    draining: bool = False
    last_error: str | None = None
    #: health sweeps seen while down (drives deterministic recovery probes)
    down_sweeps: int = 0

    def as_dict(self) -> dict:
        return {
            "address": self.address,
            "status": self.status,
            "consecutive_failures": self.consecutive_failures,
            "successes": self.successes,
            "failures": self.failures,
            "draining": self.draining,
            "last_error": self.last_error,
        }


@dataclass
class PeerStats:
    """Counters for ``/stats`` and fabric summaries."""

    pings: int = 0
    ping_failures: int = 0
    transitions: int = 0
    recovery_probes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pings": self.pings,
            "ping_failures": self.ping_failures,
            "transitions": self.transitions,
            "recovery_probes": self.recovery_probes,
        }


class PeerRegistry:
    """The local, evidence-based view of a set of peers.

    ``client_factory(address)`` must return an object with a
    ``ping(timeout=...)`` method — injectable so tests can model any
    failure pattern without sockets.
    """

    def __init__(self, addresses, down_after: int = DOWN_AFTER,
                 probe_every: int = PROBE_EVERY,
                 client_factory=None) -> None:
        cleaned = sorted({str(a).strip() for a in addresses if str(a).strip()})
        if down_after < 1:
            raise ServeError(f"down_after must be >= 1, got {down_after}",
                             code="RPR-V005")
        if probe_every < 1:
            raise ServeError(f"probe_every must be >= 1, got {probe_every}",
                             code="RPR-V005")
        self.down_after = down_after
        self.probe_every = probe_every
        self.client_factory = client_factory or _default_client_factory
        self._peers = {a: PeerState(a) for a in cleaned}
        self._lock = threading.Lock()
        self.stats = PeerStats()

    # -- membership -----------------------------------------------------------

    @property
    def addresses(self) -> list[str]:
        """All known peers, sorted — the deterministic routing order."""
        with self._lock:
            return sorted(self._peers)

    def state(self, address: str) -> PeerState:
        with self._lock:
            try:
                return self._peers[address]
            except KeyError:
                raise ServeError(f"unknown peer {address!r}",
                                 code="RPR-V005") from None

    def routable(self) -> list[str]:
        """Peers a router may send work to (up or suspect), sorted."""
        with self._lock:
            return sorted(a for a, p in self._peers.items()
                          if p.status != "down")

    def survivor_after(self, address: str) -> str | None:
        """The deterministic failover target: the next routable peer in
        sorted cyclic order after ``address`` (itself excluded). None
        when no other peer is routable."""
        order = self.addresses
        if address in order:
            start = order.index(address) + 1
        else:
            start = 0
        n = len(order)
        for off in range(n):
            candidate = order[(start + off) % n]
            if candidate == address:
                continue
            with self._lock:
                state = self._peers.get(candidate)
                if state is not None and state.status != "down":
                    return candidate
        return None

    # -- evidence -------------------------------------------------------------

    def record_success(self, address: str, draining: bool = False) -> None:
        with self._lock:
            peer = self._peers.get(address)
            if peer is None:
                return
            if peer.status != "up":
                self.stats.transitions += 1
            peer.status = "up"
            peer.consecutive_failures = 0
            peer.successes += 1
            peer.draining = bool(draining)
            peer.last_error = None
            peer.down_sweeps = 0

    def record_failure(self, address: str,
                       error: BaseException | str | None = None) -> None:
        with self._lock:
            peer = self._peers.get(address)
            if peer is None:
                return
            peer.failures += 1
            peer.consecutive_failures += 1
            peer.last_error = str(error) if error is not None else None
            new = ("down" if peer.consecutive_failures >= self.down_after
                   else "suspect")
            if new != peer.status:
                self.stats.transitions += 1
                peer.status = new
            if peer.status == "down" and peer.consecutive_failures == \
                    self.down_after:
                peer.down_sweeps = 0

    # -- probing --------------------------------------------------------------

    def check(self, address: str) -> bool:
        """One ping; feeds the state machine and returns liveness."""
        self.stats.pings += 1
        try:
            pong = self.client_factory(address).ping(timeout=PING_TIMEOUT_S)
        except Exception as exc:  # noqa: BLE001 - any failure = dead peer
            self.stats.ping_failures += 1
            self.record_failure(address, exc)
            return False
        self.record_success(address, draining=bool(pong.get("draining")))
        return True

    def sweep(self) -> dict[str, bool]:
        """One health pass: ping every up/suspect peer; ping a down peer
        only on its ``probe_every``-th sweep (deterministic recovery
        probing). Returns {address: alive} for the peers probed."""
        due = []
        with self._lock:
            for address, peer in sorted(self._peers.items()):
                if peer.status != "down":
                    due.append(address)
                    continue
                peer.down_sweeps += 1
                if peer.down_sweeps % self.probe_every == 0:
                    self.stats.recovery_probes += 1
                    due.append(address)
        return {address: self.check(address) for address in due}

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "peers": [p.as_dict()
                          for _, p in sorted(self._peers.items())],
                "routable": sorted(a for a, p in self._peers.items()
                                   if p.status != "down"),
                "down_after": self.down_after,
                "probe_every": self.probe_every,
                **self.stats.as_dict(),
            }


class HealthChecker:
    """A daemon thread that runs :meth:`PeerRegistry.sweep` forever.

    Deliberately dumb: no backoff, no jitter — the registry's
    probe_every throttling already bounds the cost of dead peers, and a
    fixed cadence keeps failover timing predictable in tests.
    """

    def __init__(self, registry: PeerRegistry,
                 interval_s: float = 1.0) -> None:
        self.registry = registry
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-health", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + PING_TIMEOUT_S)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.registry.sweep()
            except Exception:  # noqa: BLE001 - health must never die
                pass
