"""Crash-recoverable write-ahead journal of the daemon's accepted jobs.

The daemon's promise after ``accepted`` is that *somebody* will learn the
job's fate. A SIGKILL between acceptance and the terminal event used to
break that promise invisibly: the client saw a truncated stream, and the
restarted daemon remembered nothing. The journal closes the gap with the
cheapest possible write-ahead log: before a leader starts executing, its
``accepted`` record is appended (flushed + fsynced) to a per-daemon JSONL
run; when the job resolves, a ``done`` record follows.

On restart the journal replays itself: any ``accepted`` from a *previous
process epoch* without a matching ``done`` is an **orphan** — a job the
old daemon promised and never delivered. Orphans are surfaced in the
``/stats`` verb's ``journal`` section (and counted), so operators and the
fabric router can see exactly what a crash swallowed; because every job
is content-fingerprinted and drivers are journaled/resumable, simply
resubmitting an orphan's fingerprint resumes rather than recomputes.

Storage reuses :class:`repro.lab.store.RunHandle` wholesale — the same
append-fsync discipline, the same torn-tail healing (a daemon killed
mid-append leaves a half line; the next epoch heals it and counts it
corrupt, never fatal), the same tooling (``repro runs`` can inspect a
journal like any run). Records use ``point_id`` = ``e<epoch>:<job_id>``
so ids never collide across restarts of the same daemon name.

The journal also feeds cross-node coalescing: :meth:`JobJournal.known`
answers "has this daemon *ever* completed this fingerprint ok", which the
``lookup`` protocol verb reports to peers.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.lab.store import RunHandle

__all__ = ["JobJournal", "journal_run_id"]

JOURNAL_SCHEMA = 1

#: how many orphaned jobs /stats lists verbatim (the count is always exact)
MAX_ORPHANS_LISTED = 32


def _sanitize(name: str) -> str:
    out = "".join(c if (c.isalnum() or c in "-_.") else "-"
                  for c in str(name).strip())
    return out or "anon"


def journal_run_id(name: str) -> str:
    """The store run id a daemon named ``name`` journals under."""
    return f"serve-journal.{_sanitize(name)}"


class JobJournal:
    """One daemon's write-ahead log of accepted jobs.

    Thread-safe: handler threads append concurrently. Only coalescing
    *leaders* are journaled — a follower owns no execution, so it has
    nothing to orphan.
    """

    def __init__(self, store_root: str, name: str) -> None:
        self.name = _sanitize(name)
        self.run = RunHandle(Path(store_root), journal_run_id(name))
        self._lock = threading.Lock()
        self._accepted = 0
        self._done = 0
        # replay previous epochs: accepted-without-done = orphaned
        pending: dict[str, dict] = {}
        known: set[str] = set()
        epochs = 0
        for rec in self.run.records():
            phase = rec.get("phase")
            if phase == "boot":
                epochs += 1
            elif phase == "accepted":
                pending[rec.get("point_id", "")] = rec
            elif phase == "done":
                pending.pop(rec.get("point_id", ""), None)
                if rec.get("status") == "ok" and rec.get("fingerprint"):
                    known.add(rec["fingerprint"])
        self.epoch = epochs + 1
        #: jobs a previous life accepted and never finished
        self.orphans: list[dict] = [
            {"point_id": rec.get("point_id"),
             "fingerprint": rec.get("fingerprint"),
             "kind": rec.get("kind"),
             "client": rec.get("client")}
            for _, rec in sorted(pending.items())
        ]
        self._known = known
        self._torn = self.run.stats.corrupt
        self.run.append({
            "journal_schema": JOURNAL_SCHEMA,
            "phase": "boot",
            "point_id": f"e{self.epoch}:boot",
            "epoch": self.epoch,
            "orphans": len(self.orphans),
            "ts": time.time(),
        })

    # -- write-ahead ----------------------------------------------------------

    def job_key(self, job_id: str) -> str:
        return f"e{self.epoch}:{job_id}"

    def accepted(self, job_id: str, fingerprint: str, kind: str,
                 client: str) -> None:
        """Log intent *before* execution starts (the write-ahead part)."""
        with self._lock:
            self._accepted += 1
            self.run.append({
                "journal_schema": JOURNAL_SCHEMA,
                "phase": "accepted",
                "point_id": self.job_key(job_id),
                "epoch": self.epoch,
                "fingerprint": fingerprint,
                "kind": kind,
                "client": client,
                "ts": time.time(),
            })

    def done(self, job_id: str, fingerprint: str, status: str) -> None:
        with self._lock:
            self._done += 1
            if status == "ok":
                self._known.add(fingerprint)
            self.run.append({
                "journal_schema": JOURNAL_SCHEMA,
                "phase": "done",
                "point_id": self.job_key(job_id),
                "epoch": self.epoch,
                "fingerprint": fingerprint,
                "status": status,
                "ts": time.time(),
            })

    # -- queries --------------------------------------------------------------

    def known(self, fingerprint: str) -> bool:
        """Has this daemon (in any life) completed ``fingerprint`` ok?"""
        with self._lock:
            return fingerprint in self._known

    def snapshot(self) -> dict:
        """The ``journal`` section of the daemon's ``/stats``."""
        with self._lock:
            return {
                "run_id": self.run.run_id,
                "path": str(self.run.results_path),
                "epoch": self.epoch,
                "accepted": self._accepted,
                "done": self._done,
                "known_fingerprints": len(self._known),
                "torn_lines_healed": self._torn,
                "orphaned": len(self.orphans),
                "orphans": self.orphans[:MAX_ORPHANS_LISTED],
            }
