"""Client for the ``repro serve`` daemon — one connection per request.

The protocol is one-request-per-connection (see
:mod:`repro.serve.protocol`), so the client is stateless: every call
opens a socket, writes one line, reads events until a terminal one, and
returns a :class:`SubmitReply`. ``repro submit`` is a thin CLI shell over
this module; tests and the fabric router drive it directly.

Failure classification is deliberately precise, because the fabric
router routes on it:

* the daemon cannot be reached at all, or closes the connection before
  sending *any* event — ``RPR-V006``. Nothing was accepted, so the
  client transparently retries the connection a bounded number of times
  with the deterministic backoff of :class:`repro.lab.retry.RetryPolicy`
  (daemon-startup races and transient peer blips stop failing submits);
* the stream dies *after* events started flowing (daemon crashed or was
  SIGKILL'd mid-job) — ``RPR-V007``, a **truncated stream**. The raised
  error preserves the partial events (``exc.events``) for triage, and
  the code is classified transient by :mod:`repro.lab.retry` so a fabric
  router re-routes the work instead of giving up. Truncated streams are
  never blindly retried here: the job may be running on the (possibly
  still alive) daemon, and resubmission policy belongs to the caller.

The daemon address comes from the ``--address`` flag, the
``REPRO_SERVE`` environment variable, or an address file ``repro serve``
wrote — always ``host:port`` text.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.lab.chaos import active_chaos
from repro.lab.retry import RetryPolicy
from repro.serve import protocol

__all__ = ["ADDRESS_ENV", "ServeClient", "SubmitReply", "parse_address"]

ADDRESS_ENV = "REPRO_SERVE"

#: generous socket-level ceiling on top of the job timeout, so a wedged
#: daemon cannot hang a client forever even with no job timeout set
_SOCKET_GRACE_S = 10.0

#: reconnect policy: 3 connection attempts total, fast deterministic
#: backoff, no circuit breaker (the peer registry owns peer health)
_CONNECT_ATTEMPTS = 3
_CONNECT_BACKOFF_S = 0.1


def parse_address(text: str | None) -> tuple[str, int]:
    """``host:port`` -> tuple; falls back to ``$REPRO_SERVE``."""
    if not text:
        text = os.environ.get(ADDRESS_ENV, "")
    if not text:
        raise ServeError(
            "no daemon address: pass --address host:port or set "
            f"${ADDRESS_ENV}", code="RPR-V006")
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServeError(f"bad daemon address {text!r}; expected host:port",
                         code="RPR-V006")
    try:
        return host, int(port)
    except ValueError:
        raise ServeError(f"bad port in daemon address {text!r}",
                         code="RPR-V006") from None


@dataclass
class SubmitReply:
    """Everything the daemon streamed back for one request."""

    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> dict:
        """The stream's final event (result/rejected/error/stats/pong)."""
        if not self.events:
            raise ServeError("empty reply from daemon", code="RPR-V006")
        return self.events[-1]

    @property
    def accepted(self) -> dict | None:
        for ev in self.events:
            if ev.get("event") == "accepted":
                return ev
        return None

    @property
    def ok(self) -> bool:
        t = self.terminal
        return t.get("event") == "result" and t.get("status") == "ok"

    @property
    def rejected(self) -> bool:
        return self.terminal.get("event") == "rejected"

    @property
    def status(self) -> str:
        t = self.terminal
        if t.get("event") == "result":
            return t.get("status", "failed")
        return t.get("event", "error")

    @property
    def record(self) -> dict | None:
        return self.terminal.get("record")

    @property
    def coalesced(self) -> bool:
        """True when the daemon rode an existing in-flight execution."""
        acc = self.accepted
        return bool(acc and acc.get("coalesced"))

    @property
    def fingerprint(self) -> str | None:
        acc = self.accepted
        if acc is not None:
            return acc.get("fingerprint")
        return self.terminal.get("fingerprint")

    @property
    def diagnostics(self) -> list[dict]:
        return list(self.terminal.get("diagnostics", ()))


def _truncated_error(address: str, events: list[dict],
                     cause: str) -> ServeError:
    """The RPR-V007 a mid-stream disconnect raises: transient (the
    daemon died or dropped us, not the job's fault), carrying the
    partial event stream for triage."""
    accepted = any(ev.get("event") == "accepted" for ev in events)
    exc = ServeError(
        f"daemon at {address} disconnected mid-stream after "
        f"{len(events)} event(s){' (job was accepted)' if accepted else ''}"
        f": {cause}",
        code="RPR-V007",
        hint="the daemon likely crashed or was killed; the job is "
             "idempotent and journaled, so resubmitting it (here or to "
             "a peer) resumes rather than recomputes")
    #: the events received before the stream died, for triage
    exc.events = list(events)
    return exc


class ServeClient:
    """A named client of one daemon.

    ``client_id`` is what per-client admission control budgets against;
    parallel tools should pick distinct ids (the CLI defaults to
    ``user@pid``). ``connect_attempts`` bounds the transparent
    reconnect loop (1 = never retry); retry delays come from
    ``retry_policy`` (a :class:`repro.lab.retry.RetryPolicy`, shared
    with the campaign fabric — never a second backoff implementation).
    """

    def __init__(self, address: str | tuple[str, int] | None = None,
                 client_id: str | None = None,
                 connect_attempts: int = _CONNECT_ATTEMPTS,
                 retry_policy: RetryPolicy | None = None) -> None:
        if isinstance(address, tuple):
            self.address = address
        else:
            self.address = parse_address(address)
        self.client_id = client_id or f"{os.environ.get('USER', 'user')}" \
                                      f"@{os.getpid()}"
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=max(1, connect_attempts),
            base_delay=_CONNECT_BACKOFF_S, max_delay=2.0, breaker=None)

    @property
    def address_text(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def _roundtrip(self, request: dict,
                   timeout: float | None = None) -> SubmitReply:
        """One logical request: connect (with bounded, deterministically
        backed-off reconnects on RPR-V006), write one line, collect
        events until a terminal one arrives."""
        deadline = (timeout + _SOCKET_GRACE_S) if timeout else None
        attempt = 1
        while True:
            try:
                return self._attempt(request, deadline)
            except ServeError as exc:
                # only connection-level failures (nothing accepted, no
                # event seen) are safe to retry transparently; truncated
                # streams (RPR-V007) and protocol errors propagate
                if exc.code != "RPR-V006" or \
                        attempt >= self.retry_policy.max_attempts:
                    raise
            attempt += 1
            time.sleep(self.retry_policy.delay(attempt, self.address_text))

    def _attempt(self, request: dict,
                 deadline: float | None) -> SubmitReply:
        """One connection; raises RPR-V006 (retryable: no event ever
        arrived) or RPR-V007 (truncated: events arrived, then the stream
        died before a terminal event)."""
        address = self.address_text
        try:
            chaos = active_chaos()
            if chaos is not None:
                chaos.injure_connect(f"serve-connect:{address}")
            conn = socket.create_connection(self.address, timeout=5.0)
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {address}: {exc}",
                code="RPR-V006") from None
        reply = SubmitReply()
        try:
            with conn:
                conn.settimeout(deadline)
                with conn.makefile("rwb") as stream:
                    stream.write(protocol.encode(request))
                    stream.flush()
                    while True:
                        line = stream.readline()
                        if not line:
                            break
                        event = protocol.decode_line(line)
                        reply.events.append(event)
                        if event.get("event") in protocol.TERMINAL_EVENTS:
                            return reply
        except OSError as exc:
            if not reply.events:
                raise ServeError(
                    f"connection to daemon at {address} failed before "
                    f"any reply: {exc}", code="RPR-V006") from None
            raise _truncated_error(address, reply.events, str(exc)) \
                from None
        # clean EOF without a terminal event
        if not reply.events:
            raise ServeError(
                f"daemon at {address} closed the connection without "
                "replying (it may be draining or mid-restart)",
                code="RPR-V006")
        raise _truncated_error(address, reply.events,
                               "connection closed by daemon")

    # -- verbs ----------------------------------------------------------------

    def submit(self, kind: str, params: dict,
               timeout: float | None = None,
               relay: bool = False) -> SubmitReply:
        """Submit one job and block until its terminal event. ``relay``
        marks a peer-forwarded job (never forwarded again)."""
        return self._roundtrip(
            protocol.submit_request(kind, params, client=self.client_id,
                                    timeout=timeout, relay=relay),
            timeout=timeout)

    def lookup(self, fingerprint: str,
               timeout: float | None = None) -> dict:
        """The fingerprint-keyed peer hint: is this job in flight or
        already known on that daemon?"""
        return self._roundtrip(
            protocol.lookup_request(fingerprint, client=self.client_id),
            timeout=timeout).terminal

    def stats(self, timeout: float | None = None) -> dict:
        return self._roundtrip({"op": "stats"}, timeout=timeout).terminal

    def ping(self, timeout: float | None = None) -> dict:
        return self._roundtrip({"op": "ping"}, timeout=timeout).terminal

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        return self._roundtrip({"op": "shutdown"}).terminal
