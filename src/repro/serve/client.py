"""Client for the ``repro serve`` daemon — one connection per request.

The protocol is one-request-per-connection (see
:mod:`repro.serve.protocol`), so the client is stateless: every call
opens a socket, writes one line, reads events until a terminal one, and
returns a :class:`SubmitReply`. ``repro submit`` is a thin CLI shell over
this module; tests drive it directly.

The daemon address comes from the ``--address`` flag, the
``REPRO_SERVE`` environment variable, or an address file ``repro serve``
wrote — always ``host:port`` text.
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.serve import protocol

__all__ = ["ADDRESS_ENV", "ServeClient", "SubmitReply", "parse_address"]

ADDRESS_ENV = "REPRO_SERVE"

#: generous socket-level ceiling on top of the job timeout, so a wedged
#: daemon cannot hang a client forever even with no job timeout set
_SOCKET_GRACE_S = 10.0


def parse_address(text: str | None) -> tuple[str, int]:
    """``host:port`` -> tuple; falls back to ``$REPRO_SERVE``."""
    if not text:
        text = os.environ.get(ADDRESS_ENV, "")
    if not text:
        raise ServeError(
            "no daemon address: pass --address host:port or set "
            f"${ADDRESS_ENV}", code="RPR-V006")
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServeError(f"bad daemon address {text!r}; expected host:port",
                         code="RPR-V006")
    try:
        return host, int(port)
    except ValueError:
        raise ServeError(f"bad port in daemon address {text!r}",
                         code="RPR-V006") from None


@dataclass
class SubmitReply:
    """Everything the daemon streamed back for one request."""

    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> dict:
        """The stream's final event (result/rejected/error/stats/pong)."""
        if not self.events:
            raise ServeError("empty reply from daemon", code="RPR-V006")
        return self.events[-1]

    @property
    def accepted(self) -> dict | None:
        for ev in self.events:
            if ev.get("event") == "accepted":
                return ev
        return None

    @property
    def ok(self) -> bool:
        t = self.terminal
        return t.get("event") == "result" and t.get("status") == "ok"

    @property
    def rejected(self) -> bool:
        return self.terminal.get("event") == "rejected"

    @property
    def status(self) -> str:
        t = self.terminal
        if t.get("event") == "result":
            return t.get("status", "failed")
        return t.get("event", "error")

    @property
    def record(self) -> dict | None:
        return self.terminal.get("record")

    @property
    def coalesced(self) -> bool:
        """True when the daemon rode an existing in-flight execution."""
        acc = self.accepted
        return bool(acc and acc.get("coalesced"))

    @property
    def fingerprint(self) -> str | None:
        acc = self.accepted
        if acc is not None:
            return acc.get("fingerprint")
        return self.terminal.get("fingerprint")

    @property
    def diagnostics(self) -> list[dict]:
        return list(self.terminal.get("diagnostics", ()))


class ServeClient:
    """A named client of one daemon.

    ``client_id`` is what per-client admission control budgets against;
    parallel tools should pick distinct ids (the CLI defaults to
    ``user@pid``).
    """

    def __init__(self, address: str | tuple[str, int] | None = None,
                 client_id: str | None = None) -> None:
        if isinstance(address, tuple):
            self.address = address
        else:
            self.address = parse_address(address)
        self.client_id = client_id or f"{os.environ.get('USER', 'user')}" \
                                      f"@{os.getpid()}"

    def _roundtrip(self, request: dict,
                   timeout: float | None = None) -> SubmitReply:
        """One connection: write the request, collect events until a
        terminal one arrives."""
        deadline = (timeout + _SOCKET_GRACE_S) if timeout else None
        try:
            with socket.create_connection(self.address, timeout=5.0) as conn:
                conn.settimeout(deadline)
                with conn.makefile("rwb") as stream:
                    stream.write(protocol.encode(request))
                    stream.flush()
                    reply = SubmitReply()
                    while True:
                        line = stream.readline()
                        if not line:
                            break
                        event = protocol.decode_line(line)
                        reply.events.append(event)
                        if event.get("event") in protocol.TERMINAL_EVENTS:
                            break
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at "
                f"{self.address[0]}:{self.address[1]}: {exc}",
                code="RPR-V006") from None
        if not reply.events:
            raise ServeError(
                "daemon closed the connection without replying "
                "(it may be draining)", code="RPR-V006")
        return reply

    # -- verbs ----------------------------------------------------------------

    def submit(self, kind: str, params: dict,
               timeout: float | None = None) -> SubmitReply:
        """Submit one job and block until its terminal event."""
        return self._roundtrip(
            protocol.submit_request(kind, params, client=self.client_id,
                                    timeout=timeout),
            timeout=timeout)

    def stats(self) -> dict:
        return self._roundtrip({"op": "stats"}).terminal

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"}).terminal

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        return self._roundtrip({"op": "shutdown"}).terminal
