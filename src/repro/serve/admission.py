"""Admission control: bounded work, bounded queues, fair-ish clients.

Two independent budgets guard the daemon:

* a **global** budget (``max_inflight`` running + ``queue_depth``
  waiting) charged only to coalescing *leaders* — the requests that will
  actually occupy a worker. Followers ride an existing flight for free.
* a **per-client** budget charged to every request, so one greedy client
  cannot consume the whole global budget (not even with followers, which
  are cheap for the daemon but still hold a connection).

Rejection is immediate and explicit — a structured ``rejected`` event
with an RPR-V code — rather than unbounded queueing; the client's retry
policy (:mod:`repro.lab.retry` classifies capacity rejections as
transient) decides what to do next. ``start_drain`` flips the controller
into shutdown mode: new *work* is refused with RPR-V004 while
already-admitted work runs to completion — but coalescing followers
(``rider=True``) are still admitted, because riding a flight that was
admitted before the drain costs nothing and ends with the flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Counters for the daemon's ``/stats`` verb."""

    admitted: int = 0
    rejected_capacity: int = 0
    rejected_client: int = 0
    rejected_draining: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_capacity": self.rejected_capacity,
            "rejected_client": self.rejected_client,
            "rejected_draining": self.rejected_draining,
        }


class AdmissionController:
    def __init__(self, max_inflight: int = 4, queue_depth: int = 16,
                 per_client: int = 16) -> None:
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}",
                             code="RPR-V005")
        if queue_depth < 0:
            raise ServeError(f"queue_depth must be >= 0, got {queue_depth}",
                             code="RPR-V005")
        if per_client < 1:
            raise ServeError(f"per_client must be >= 1, got {per_client}",
                             code="RPR-V005")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.per_client = per_client
        #: leaders running or queued; capacity = max_inflight + queue_depth
        self._global = 0
        self._clients: dict[str, int] = {}
        self._draining = False
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    @property
    def capacity(self) -> int:
        return self.max_inflight + self.queue_depth

    @property
    def draining(self) -> bool:
        return self._draining

    def start_drain(self) -> None:
        with self._lock:
            self._draining = True

    # -- per-client slots (every request) -------------------------------------

    def acquire_client(self, client: str, rider: bool = False) -> None:
        """Charge one per-client slot; raises RPR-V003/RPR-V004.

        ``rider=True`` marks a request that would ride an existing
        in-flight execution (a coalescing follower): riders cost the
        daemon nothing but a waiting connection, so they are still
        admitted during drain — the leader they follow was admitted
        before the drain began and will resolve their flight.
        """
        with self._lock:
            if self._draining and not rider:
                self.stats.rejected_draining += 1
                raise ServeError(
                    "daemon is draining; not accepting new jobs",
                    code="RPR-V004")
            held = self._clients.get(client, 0)
            if held >= self.per_client:
                self.stats.rejected_client += 1
                raise ServeError(
                    f"client {client!r} already has {held} jobs in flight "
                    f"(limit {self.per_client})", code="RPR-V003")
            self._clients[client] = held + 1

    def release_client(self, client: str) -> None:
        with self._lock:
            held = self._clients.get(client, 0)
            if held <= 1:
                self._clients.pop(client, None)
            else:
                self._clients[client] = held - 1

    # -- global slots (leaders only) ------------------------------------------

    def acquire_global(self) -> None:
        """Charge one global slot; raises RPR-V002/RPR-V004.

        Called from inside the coalescer's ``join`` critical section so
        "no existing flight" and "has capacity" are decided atomically.
        """
        with self._lock:
            if self._draining:
                self.stats.rejected_draining += 1
                raise ServeError(
                    "daemon is draining; not accepting new jobs",
                    code="RPR-V004")
            if self._global >= self.capacity:
                self.stats.rejected_capacity += 1
                raise ServeError(
                    f"at capacity: {self._global} jobs in flight or queued "
                    f"(max_inflight={self.max_inflight} "
                    f"queue_depth={self.queue_depth})", code="RPR-V002")
            self._global += 1
            self.stats.admitted += 1

    def release_global(self) -> None:
        with self._lock:
            if self._global > 0:
                self._global -= 1

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._global,
                "capacity": self.capacity,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "per_client": self.per_client,
                "clients": dict(self._clients),
                "draining": self._draining,
                **self.stats.as_dict(),
            }
