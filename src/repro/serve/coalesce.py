"""In-flight request coalescing — N identical concurrent jobs, one run.

The daemon's core economy: every submitted job is fingerprinted with the
same content key the synthesis cache uses, so two requests for the same
work are *provably* the same work. The first request to arrive for a
fingerprint becomes the **leader** and actually executes; requests that
arrive while the leader is still running become **followers** and simply
wait on the leader's :class:`Flight`. When the leader finishes, every
follower is released with the same value (or the same failure).

This is one of three dedup layers, ordered by scope:

* **in-node** — this coalescer: identical jobs inside one daemon share
  one flight (zero extra worker slots);
* **cross-node** — the fabric's ``lookup`` verb + relay-follow
  (:mod:`repro.serve.server`): a daemon about to lead first asks its
  peers whether the fingerprint is already flying elsewhere;
* **cross-process** — the cache's fill lease
  (:meth:`repro.lab.cache.SynthesisCache.acquire_fill`): the backstop
  for writers that share only the cache directory (daemons that cannot
  see each other, sweep workers, plain CLI runs). Whatever slips past
  the first two layers still costs exactly one synthesis fill.

Each layer composes with the on-disk cache rather than replacing it: the
cache dedupes *across time* (a result computed yesterday), the
coalescing layers dedupe *across concurrency* (a result currently being
computed). A follower never touches the worker pool at all, which is why
the daemon's admission control only charges global capacity to leaders.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

__all__ = ["CoalesceStats", "Coalescer", "Flight"]


class Flight:
    """One in-flight execution of a fingerprinted job.

    The leader resolves (or rejects) the flight exactly once; any number
    of followers block in :meth:`wait`. Resolution is first-wins and
    idempotent so a racing timeout path and a late worker cannot fight.
    """

    __slots__ = ("key", "_done", "_lock", "value", "error", "waiters")

    def __init__(self, key: str) -> None:
        self.key = key
        self._done = threading.Event()
        self._lock = threading.Lock()
        self.value = None
        self.error: BaseException | None = None
        #: follower count, for stats/debugging (leader not included)
        self.waiters = 0

    def resolve(self, value) -> bool:
        with self._lock:
            if self._done.is_set():
                return False
            self.value = value
            self._done.set()
            return True

    def reject(self, error: BaseException) -> bool:
        with self._lock:
            if self._done.is_set():
                return False
            self.error = error
            self._done.set()
            return True

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None):
        """Block until the leader finishes; returns the value or re-raises
        the leader's error. Raises :class:`TimeoutError` if the follower's
        own deadline expires first (the flight itself keeps flying)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"timed out waiting on in-flight job {self.key}")
        if self.error is not None:
            raise self.error
        return self.value


@dataclass
class CoalesceStats:
    """Counters for the daemon's ``/stats`` verb."""

    leaders: int = 0
    followers: int = 0
    resolved: int = 0
    rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "resolved": self.resolved,
            "rejected": self.rejected,
        }


class Coalescer:
    """The registry of in-flight fingerprints.

    ``join`` is the only decision point: under one lock it either attaches
    the caller to an existing flight (follower) or creates a new one
    (leader). ``can_lead`` — when given — runs *inside* that critical
    section, so "is there capacity for a new leader" and "does a flight
    already exist" are answered atomically; a request can never be
    refused for capacity when it could have ridden an existing flight.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}
        self.stats = CoalesceStats()

    def join(
        self,
        key: str,
        can_lead: Callable[[], None] | None = None,
    ) -> tuple[Flight, bool]:
        """Attach to ``key``; returns ``(flight, is_leader)``.

        ``can_lead`` may raise (e.g. an admission-control rejection) to
        refuse leadership; the refusal propagates and no flight is
        created. Followers never consult it.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None and not flight.done:
                flight.waiters += 1
                self.stats.followers += 1
                return flight, False
            if can_lead is not None:
                can_lead()
            flight = Flight(key)
            self._flights[key] = flight
            self.stats.leaders += 1
            return flight, True

    def complete(self, flight: Flight, value=None,
                 error: BaseException | None = None) -> None:
        """Leader hand-off: publish the outcome and retire the flight.

        Tolerant of double completion (a timed-out leader's worker may
        still finish later) — only the first outcome is published, and
        the flight is only unregistered once.
        """
        if error is not None:
            first = flight.reject(error)
            if first:
                self.stats.rejected += 1
        else:
            first = flight.resolve(value)
            if first:
                self.stats.resolved += 1
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    def flight_info(self, key: str) -> tuple[bool, int]:
        """The ``lookup`` verb's answer for ``key``: is a flight live
        right now, and how many followers ride it (leader excluded)."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None or flight.done:
                return False, 0
            return True, flight.waiters

    def abort_all(self, value=None,
                  error: BaseException | None = None) -> int:
        """Drain-time last rites: resolve (or reject) every still-open
        flight so no follower is left waiting on a leader that will
        never report. Returns the number of flights aborted."""
        with self._lock:
            flights = [f for f in self._flights.values() if not f.done]
        aborted = 0
        for flight in flights:
            if error is not None:
                first = flight.reject(error)
            else:
                first = flight.resolve(value)
            if first:
                aborted += 1
        with self._lock:
            for flight in flights:
                if self._flights.get(flight.key) is flight:
                    del self._flights[flight.key]
        return aborted

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._flights)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": len(self._flights),
                **self.stats.as_dict(),
            }
