"""repro.serve — synthesis-as-a-service daemon, protocol and client.

A long-running ``repro serve`` process amortizes everything the batch
CLI pays per invocation: the Python import tax, the in-process codegen
memos (:mod:`repro.simc.codecache`), and one warm, thread-safe
:class:`~repro.lab.cache.SynthesisCache` handle. Clients submit synth /
sweep / campaign / difftest jobs over a local socket
(:mod:`repro.serve.protocol`) and identical concurrent requests are
**coalesced** — fingerprinted with the same content key the cache uses,
so N clients asking for the same synthesis cost one execution
(:mod:`repro.serve.coalesce`) — under explicit admission control
(:mod:`repro.serve.admission`).

Import layering: this package top level only re-exports the light pieces
(protocol + client), so ``repro submit`` stays fast to import; the
server (which pulls in the whole synthesis stack) is imported lazily by
``repro serve``.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, SubmitReply, parse_address
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    campaign_summary,
    canonical_record,
    difftest_summary,
    sweep_summary,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "SubmitReply",
    "campaign_summary",
    "canonical_record",
    "difftest_summary",
    "parse_address",
    "sweep_summary",
]
