"""Job kinds the daemon executes, and how each is fingerprinted.

A job arrives as plain JSON — ``{"kind": ..., "params": {...}}`` — and is
normalized here into a :class:`JobSpec`, given a **content fingerprint**
(the coalescing key), and dispatched onto the existing drivers:

============  ==========================================================
kind          executes
============  ==========================================================
``synth``     one design point through :func:`evaluate_point_cached`,
              sharing the daemon's warm thread-safe cache handle
``sweep``     :func:`repro.lab.sweep.run_sweep` (journaled + resumable)
``campaign``  :func:`repro.faults.campaign.run_campaign`
``difftest``  :func:`repro.difftest.runner.run_difftest_campaign`
``sleep``     nothing — holds a worker slot; load/admission test probe
============  ==========================================================

Fingerprints reuse the content keys the rest of the lab already computes:
a ``synth`` job's fingerprint **is** :func:`repro.lab.cache.cache_key`
for that point, so "the coalescer saw these as identical" and "the cache
would have deduped them" are the same statement. Sweep and difftest jobs
reuse their spec fingerprints (which also drive resumable run ids).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.synth import LEVELS
from repro.errors import ServeError
from repro.lab.cache import SynthesisCache, cache_key
from repro.lab.sweep import (
    OPTION_VARIANTS,
    AppSpec,
    SweepPoint,
    SweepSpec,
    build_app,
    evaluate_point_cached,
)
from repro.lab.shard import ShardError, ShardSpec
from repro.serve import protocol
from repro.utils.idgen import stable_fingerprint

__all__ = ["JobContext", "JobSpec", "job_fingerprint", "parse_job",
           "run_job"]


@dataclass(frozen=True)
class JobSpec:
    """One validated job: a kind plus its JSON-able params."""

    kind: str
    params: dict = field(default_factory=dict)


def parse_job(obj: dict) -> JobSpec:
    """Normalize ``{"kind", "params"}``; raises :class:`ServeError`."""
    kind = obj.get("kind")
    if kind not in protocol.JOB_KINDS:
        raise ServeError(
            f"unknown job kind {kind!r}; have "
            f"{', '.join(protocol.JOB_KINDS)}", code="RPR-V001")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ServeError("job params must be an object", code="RPR-V001")
    return JobSpec(kind=kind, params=params)


# ---- param -> spec helpers --------------------------------------------------


def _app_spec(obj, what: str) -> AppSpec:
    if not isinstance(obj, dict) or "kind" not in obj:
        raise ServeError(
            f"{what} needs an app object {{'kind': ..., 'params': {{...}}}}",
            code="RPR-V001")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ServeError(f"{what} app params must be an object",
                         code="RPR-V001")
    return AppSpec.make(obj["kind"], **params)


def _level(params: dict) -> str:
    level = params.get("level", "optimized")
    if level not in LEVELS:
        raise ServeError(
            f"bad assertion level {level!r}; have {', '.join(LEVELS)}",
            code="RPR-V001")
    return level


def _variant(params: dict) -> str:
    variant = params.get("variant", "default")
    if variant not in OPTION_VARIANTS:
        raise ServeError(
            f"unknown option variant {variant!r}; have "
            f"{sorted(OPTION_VARIANTS)}", code="RPR-V001")
    return variant


def _shard(params: dict) -> ShardSpec | None:
    """The optional ``shard: "K/N"`` param the fabric router adds so
    each peer journals its deterministic slice into ``<base>.sKofN``."""
    text = params.get("shard")
    if text is None:
        return None
    try:
        return ShardSpec.parse(str(text))
    except ShardError as exc:
        raise ServeError(f"bad shard param: {exc.message}",
                         code="RPR-V001") from None


def _synth_point(params: dict) -> SweepPoint:
    app = _app_spec(params.get("app"), "synth job")
    level = _level(params)
    variant = _variant(params)
    return SweepPoint(
        point_id=f"{app.label}/{level}" +
                 (f"/{variant}" if variant != "default" else ""),
        app=app, level=level, variant=variant,
        options=OPTION_VARIANTS[variant],
    )


def _sweep_spec(params: dict) -> SweepSpec:
    apps = params.get("apps")
    if not isinstance(apps, list) or not apps:
        raise ServeError("sweep job needs a non-empty apps list",
                         code="RPR-V001")
    return SweepSpec.cross(
        str(params.get("name", "serve-sweep")),
        [_app_spec(a, "sweep job") for a in apps],
        levels=tuple(params.get("levels", ("none", "optimized"))),
        variants=tuple(params.get("variants", ("default",))),
    )


def _difftest_spec(params: dict):
    from repro.difftest.generator import GenConfig
    from repro.difftest.runner import DifftestSpec

    seeds = params.get("seeds", (0, 10))
    if (not isinstance(seeds, (list, tuple)) or len(seeds) != 2):
        raise ServeError("difftest seeds must be [lo, hi]",
                         code="RPR-V001")
    gen = GenConfig(max_stmts=int(params.get("max_stmts", 8)))
    return DifftestSpec(
        name=str(params.get("name", "serve-difftest")),
        seeds=(int(seeds[0]), int(seeds[1])),
        gen=gen,
        max_cycles=int(params.get("max_cycles", 200_000)),
        sim_backend=str(params.get("sim_backend", "interp")),
    )


# ---- fingerprinting ---------------------------------------------------------


def job_fingerprint(spec: JobSpec) -> str:
    """The coalescing key: identical work -> identical fingerprint.

    Validates the params as a side effect, so a malformed job is refused
    (RPR-V001) before it consumes any admission budget.
    """
    if spec.kind == "synth":
        point = _synth_point(spec.params)
        return cache_key(build_app(point.app), point.level, point.options,
                         point.device)
    # a sharded sweep/difftest is *different work* from its siblings and
    # from the unsharded whole — suffix the label so shards of one spec
    # never coalesce into a single slice's execution
    shard = _shard(spec.params)
    suffix = f"-{shard.label}" if shard else ""
    if spec.kind == "sweep":
        return f"sweep-{_sweep_spec(spec.params).fingerprint()}{suffix}"
    if spec.kind == "difftest":
        return (f"difftest-{_difftest_spec(spec.params).fingerprint()}"
                f"{suffix}")
    # campaign and sleep: a stable hash over the normalized params
    fp = stable_fingerprint(
        "serve-job", spec.kind, tuple(sorted(
            (str(k), str(v)) for k, v in spec.params.items())))
    return f"{spec.kind}-{fp:012x}"


# ---- execution --------------------------------------------------------------


@dataclass
class JobContext:
    """What every job execution shares: the daemon's warm cache handle,
    the roots journaled runs land under, and the inner parallelism each
    driver may use (kept at 1 by default — the daemon's thread pool is
    the outer level of parallelism)."""

    cache: SynthesisCache
    cache_root: str | None = None
    store_root: str = "serve-runs"
    jobs: int = 1


def run_job(spec: JobSpec, ctx: JobContext) -> dict:
    """Execute one job; returns its JSON-able result record."""
    if spec.kind == "synth":
        return evaluate_point_cached(_synth_point(spec.params), ctx.cache)

    if spec.kind == "sweep":
        from repro.lab.sweep import run_sweep

        result = run_sweep(
            _sweep_spec(spec.params), jobs=ctx.jobs,
            store_root=ctx.store_root, cache_root=ctx.cache_root,
            shard=_shard(spec.params), progress=False,
        )
        return protocol.sweep_summary(result)

    if spec.kind == "campaign":
        from repro.faults.campaign import run_campaign

        params = spec.params
        result = run_campaign(
            target=str(params.get("app", "loopback")),
            levels=tuple(params.get("levels", ("none", "optimized"))),
            seed=int(params.get("seed", 0)),
            count=int(params.get("count", 4)),
            nabort=bool(params.get("nabort", False)),
            jobs=ctx.jobs,
            cache_root=ctx.cache_root,
            store_root=ctx.store_root,
            shard=_shard(params),
        )
        return protocol.campaign_summary(result)

    if spec.kind == "difftest":
        from repro.difftest.runner import run_difftest_campaign

        result = run_difftest_campaign(
            _difftest_spec(spec.params), jobs=ctx.jobs,
            store_root=ctx.store_root, cache_root=ctx.cache_root,
            shard=_shard(spec.params), progress=False,
        )
        return protocol.difftest_summary(result)

    if spec.kind == "sleep":
        seconds = float(spec.params.get("seconds", 0.1))
        time.sleep(seconds)
        return {"kind": "sleep", "slept_s": seconds,
                "token": spec.params.get("token")}

    raise ServeError(f"unknown job kind {spec.kind!r}",
                     code="RPR-V001")  # pragma: no cover - parse_job guards
