"""repro — high-level synthesis of in-circuit ANSI-C assertions.

An open reproduction of Curreri, Stitt & George, "High-Level Synthesis
Techniques for In-Circuit Assertion-Based Verification" (IPDPS 2010):
a complete HLS flow for an Impulse-C-like C dialect (pycparser frontend,
list/modulo scheduling, FSM+datapath codegen, Verilog emission, cycle-
accurate simulation), a Stratix-II EP2S180 resource/timing model, and the
paper's contribution — synthesis of ``assert()`` statements into FPGA
circuits with parallelization, resource-replication and resource-sharing
optimizations.

Quick start::

    from repro import Application, software_sim, synthesize, execute

    app = Application("demo")
    app.add_c_process(C_SOURCE, name="filt")
    app.feed("in", "filt.input", data=[1, 2, 3])
    app.sink("out", "filt.output")

    sim = software_sim(app)                       # CPU-side simulation
    image = synthesize(app, assertions="optimized")
    result = execute(image)                       # cycle-accurate "in circuit"
"""

from repro.core.synth import SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.faults import NarrowCompare, ReadForWrite
from repro.hls.constraints import HLSConfig, ScheduleConfig
from repro.platform.device import EP2S180, XD1000
from repro.platform.report import execution_summary, overhead_report
from repro.platform.resources import estimate_image
from repro.platform.timing import estimate_fmax
from repro.runtime.hwexec import HardwareImage, HwResult, execute
from repro.runtime.swsim import SimResult, software_sim
from repro.runtime.taskgraph import Application
from repro.runtime.watchdog import WatchdogConfig, WatchdogReport

__version__ = "1.0.0"

__all__ = [
    "Application",
    "HardwareImage",
    "HwResult",
    "SimResult",
    "SynthesisOptions",
    "HLSConfig",
    "ScheduleConfig",
    "NarrowCompare",
    "ReadForWrite",
    "WatchdogConfig",
    "WatchdogReport",
    "EP2S180",
    "XD1000",
    "ReproError",
    "execute",
    "software_sim",
    "synthesize",
    "overhead_report",
    "execution_summary",
    "estimate_image",
    "estimate_fmax",
    "__version__",
]
