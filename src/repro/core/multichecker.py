"""Round-robin multi-assertion checker — the paper's future-work extension.

Section 3.3: "Resource sharing could potentially be extended to support an
arbitrary number of simultaneous assertions in multiple tasks by
synthesizing a pipelined assertion checker circuit that implements a group
of simultaneous assertions. To prevent simultaneous access to shared
resources, the circuit could buffer data from different assertions using
FIFOs (e.g., one buffer per assertion) and then process the data from the
FIFOs in a round-robin manner."

Implementation: the per-assertion data taps keep their dedicated FIFOs; a
round-robin *arbiter* (HDL-instrumented plumbing, like the paper's
collectors) moves one record per cycle onto a merged channel, tagged with
the assertion index. One shared checker process pops the merged channel at
II=1, evaluates every member condition combinationally on the record's
value slots, and raises the failure bit selected by the tag. Functional
units inside the single checker are shared by the ordinary binder, and the
per-checker FSM/tap-endpoint overhead is paid once per *group* instead of
once per assertion.

Conditions containing division are excluded (evaluating them on another
assertion's record could trap); such assertions keep individual checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parallelize import CheckerPlan
from repro.frontend.ctypes_ import U1, U8, CType
from repro.ir.function import IRFunction
from repro.ir.instr import BasicBlock, Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, Temp

#: ops that are unsafe to evaluate speculatively on foreign records
_UNSAFE_OPS = {OpKind.DIV, OpKind.MOD}


@dataclass
class ArbiterSpec:
    """Round-robin merge of per-assertion tap channels onto one channel.

    ``inputs[i]`` feeds records for assertion index ``i``; each record is
    re-emitted on ``output`` as ``(i, slot0, slot1, ...)`` with the
    assertion's values placed at ``offsets[i]`` and other slots zero.
    """

    inputs: list[str] = field(default_factory=list)
    arities: list[int] = field(default_factory=list)
    offsets: list[int] = field(default_factory=list)
    output: str = ""
    total_slots: int = 0


@dataclass
class MultiCheckerPlan:
    checker: IRFunction
    arbiter: ArbiterSpec
    members: list[CheckerPlan] = field(default_factory=list)


def _plan_is_mergeable(plan: CheckerPlan) -> bool:
    chk = plan.checker
    for instr in chk.instructions():
        if instr.op in _UNSAFE_OPS:
            return False
    return plan.fail_mode == "bit"


def _member_slice(plan: CheckerPlan) -> tuple[list[Instr], list[Temp], Temp]:
    """Extract the condition-evaluation instructions, the tapped value
    temps (v0..vk) and the condition root from a member's checker body."""
    chk = plan.checker
    hdr = chk.blocks["hdr"]
    body = chk.blocks["body"]
    tap_read = hdr.instrs[0]
    values = list(tap_read.dests[1:])
    # the body ends with [slice..., lnot root]; the lnot's operand is the root
    assert body.instrs and body.instrs[-1].op == OpKind.LNOT
    root = body.instrs[-1].args[0]
    slice_instrs = body.instrs[:-1]
    return slice_instrs, values, root


def build_multichecker(
    name: str,
    plans: list[CheckerPlan],
    source_file: str = "<generated>",
) -> MultiCheckerPlan:
    """Merge the given (mergeable) checker plans into one shared checker."""
    if not plans:
        raise ValueError("need at least one plan")
    if any(not _plan_is_mergeable(p) for p in plans):
        raise ValueError("unmergeable plan passed to build_multichecker")

    arbiter = ArbiterSpec(output=f"{name}__merged")
    chk = IRFunction(name=name, source_file=source_file)

    members: list[tuple[list[Instr], list[Temp], Temp, CheckerPlan]] = []
    offset = 0
    slot_types: list[CType] = []
    for index, plan in enumerate(plans):
        slice_instrs, values, root = _member_slice(plan)
        arbiter.inputs.append(plan.tap_channel)
        arbiter.arities.append(len(values))
        arbiter.offsets.append(offset)
        offset += len(values)
        slot_types.extend(v.ty for v in values)
        members.append((slice_instrs, values, root, plan))
        _ = index
    arbiter.total_slots = offset

    ok = chk.declare_scalar("ok", U1)
    tag = chk.declare_scalar("tag", U8)
    slots: list[Temp] = [
        chk.declare_scalar(f"s{i}", ty) for i, ty in enumerate(slot_types)
    ]

    entry = BasicBlock("entry")
    hdr = BasicBlock("hdr", pipeline=True)
    chk.blocks["entry"] = entry
    chk.blocks["hdr"] = hdr
    chk.entry = "entry"
    entry.term = Jump("hdr")
    hdr.instrs.append(
        Instr(OpKind.TAP_READ, [ok, tag, *slots],
              [], {"channel": arbiter.output})
    )
    exitb = BasicBlock("exitb")
    chk.blocks["exitb"] = exitb
    exitb.term = Return()

    # body: evaluate every member's condition combinationally, then one
    # diamond per member raising its failure bit when selected and false
    body = BasicBlock("body")
    chk.blocks["body"] = body
    hdr.term = Branch(ok, "body", "exitb")

    fail_flags: list[tuple[Temp, CheckerPlan]] = []
    for member_index, (slice_instrs, values, root, plan) in enumerate(members):
        rename: dict[str, Temp] = {}
        base = arbiter.offsets[member_index]
        for i, v in enumerate(values):
            rename[v.name] = slots[base + i]
        local: dict[str, Temp] = {}
        for instr in slice_instrs:
            copy = instr.copy()
            copy.args = [
                local.get(a.name, rename.get(a.name, a))
                if isinstance(a, Temp) else a
                for a in copy.args
            ]
            new_dests = []
            for d in copy.dests:
                nd = chk.new_temp(d.ty, "m")
                local[d.name] = nd
                new_dests.append(nd)
            copy.dests = new_dests
            body.instrs.append(copy)
        cond = local.get(root.name, rename.get(root.name))
        if cond is None:  # condition was a bare tapped value
            cond = rename[root.name]
        ln = chk.new_temp(U1, "ln")
        body.instrs.append(Instr(OpKind.LNOT, [ln], [cond]))
        sel = chk.new_temp(U1, "sel")
        body.instrs.append(
            Instr(OpKind.EQ, [sel], [tag, Const(member_index, U8)])
        )
        flag = chk.new_temp(U1, "ff")
        body.instrs.append(Instr(OpKind.AND, [flag], [sel, ln]))
        fail_flags.append((flag, plan))

    # one if-diamond per member: raise the member's failure bit
    current = body
    for i, (flag, plan) in enumerate(fail_flags):
        failb = BasicBlock(f"fail{i}")
        nxt = BasicBlock(f"next{i}")
        chk.blocks[failb.name] = failb
        chk.blocks[nxt.name] = nxt
        failb.instrs.append(
            Instr(OpKind.TAP, [], [Const(1, U1)], {"channel": plan.fail_tap})
        )
        failb.term = Jump(nxt.name)
        current.term = Branch(flag, failb.name, nxt.name)
        current = nxt
    current.term = Jump("hdr")

    return MultiCheckerPlan(checker=chk, arbiter=arbiter, members=plans)


def partition_plans(
    plans: list[CheckerPlan],
) -> tuple[list[CheckerPlan], list[CheckerPlan]]:
    """(mergeable, must-stay-individual) split of checker plans."""
    mergeable = [p for p in plans if _plan_is_mergeable(p)]
    individual = [p for p in plans if not _plan_is_mergeable(p)]
    return mergeable, individual
