"""Timing assertions — the paper's second future-work item, implemented.

Section 6: "Future work includes adding the ability for assertions to
check the timing of the lines of code, which would be useful for verifying
timing properties of an application in terms of clock cycles."

Dialect extension (two intrinsics, usable anywhere a statement is legal):

``co_latency_start(id)``
    Marks the start of measured region ``id`` (a compile-time constant).
``co_latency_end(id, bound)``
    Marks the end; the elapsed clock cycles from the most recent start of
    ``id`` must be **at most** ``bound``.

During software simulation the intrinsics are inert (software timing says
nothing about circuit timing — the whole point of the paper). In hardware
they lower to 1-bit event taps; a *latency monitor* (HDL-instrumented
plumbing, like the failure collectors: a counter per region plus a
comparator) timestamps the events and reports a violation through the
normal assertion notification path, with a source-accurate message::

    Latency assertion failed: region 2 took 37 cycles (bound 16),
    file app.c, line 12, function f

Violations honour ``NABORT`` exactly like value assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssertionSynthesisError
from repro.ir.function import IRFunction
from repro.ir.instr import AssertionSite, Instr
from repro.ir.ops import OpKind


@dataclass
class LatencyRegion:
    """One measured region inside one process."""

    region_id: int
    bound: int
    process: str
    start_channel: str
    end_channel: str
    site: AssertionSite

    def message(self, cycles: int) -> str:
        return (
            f"Latency assertion failed: region {self.region_id} took "
            f"{cycles} cycles (bound {self.bound}), file {self.site.file}, "
            f"line {self.site.line}, function {self.site.function}"
        )


@dataclass
class LatencyMonitorSpec:
    """Cycle-level monitor behaviour; executed by the hardware runtime."""

    regions: list[LatencyRegion] = field(default_factory=list)


def extract_latency_regions(
    func: IRFunction, process_name: str
) -> LatencyMonitorSpec:
    """Convert latency intrinsic markers into tap events + a monitor spec.

    The lowering phase leaves ``TAP`` instructions whose attrs carry
    ``latency_role`` ('start'/'end'), ``latency_id`` and (for ends)
    ``latency_bound``; this pass names their channels uniquely per process
    and returns the monitor spec. Mutates ``func``.
    """
    spec = LatencyMonitorSpec()
    starts: dict[int, str] = {}
    ends: dict[int, tuple[str, int, AssertionSite]] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            role = instr.attrs.get("latency_role")
            if role is None:
                continue
            region_id = instr.attrs["latency_id"]
            channel = f"{process_name}__lat{region_id}_{role}"
            instr.attrs["channel"] = channel
            if role == "start":
                if region_id in starts:
                    raise AssertionSynthesisError(
                        f"{process_name}: duplicate co_latency_start({region_id})", code="RPR-A010")
                starts[region_id] = channel
            else:
                if region_id in ends:
                    raise AssertionSynthesisError(
                        f"{process_name}: duplicate co_latency_end({region_id})", code="RPR-A011")
                ends[region_id] = (
                    channel,
                    instr.attrs["latency_bound"],
                    instr.attrs["latency_site"],
                )
    for region_id, (end_channel, bound, site) in sorted(ends.items()):
        if region_id not in starts:
            raise AssertionSynthesisError(
                f"{process_name}: co_latency_end({region_id}) without start", code="RPR-A012")
        spec.regions.append(
            LatencyRegion(
                region_id=region_id,
                bound=bound,
                process=process_name,
                start_channel=starts[region_id],
                end_channel=end_channel,
                site=site,
            )
        )
    for region_id in starts:
        if region_id not in ends:
            raise AssertionSynthesisError(
                f"{process_name}: co_latency_start({region_id}) without end", code="RPR-A013")
    return spec


def strip_latency_markers(func: IRFunction) -> int:
    """Remove latency taps (the NDEBUG / assertions='none' configuration)."""
    removed = 0
    for block in func.blocks.values():
        before = len(block.instrs)
        block.instrs = [
            i for i in block.instrs if i.attrs.get("latency_role") is None
        ]
        removed += before - len(block.instrs)
    return removed


def has_latency_markers(func: IRFunction) -> bool:
    return any(
        i.attrs.get("latency_role") is not None for i in func.instructions()
    )


def monitor_tap_channels(spec: LatencyMonitorSpec) -> list[tuple[str, str]]:
    """(start, end) channel pairs for graph wiring."""
    return [(r.start_channel, r.end_channel) for r in spec.regions]


def make_marker(role: str, region_id: int, bound: int | None,
                site: AssertionSite | None) -> Instr:
    """Build the IR marker instruction (used by the frontend lowering)."""
    from repro.frontend.ctypes_ import U1
    from repro.ir.values import Const

    attrs: dict = {
        "latency_role": role,
        "latency_id": region_id,
        "channel": f"__lat{region_id}_{role}",  # renamed by extraction
    }
    if role == "end":
        attrs["latency_bound"] = bound
        attrs["latency_site"] = site
    return Instr(OpKind.TAP, [], [Const(1, U1)], attrs)
