"""Assertion synthesis orchestration — the toolchain's public entry point.

``synthesize(app, assertions=...)`` clones the application, implements its
``assert()`` statements as in-circuit checkers at the requested level, and
hardware-compiles every process:

* ``"none"``     — ``NDEBUG``: assertions are stripped; this is the
  baseline ("Original") column of the paper's tables.
* ``"unoptimized"`` — each assertion becomes an inline if-statement plus a
  per-process failure stream (Section 4.1).
* ``"optimized"``   — assertion parallelization (separate checker
  processes, Section 3.1), resource replication for array operands in
  pipelined loops (Section 3.2), and shared failure channels packing 32
  assertions per 32-bit stream (Sections 3.3/4.2). Each optimization can be
  disabled individually for ablation studies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.instrument import FAIL_PARAM, instrument_unoptimized, strip_assertions
from repro.core.parallelize import CHECK_FAIL_PARAM, parallelize_function
from repro.core.registry import AssertionRegistry
from repro.core.replicate import replicate_arrays
from repro.core.share import build_collectors
from repro.core.timing_assert import (
    extract_latency_regions,
    has_latency_markers,
    strip_latency_markers,
)
from repro.errors import AssertionSynthesisError
from repro.hls.compiler import compile_process
from repro.hls.constraints import HLSConfig
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from repro.runtime.hwexec import FailStreamDecode, HardwareImage
from repro.runtime.taskgraph import Application

LEVELS = ("none", "unoptimized", "optimized")


@dataclass(frozen=True)
class SynthesisOptions:
    """Fine-grained switches for ablation experiments."""

    parallelize: bool = True
    replicate: bool = True
    share: bool = True
    share_word_width: int = 32
    #: Section 3.3 future-work extension: merge all (division-free) checkers
    #: into one round-robin pipelined checker fed by per-assertion FIFOs.
    multichecker: bool = False
    multichecker_group: int = 32
    #: simulation backend for execution (:mod:`repro.simc`): "compiled"
    #: specializes each schedule to Python bytecode (interp fallback on
    #: unsupported constructs), "interp" forces the tree-walking model
    sim_backend: str = "compiled"

    def key_parts(self) -> tuple:
        """Stable (name, value) tuple of *every* field, for cache keying.

        Enumerating fields dynamically means a newly added option can
        never be forgotten in :func:`repro.lab.cache.cache_key` — any
        field change invalidates cached synthesis artifacts.
        """
        return tuple(sorted(dataclasses.asdict(self).items()))


def synthesize(
    app: Application,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    nabort: bool | None = None,
    faults: dict[str, tuple] | None = None,
    configs: dict[str, HLSConfig] | None = None,
) -> HardwareImage:
    """Synthesize ``app`` into a :class:`HardwareImage`.

    ``faults`` maps process names to translation-fault tuples
    (:mod:`repro.hls.faults`), injected into the hardware side only.
    ``configs`` overrides per-process HLS configuration.
    """
    if assertions not in LEVELS:
        raise AssertionSynthesisError(
            f"assertions={assertions!r}; expected one of {LEVELS}", code="RPR-A002")
    options = options or SynthesisOptions()
    if assertions == "optimized" and not options.parallelize:
        # without parallelization the "optimized" level degenerates to the
        # if-statement conversion; replication/sharing need checker processes
        assertions = "unoptimized"

    hw_app = app.clone(f"{app.name}@{assertions}")
    if nabort is not None:
        hw_app.nabort = nabort
    registry = AssertionRegistry()
    decode: dict[str, FailStreamDecode] = {}
    plans = []

    latency_regions = []
    for pd in list(hw_app.fpga_processes()):
        func = pd.func
        # timing assertions (future-work extension): extract the latency
        # monitor at any level except 'none'
        if has_latency_markers(func):
            if assertions == "none":
                strip_latency_markers(func)
            else:
                spec = extract_latency_regions(func, pd.name)
                for region in spec.regions:
                    hw_app.add_tap(region.start_channel, pd.name,
                                   "__latmon", (1,))
                    hw_app.add_tap(region.end_channel, pd.name,
                                   "__latmon", (1,))
                    latency_regions.append(region)
        if assertions == "none":
            strip_assertions(func)
        elif assertions == "unoptimized":
            n = instrument_unoptimized(
                func, lambda site: registry.register(pd.name, site)
            )
            if n:
                stream_name = f"{pd.name}__afail"
                hw_app.sink(stream_name, f"{pd.name}.{FAIL_PARAM}",
                            role="assert_code")
                table = FailStreamDecode(mode="code")
                for code, (proc, site) in registry.codes.items():
                    if proc == pd.name:
                        table.table[code] = (proc, site)
                decode[stream_name] = table
        else:  # optimized
            res = parallelize_function(
                func,
                pd.name,
                lambda site: registry.register(pd.name, site),
                share=options.share,
            )
            # DCE must precede replication: the inline condition logic that
            # parallelization orphaned still consumes the extract loads, and
            # replication targets loads whose only consumers are taps
            eliminate_dead_code(func)
            if options.replicate:
                replicate_arrays(func)
            plans.extend(res.checkers)
        eliminate_dead_code(func)
        verify_function(func)

    # wire checker processes into the graph
    merged_plans: set[str] = set()
    if plans and options.multichecker and options.share:
        from repro.core.multichecker import build_multichecker, partition_plans
        from repro.runtime.taskgraph import ProcessDef

        mergeable, _individual = partition_plans(plans)
        for gi in range(0, len(mergeable), options.multichecker_group):
            group = mergeable[gi:gi + options.multichecker_group]
            if len(group) < 2:
                continue  # a singleton group gains nothing
            mc = build_multichecker(f"__mchk{gi // options.multichecker_group}",
                                    group)
            arbiter = ProcessDef(name=f"{mc.checker.name}__arb", func=None,
                                 kind="arbiter", daemon=True,
                                 collector_spec=mc.arbiter)
            hw_app.processes[arbiter.name] = arbiter
            slot_widths = []
            for plan in group:
                slot_widths.extend(plan.tap_widths)
            hw_app.add_tap(mc.arbiter.output, arbiter.name, mc.checker.name,
                           (8, *slot_widths))
            hw_app.add_ir_process(mc.checker, daemon=True)
            for plan in group:
                hw_app.add_tap(plan.tap_channel, plan.app_process,
                               arbiter.name, plan.tap_widths)
                merged_plans.add(plan.checker.name)

    for plan in plans:
        if plan.checker.name in merged_plans:
            continue
        hw_app.add_tap(plan.tap_channel, plan.app_process,
                       plan.checker.name, plan.tap_widths)
        hw_app.add_ir_process(plan.checker, daemon=True)
        if plan.fail_mode == "stream":
            stream_name = f"{plan.checker.name}_out"
            hw_app.sink(stream_name, f"{plan.checker.name}.{CHECK_FAIL_PARAM}",
                        role="assert_code")
            decode[stream_name] = FailStreamDecode(
                mode="code", table={plan.code: (plan.app_process, plan.site)}
            )
    if plans and options.share:
        share_res = build_collectors(
            hw_app, plans, registry.lookup, options.share_word_width
        )
        decode.update(share_res.fail_streams)

    # hardware-compile every process
    compiled = {}
    for pd in hw_app.fpga_processes():
        config = (configs or {}).get(pd.name) or pd.config or HLSConfig()
        if faults and pd.name in faults:
            config = HLSConfig(schedule=config.schedule,
                               faults=tuple(faults[pd.name]))
        compiled[pd.name] = compile_process(pd.func, config)

    image = HardwareImage(
        app=hw_app,
        compiled=compiled,
        assert_decode=decode,
        nabort=hw_app.nabort,
        assertion_level=assertions,
        latency_regions=latency_regions,
        sim_backend=options.sim_backend,
    )
    image.registry = registry  # type: ignore[attr-defined]
    return image
