"""Assertion synthesis orchestration — the toolchain's public entry point.

``synthesize(app, assertions=...)`` clones the application, implements its
``assert()`` statements as in-circuit checkers at the requested level, and
hardware-compiles every process:

* ``"none"``     — ``NDEBUG``: assertions are stripped; this is the
  baseline ("Original") column of the paper's tables.
* ``"unoptimized"`` — each assertion becomes an inline if-statement plus a
  per-process failure stream (Section 4.1).
* ``"optimized"``   — assertion parallelization (separate checker
  processes, Section 3.1), resource replication for array operands in
  pipelined loops (Section 3.2), and shared failure channels packing 32
  assertions per 32-bit stream (Sections 3.3/4.2). Each optimization can be
  disabled individually for ablation studies.

The pipeline is split at a per-process seam so synthesis can be
*incremental* (:mod:`repro.lab.incremental`):

* :func:`synth_process` instruments and hardware-compiles ONE process in
  isolation, producing a :class:`ProcessArtifact` — a self-contained,
  picklable unit addressed by :func:`repro.lab.cache.process_cache_key`;
* :func:`assemble_image` replays the app-level wiring (registry codes,
  checker taps, multichecker merging, shared failure collectors) over a
  set of artifacts, producing a :class:`HardwareImage` identical to a
  monolithic run;
* :func:`synthesize` is now exactly ``synth_process`` per process followed
  by ``assemble_image`` — full and incremental synthesis share one code
  path, so their outputs cannot drift apart.

The only cross-process coupling is the error-code numbering: the
:class:`AssertionRegistry` assigns globally sequential codes in process
iteration order, so each artifact is keyed and built with an explicit
``code_base`` (the first code its assertions receive).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.instrument import FAIL_PARAM, instrument_unoptimized, strip_assertions
from repro.core.parallelize import CHECK_FAIL_PARAM, CheckerPlan, parallelize_function
from repro.core.registry import AssertionRegistry
from repro.core.replicate import replicate_arrays
from repro.core.share import build_collectors
from repro.core.timing_assert import (
    extract_latency_regions,
    has_latency_markers,
    strip_latency_markers,
)
from repro.errors import AssertionSynthesisError
from repro.hls.compiler import CompiledProcess, compile_process
from repro.hls.constraints import HLSConfig
from repro.ir.instr import AssertionSite
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from repro.runtime.hwexec import FailStreamDecode, HardwareImage
from repro.runtime.taskgraph import Application, ProcessDef

LEVELS = ("none", "unoptimized", "optimized")


@dataclass(frozen=True)
class SynthesisOptions:
    """Fine-grained switches for ablation experiments."""

    parallelize: bool = True
    replicate: bool = True
    share: bool = True
    share_word_width: int = 32
    #: Section 3.3 future-work extension: merge all (division-free) checkers
    #: into one round-robin pipelined checker fed by per-assertion FIFOs.
    multichecker: bool = False
    multichecker_group: int = 32
    #: simulation backend for execution (:mod:`repro.simc`): "compiled"
    #: specializes each schedule to Python bytecode (interp fallback on
    #: unsupported constructs), "interp" forces the tree-walking model
    sim_backend: str = "compiled"

    def key_parts(self) -> tuple:
        """Stable (name, value) tuple of *every* field, for cache keying.

        Enumerating fields dynamically means a newly added option can
        never be forgotten in :func:`repro.lab.cache.cache_key` — any
        field change invalidates cached synthesis artifacts.
        """
        return tuple(sorted(dataclasses.asdict(self).items()))

    #: fields that change what :func:`synth_process` produces for ONE
    #: process. Everything else is app-assembly-level (``share_word_width``
    #: groups collectors, ``multichecker*`` merges checkers across
    #: processes) or execution-level (``sim_backend``) and deliberately
    #: excluded so per-process artifacts are reused across those variants.
    PROCESS_KEY_FIELDS = ("parallelize", "replicate", "share")

    def process_key_parts(self) -> tuple:
        """The :meth:`key_parts` subset that affects a single process."""
        return tuple(
            (name, getattr(self, name)) for name in self.PROCESS_KEY_FIELDS
        )


@dataclass
class ProcessArtifact:
    """Everything :func:`synth_process` produces for ONE process.

    Self-contained and picklable: :mod:`repro.lab.cache` stores these
    under :func:`repro.lab.cache.process_cache_key` so an app rebuild only
    re-synthesizes the processes whose IR (or options slice) changed.
    """

    name: str
    #: effective assertion level this artifact was built at
    level: str
    #: the instrumented process IR (assertions stripped/converted/tapped)
    func: object
    #: hardware compilation of ``func``
    compiled: CompiledProcess
    #: checker plans with *absolute* error codes (``code_base`` applied)
    plans: list[CheckerPlan] = field(default_factory=list)
    #: per-plan checker compilations under the default
    #: :class:`HLSConfig` — :func:`assemble_image` recompiles a checker
    #: only when a config/fault override names it
    compiled_checkers: dict[str, CompiledProcess] = field(default_factory=dict)
    #: (code, site) pairs in registration order; replayed into the
    #: app-level :class:`AssertionRegistry` at assembly time
    codes: list[tuple[int, AssertionSite]] = field(default_factory=list)
    #: per-process failure stream name ("unoptimized" level only)
    fail_stream: str | None = None
    #: latency-monitor regions extracted from timing assertions
    latency_regions: list = field(default_factory=list)

    @property
    def n_codes(self) -> int:
        """How many error codes this process consumed (the next process's
        ``code_base`` is ``code_base + n_codes``)."""
        return len(self.codes)


def effective_level(assertions: str, options: SynthesisOptions) -> str:
    """The level actually synthesized after degeneration rules.

    Without parallelization the "optimized" level degenerates to the
    if-statement conversion: replication and sharing both require detached
    checker processes to act on.
    """
    if assertions not in LEVELS:
        raise AssertionSynthesisError(
            f"assertions={assertions!r}; expected one of {LEVELS}", code="RPR-A002")
    if assertions == "optimized" and not options.parallelize:
        return "unoptimized"
    return assertions


def synth_process(
    pd: ProcessDef,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    code_base: int = 1,
    config: HLSConfig | None = None,
    fault_spec: tuple | None = None,
) -> ProcessArtifact:
    """Instrument and hardware-compile ONE process in isolation.

    ``code_base`` is the first error code this process's assertions
    receive; codes are assigned sequentially in site-registration order,
    mirroring :class:`AssertionRegistry` (dedup by site ordinal), so
    assembling artifacts with contiguous bases reproduces the exact global
    numbering of a monolithic :func:`synthesize` run.

    ``config``/``fault_spec`` are this process's resolved HLS-config
    override and translation-fault tuple (both key-relevant: the cache
    layer folds them into :func:`repro.lab.cache.process_cache_key`).
    """
    options = options or SynthesisOptions()
    level = effective_level(assertions, options)
    func = pd.func.clone()

    codes: list[tuple[int, AssertionSite]] = []
    by_ordinal: dict[int, int] = {}

    def code_for(site: AssertionSite) -> int:
        if site.ordinal in by_ordinal:
            return by_ordinal[site.ordinal]
        code = code_base + len(codes)
        by_ordinal[site.ordinal] = code
        codes.append((code, site))
        return code

    # timing assertions (future-work extension): extract the latency
    # monitor at any level except 'none'
    latency_regions: list = []
    if has_latency_markers(func):
        if level == "none":
            strip_latency_markers(func)
        else:
            spec = extract_latency_regions(func, pd.name)
            latency_regions.extend(spec.regions)

    plans: list[CheckerPlan] = []
    fail_stream: str | None = None
    if level == "none":
        strip_assertions(func)
    elif level == "unoptimized":
        n = instrument_unoptimized(func, code_for)
        if n:
            fail_stream = f"{pd.name}__afail"
    else:  # optimized
        res = parallelize_function(func, pd.name, code_for, share=options.share)
        # DCE must precede replication: the inline condition logic that
        # parallelization orphaned still consumes the extract loads, and
        # replication targets loads whose only consumers are taps
        eliminate_dead_code(func)
        if options.replicate:
            replicate_arrays(func)
        plans = list(res.checkers)
    eliminate_dead_code(func)
    verify_function(func)

    cfg = config or pd.config or HLSConfig()
    if fault_spec:
        cfg = HLSConfig(schedule=cfg.schedule, faults=tuple(fault_spec))
    compiled = compile_process(func, cfg)
    compiled_checkers = {
        plan.checker.name: compile_process(plan.checker, HLSConfig())
        for plan in plans
    }
    return ProcessArtifact(
        name=pd.name,
        level=level,
        func=func,
        compiled=compiled,
        plans=plans,
        compiled_checkers=compiled_checkers,
        codes=codes,
        fail_stream=fail_stream,
        latency_regions=latency_regions,
    )


def assemble_image(
    app: Application,
    artifacts: dict[str, ProcessArtifact],
    assertions: str,
    options: SynthesisOptions | None = None,
    nabort: bool | None = None,
    faults: dict[str, tuple] | None = None,
    configs: dict[str, HLSConfig] | None = None,
) -> HardwareImage:
    """Assemble per-process artifacts into a :class:`HardwareImage`.

    Replays the app-level wiring — failure sinks, checker taps,
    multichecker merging, shared-failure collectors, registry codes —
    exactly as the monolithic pipeline did, so the result is independent
    of which artifacts came from cache and which were just built.

    ``artifacts`` must cover every FPGA process of ``app`` and have been
    built with contiguous ``code_base`` values in process iteration order
    (a mismatch raises ``RPR-A005``).
    """
    options = options or SynthesisOptions()
    level = effective_level(assertions, options)

    hw_app = app.clone(f"{app.name}@{level}")
    if nabort is not None:
        hw_app.nabort = nabort

    registry = AssertionRegistry()
    decode: dict[str, FailStreamDecode] = {}
    plans: list[CheckerPlan] = []
    latency_regions: list = []

    for pd in list(hw_app.fpga_processes()):
        art = artifacts.get(pd.name)
        if art is None:
            raise AssertionSynthesisError(
                f"no artifact for process {pd.name!r}", code="RPR-A005")
        # splice in a private copy: artifacts may be shared (cache handle,
        # repeated assemblies), and downstream holds mutable references
        func = art.func.clone()
        pd.func = func
        for region in art.latency_regions:
            hw_app.add_tap(region.start_channel, pd.name, "__latmon", (1,))
            hw_app.add_tap(region.end_channel, pd.name, "__latmon", (1,))
            latency_regions.append(region)
        for code, site in art.codes:
            got = registry.register(pd.name, site)
            if got != code:
                raise AssertionSynthesisError(
                    f"artifact for {pd.name!r} was built with code base "
                    f"{art.codes[0][0]} but assembly assigned {got}; "
                    "artifacts must be keyed with contiguous code bases "
                    "in process order", code="RPR-A005")
        if art.fail_stream is not None:
            hw_app.sink(art.fail_stream, f"{pd.name}.{FAIL_PARAM}",
                        role="assert_code")
            table = FailStreamDecode(mode="code")
            for code, site in art.codes:
                table.table[code] = (pd.name, site)
            decode[art.fail_stream] = table
        plans.extend(art.plans)

    # wire checker processes into the graph
    merged_plans: set[str] = set()
    if plans and options.multichecker and options.share:
        from repro.core.multichecker import build_multichecker, partition_plans

        mergeable, _individual = partition_plans(plans)
        for gi in range(0, len(mergeable), options.multichecker_group):
            group = mergeable[gi:gi + options.multichecker_group]
            if len(group) < 2:
                continue  # a singleton group gains nothing
            mc = build_multichecker(f"__mchk{gi // options.multichecker_group}",
                                    group)
            arbiter = ProcessDef(name=f"{mc.checker.name}__arb", func=None,
                                 kind="arbiter", daemon=True,
                                 collector_spec=mc.arbiter)
            hw_app.processes[arbiter.name] = arbiter
            slot_widths = []
            for plan in group:
                slot_widths.extend(plan.tap_widths)
            hw_app.add_tap(mc.arbiter.output, arbiter.name, mc.checker.name,
                           (8, *slot_widths))
            hw_app.add_ir_process(mc.checker, daemon=True)
            for plan in group:
                hw_app.add_tap(plan.tap_channel, plan.app_process,
                               arbiter.name, plan.tap_widths)
                merged_plans.add(plan.checker.name)

    for plan in plans:
        if plan.checker.name in merged_plans:
            continue
        hw_app.add_tap(plan.tap_channel, plan.app_process,
                       plan.checker.name, plan.tap_widths)
        hw_app.add_ir_process(plan.checker, daemon=True)
        if plan.fail_mode == "stream":
            stream_name = f"{plan.checker.name}_out"
            hw_app.sink(stream_name, f"{plan.checker.name}.{CHECK_FAIL_PARAM}",
                        role="assert_code")
            decode[stream_name] = FailStreamDecode(
                mode="code", table={plan.code: (plan.app_process, plan.site)}
            )
    if plans and options.share:
        share_res = build_collectors(
            hw_app, plans, registry.lookup, options.share_word_width
        )
        decode.update(share_res.fail_streams)

    # hardware-compile every process, preferring artifact precompilations;
    # a config/fault override naming a checker forces a fresh compile (the
    # artifact compiled it under the default config)
    checker_pre: dict[str, CompiledProcess] = {}
    for art in artifacts.values():
        checker_pre.update(art.compiled_checkers)
    compiled: dict[str, CompiledProcess] = {}
    for pd in hw_app.fpga_processes():
        art = artifacts.get(pd.name)
        if art is not None:
            compiled[pd.name] = art.compiled
            continue
        overridden = bool((configs or {}).get(pd.name)) or bool(
            faults and pd.name in faults)
        pre = checker_pre.get(pd.name)
        if pre is not None and not overridden:
            compiled[pd.name] = pre
            continue
        config = (configs or {}).get(pd.name) or pd.config or HLSConfig()
        if faults and pd.name in faults:
            config = HLSConfig(schedule=config.schedule,
                               faults=tuple(faults[pd.name]))
        compiled[pd.name] = compile_process(pd.func, config)

    image = HardwareImage(
        app=hw_app,
        compiled=compiled,
        assert_decode=decode,
        nabort=hw_app.nabort,
        assertion_level=level,
        latency_regions=latency_regions,
        sim_backend=options.sim_backend,
    )
    image.registry = registry  # type: ignore[attr-defined]
    return image


def synthesize(
    app: Application,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    nabort: bool | None = None,
    faults: dict[str, tuple] | None = None,
    configs: dict[str, HLSConfig] | None = None,
) -> HardwareImage:
    """Synthesize ``app`` into a :class:`HardwareImage`.

    ``faults`` maps process names to translation-fault tuples
    (:mod:`repro.hls.faults`), injected into the hardware side only.
    ``configs`` overrides per-process HLS configuration.

    Implemented as :func:`synth_process` per FPGA process followed by
    :func:`assemble_image`; :func:`repro.lab.incremental.synthesize_incremental`
    runs the same two steps with a cache lookup in between, so the
    incremental path cannot diverge from this one.
    """
    options = options or SynthesisOptions()
    level = effective_level(assertions, options)

    artifacts: dict[str, ProcessArtifact] = {}
    code_base = 1
    for pd in app.fpga_processes():
        art = synth_process(
            pd, level, options, code_base,
            config=(configs or {}).get(pd.name),
            fault_spec=(faults or {}).get(pd.name),
        )
        artifacts[pd.name] = art
        code_base += art.n_codes
    return assemble_image(app, artifacts, level, options, nabort=nabort,
                          faults=faults, configs=configs)
