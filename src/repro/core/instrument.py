"""Unoptimized in-circuit assertion synthesis (paper Sections 3 and 4.1).

"Semantically, an assert is similar to an if statement. Thus, assertions
could be synthesized by converting each assertion into an if statement,
where the condition for the if statement is the complemented assertion
condition and the body of the if statement transfers all failure
information to the assertion notification function."

This pass performs exactly that conversion on the IR: every
``assert_check`` becomes a control-flow split whose failure arm writes the
assertion's error code to the process's dedicated failure stream. The cost
is what the paper measures: the split adds at least one FSM state per
assertion execution (more for complex conditions or port conflicts), and
each instrumented process gains one CPU-bound streaming channel.
"""

from __future__ import annotations

from repro.frontend.ctypes_ import U32
from repro.ir.function import IRFunction
from repro.ir.instr import AssertionSite, Branch, Instr, Jump
from repro.ir.ops import OpKind
from repro.ir.transform import split_block_at
from repro.ir.values import Const, StreamParam
from repro.errors import AssertionSynthesisError

#: stream parameter name added to instrumented processes
FAIL_PARAM = "__afail"


def find_assert_checks(func: IRFunction) -> list[tuple[str, int]]:
    """(block name, index) of every assert_check, in layout order."""
    out = []
    for bname, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if instr.op == OpKind.ASSERT_CHECK:
                out.append((bname, idx))
    return out


def strip_assertions(func: IRFunction) -> int:
    """Remove every assert_check (the NDEBUG configuration). Condition
    computations die with them via DCE (run by the caller)."""
    removed = 0
    for block in func.blocks.values():
        before = len(block.instrs)
        block.instrs = [i for i in block.instrs if i.op != OpKind.ASSERT_CHECK]
        removed += before - len(block.instrs)
    return removed


def instrument_unoptimized(
    func: IRFunction, code_for, fail_param: str = FAIL_PARAM
) -> int:
    """Convert every assertion to the if-statement form, in place.

    ``code_for(site) -> int`` supplies the error code. Returns the number of
    assertions converted. The failure stream parameter is appended to the
    function's stream list.
    """
    if fail_param in func.stream_names():
        raise AssertionSynthesisError(
            f"{func.name}: already instrumented ({fail_param} exists)", code="RPR-A001")
    converted = 0
    while True:
        sites = find_assert_checks(func)
        if not sites:
            break
        bname, idx = sites[0]
        block = func.blocks[bname]
        instr = block.instrs[idx]
        site: AssertionSite = instr.attrs["assertion"]
        cond = instr.args[0]

        cont = split_block_at(func, bname, idx + 1, cont_hint="acont")
        # the assert itself is now the last instruction of `block`; drop it
        assert block.instrs[idx].op == OpKind.ASSERT_CHECK
        del block.instrs[idx]

        failb = func.new_block("afail")
        failb.instrs.append(
            Instr(
                OpKind.STREAM_WRITE,
                [],
                [Const(code_for(site), U32)],
                {"stream": fail_param, "coord": (site.file, site.line)},
            )
        )
        failb.term = Jump(cont.name)
        block.term = Branch(cond, cont.name, failb.name)
        converted += 1

    if converted:
        func.streams.append(StreamParam(fail_param, 32))
    return converted
