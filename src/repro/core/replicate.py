"""Resource replication (paper Section 3.2).

"High-level synthesis can effectively increase the number of ports by
replicating the shared block RAMs, such that all replicated instances are
updated simultaneously by a single task."

After parallelization, an assertion's array operand survives as an
*extract load* whose only consumer is the tap. Inside a pipelined loop that
load competes with the application's own accesses for the array's port and
degrades the initiation interval (Section 5.4's rate 2 → 3). This pass
gives such loads a private copy: a shadow array receives a duplicate of
every store to the original (the duplicate store targets a different block
RAM, so it co-issues for free), and the assertion-dedicated loads are
retargeted to the shadow. Rate recovers; the paper's measured cost is one
extra pipeline stage (the extract load must still follow the same-iteration
store) plus the shadow block RAM — "reduce performance overhead at the
cost of increased area overhead".

Replication is applied only inside pipelined loops: in sequential code the
port conflict costs a single state only when accesses are consecutive, and
the paper's Table 3 keeps that cycle rather than paying a block RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import IRFunction
from repro.ir.instr import Instr
from repro.ir.ops import OpKind
from repro.ir.values import ArrayDecl


@dataclass
class ReplicationResult:
    shadows: dict[str, str] = field(default_factory=dict)  # original -> shadow
    loads_retargeted: int = 0
    stores_duplicated: int = 0


def _assertion_dedicated_loads(func: IRFunction) -> dict[tuple[str, int], str]:
    """{(block, index): array} for loads whose only consumers are taps."""
    # map temp name -> list of consuming instructions
    consumers: dict[str, list[Instr]] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            for u in instr.uses():
                consumers.setdefault(u.name, []).append(instr)
    out: dict[tuple[str, int], str] = {}
    for bname, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if instr.op != OpKind.LOAD:
                continue
            dest = instr.dest
            uses = consumers.get(dest.name, [])
            if uses and all(u.op == OpKind.TAP for u in uses):
                out[(bname, idx)] = instr.attrs["array"]
    return out


def replicate_arrays(func: IRFunction) -> ReplicationResult:
    """Apply resource replication to assertion-dedicated loads in pipelined
    loops. Mutates ``func``; idempotent on a function without such loads."""
    result = ReplicationResult()
    cfg = CFG.build(func)
    pipelined_blocks: set[str] = set()
    for loop in cfg.pipelined_loops():
        pipelined_blocks |= set(loop.body)

    dedicated = _assertion_dedicated_loads(func)
    target_arrays: set[str] = set()
    retarget: list[tuple[Instr, str]] = []
    for (bname, idx), array in dedicated.items():
        if bname not in pipelined_blocks:
            continue
        load = func.blocks[bname].instrs[idx]
        # replication only pays off when the app also touches the array
        app_accesses = [i for i in func.array_accesses(array) if i is not load]
        if not app_accesses:
            continue
        target_arrays.add(array)
        retarget.append((load, array))

    for array in sorted(target_arrays):
        arr = func.arrays[array]
        shadow_name = f"{array}__shadow"
        if shadow_name not in func.arrays:
            func.arrays[shadow_name] = ArrayDecl(
                shadow_name, arr.elem, arr.size, init=arr.init, const=arr.const
            )
        result.shadows[array] = shadow_name
        # duplicate every store so the shadow mirrors the original
        for block in func.blocks.values():
            new_instrs: list[Instr] = []
            for instr in block.instrs:
                new_instrs.append(instr)
                if instr.op == OpKind.STORE and instr.attrs.get("array") == array:
                    dup = instr.copy()
                    dup.attrs["array"] = shadow_name
                    new_instrs.append(dup)
                    result.stores_duplicated += 1
            block.instrs = new_instrs

    # retarget the extract loads (held by reference: store duplication above
    # shifted indices but not identities)
    for load, array in retarget:
        load.attrs["array"] = result.shadows[array]
        result.loads_retargeted += 1
    return result
