"""Assertion parallelization (paper Section 3.1).

"High-level synthesis tools can minimize the effect of assertions on the
application's control flow graph by executing the assertions in parallel
with the original application … Instead of waiting for the assertion, the
application simply transfers data needed by the assertion task, and then
proceeds."

For each assertion this pass:

1. computes the *support* of the condition — the values a detached checker
   cannot recompute (scalars live at the site, loaded array elements);
2. replaces the inline ``assert_check`` with a single ``tap`` instruction
   wiring those values into a dedicated channel (scalars cost nothing: the
   tap merges into an existing state; array operands keep their extract
   load, which is where the paper's residual 1-cycle overhead comes from);
3. deletes the now-dead inline condition logic (DCE);
4. generates a *checker process*: a pipelined loop that pops tap records,
   re-evaluates the condition, and on failure either writes the assertion's
   error code to its own CPU failure stream (``share=False``) or raises a
   1-bit failure event consumed by a collector (``share=True``,
   Section 4.2) — the latter keeps the checker free of predicated stream
   sends so it can accept a new assertion every cycle (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssertionSynthesisError
from repro.frontend.ctypes_ import U1, U32, CType
from repro.ir.dataflow import condition_support
from repro.ir.function import IRFunction
from repro.ir.instr import AssertionSite, BasicBlock, Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, StreamParam, Temp
from repro.core.instrument import find_assert_checks

#: checker failure stream parameter (direct mode)
CHECK_FAIL_PARAM = "__cfail"


@dataclass
class CheckerPlan:
    """One generated checker process and its plumbing."""

    checker: IRFunction
    tap_channel: str
    tap_widths: tuple[int, ...]
    app_process: str
    site: AssertionSite
    code: int
    #: 'stream' => checker writes the code on its own CPU stream param;
    #: 'bit'    => checker raises a 1-bit event on ``fail_tap``
    fail_mode: str = "stream"
    fail_tap: str | None = None


@dataclass
class ParallelizeResult:
    checkers: list[CheckerPlan] = field(default_factory=list)
    taps_added: int = 0


def _collect_condition_slice(
    block: BasicBlock, root: Temp, support: set[str]
) -> list[int]:
    """Indices (program order) of the instructions computing ``root`` from
    the support values, within ``block``."""
    def_site: dict[str, int] = {}
    for idx, instr in enumerate(block.instrs):
        for d in instr.defs():
            def_site[d.name] = idx
    keep: set[int] = set()
    stack = [root.name]
    while stack:
        name = stack.pop()
        if name in support or name not in def_site:
            continue
        idx = def_site[name]
        if idx in keep:
            continue
        keep.add(idx)
        for u in block.instrs[idx].uses():
            stack.append(u.name)
    return sorted(keep)


def _build_checker(
    name: str,
    tap_channel: str,
    support_order: list[tuple[str, CType]],
    slice_instrs: list[Instr],
    root: Temp,
    code: int,
    fail_mode: str,
    fail_tap: str | None,
    source_file: str,
) -> IRFunction:
    """Construct the checker process IR: a pipelined pop/evaluate loop."""
    chk = IRFunction(name=name, source_file=source_file)
    if fail_mode == "stream":
        chk.streams.append(StreamParam(CHECK_FAIL_PARAM, 32))

    ok = chk.declare_scalar("ok", U1)
    rename: dict[str, Temp] = {}
    dests: list[Temp] = [ok]
    for i, (src_name, ty) in enumerate(support_order):
        v = chk.declare_scalar(f"v{i}", ty)
        rename[src_name] = v
        dests.append(v)

    entry = BasicBlock("entry")
    hdr = BasicBlock("hdr", pipeline=True)
    body = BasicBlock("body")
    failb = BasicBlock("failb")
    latch = BasicBlock("latch")
    exitb = BasicBlock("exitb")
    for b in (entry, hdr, body, failb, latch, exitb):
        chk.blocks[b.name] = b
    chk.entry = "entry"

    entry.term = Jump("hdr")
    hdr.instrs.append(
        Instr(OpKind.TAP_READ, dests, [], {"channel": tap_channel})
    )
    hdr.term = Branch(ok, "body", "exitb")

    # re-materialize the condition from tapped values
    def remap(value):
        if isinstance(value, Temp):
            if value.name in rename:
                return rename[value.name]
            return value  # checker-local temp (renamed below)
        return value

    local: dict[str, Temp] = {}
    for instr in slice_instrs:
        copy = instr.copy()
        copy.args = [
            local.get(a.name, remap(a)) if isinstance(a, Temp) else a
            for a in copy.args
        ]
        new_dests = []
        for d in copy.dests:
            nd = chk.new_temp(d.ty, "c")
            local[d.name] = nd
            new_dests.append(nd)
        copy.dests = new_dests
        copy.attrs.pop("pred", None)
        body.instrs.append(copy)
    cond = local.get(root.name, rename.get(root.name))
    if cond is None:
        raise AssertionSynthesisError(
            f"{name}: condition root {root.name} neither tapped nor recomputed", code="RPR-A020")
    ln = chk.new_temp(U1, "ln")
    body.instrs.append(Instr(OpKind.LNOT, [ln], [cond]))
    body.term = Branch(ln, "failb", "latch")

    if fail_mode == "stream":
        failb.instrs.append(
            Instr(OpKind.STREAM_WRITE, [], [Const(code, U32)],
                  {"stream": CHECK_FAIL_PARAM})
        )
    else:
        failb.instrs.append(
            Instr(OpKind.TAP, [], [Const(1, U1)], {"channel": fail_tap})
        )
    failb.term = Jump("latch")
    latch.term = Jump("hdr")
    exitb.term = Return()
    return chk


def parallelize_function(
    func: IRFunction,
    process_name: str,
    code_for,
    share: bool,
) -> ParallelizeResult:
    """Replace each assert_check in ``func`` with a tap; return checker plans.

    The caller wires the plans into the application graph (tap channels,
    checker processes, failure streams/collectors) and runs DCE on ``func``.
    """
    result = ParallelizeResult()
    for ordinal, (bname, idx) in enumerate(find_assert_checks(func)):
        block = func.blocks[bname]
        instr = block.instrs[idx]
        site: AssertionSite = instr.attrs["assertion"]
        root = instr.args[0]
        if not isinstance(root, Temp):
            raise AssertionSynthesisError(
                f"{func.name}: assert condition is not a temp (lowering bug)", code="RPR-A021")
        support = condition_support(func, bname, root)
        support_order = sorted(support)
        types: list[tuple[str, CType]] = []
        for n in support_order:
            ty = func.scalars.get(n)
            if ty is None:
                raise AssertionSynthesisError(
                    f"{func.name}: support value {n!r} has no scalar type", code="RPR-A022")
            types.append((n, ty))
        slice_idx = _collect_condition_slice(block, root, support)
        slice_instrs = [block.instrs[i] for i in slice_idx]

        tap_channel = f"{process_name}__tap{site.ordinal}"
        tap_args = [Temp(n, ty) for n, ty in types] or [Const(1, U1)]
        tap_widths = tuple(a.ty.width for a in tap_args)
        block.instrs[idx] = Instr(
            OpKind.TAP,
            [],
            tap_args,
            {"channel": tap_channel, "coord": (site.file, site.line)},
        )
        result.taps_added += 1

        code = code_for(site)
        checker_name = f"{process_name}__chk{site.ordinal}"
        fail_mode = "bit" if share else "stream"
        fail_tap = f"{checker_name}__fail" if share else None
        chk = _build_checker(
            checker_name,
            tap_channel,
            types,
            slice_instrs,
            root,
            code,
            fail_mode,
            fail_tap,
            func.source_file,
        )
        result.checkers.append(
            CheckerPlan(
                checker=chk,
                tap_channel=tap_channel,
                tap_widths=tap_widths,
                app_process=process_name,
                site=site,
                code=code,
                fail_mode=fail_mode,
                fail_tap=fail_tap,
            )
        )
        _ = ordinal
    return result
