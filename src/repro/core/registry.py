"""Assertion registry: unique error codes for every assertion site.

The framework "uses an error code that uniquely identifies the failed
assertion based on the line number and file name of the assertion"
(Section 4.1). Codes start at 1 — a zero word on a failure channel is never
a valid failure, which keeps the shared-channel bitmask encoding
unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instr import AssertionSite


@dataclass
class AssertionRegistry:
    """Application-wide error-code assignment."""

    codes: dict[int, tuple[str, AssertionSite]] = field(default_factory=dict)
    by_site: dict[tuple[str, int], int] = field(default_factory=dict)
    _next: int = 1

    def register(self, process: str, site: AssertionSite) -> int:
        key = (process, site.ordinal)
        if key in self.by_site:
            return self.by_site[key]
        code = self._next
        self._next += 1
        self.codes[code] = (process, site)
        self.by_site[key] = code
        return code

    def lookup(self, code: int) -> tuple[str, AssertionSite] | None:
        return self.codes.get(code)

    def message(self, code: int) -> str:
        hit = self.lookup(code)
        if hit is None:
            return f"Assertion failed: <unknown error code {code}>"
        _proc, site = hit
        return site.message()

    def __len__(self) -> int:
        return len(self.codes)
