"""In-circuit assertion synthesis — the paper's primary contribution."""

from repro.core.instrument import (
    FAIL_PARAM,
    find_assert_checks,
    instrument_unoptimized,
    strip_assertions,
)
from repro.core.parallelize import (
    CHECK_FAIL_PARAM,
    CheckerPlan,
    ParallelizeResult,
    parallelize_function,
)
from repro.core.registry import AssertionRegistry
from repro.core.replicate import ReplicationResult, replicate_arrays
from repro.core.share import ShareResult, build_collectors
from repro.core.synth import LEVELS, SynthesisOptions, synthesize

__all__ = [
    "FAIL_PARAM",
    "find_assert_checks",
    "instrument_unoptimized",
    "strip_assertions",
    "CHECK_FAIL_PARAM",
    "CheckerPlan",
    "ParallelizeResult",
    "parallelize_function",
    "AssertionRegistry",
    "ReplicationResult",
    "replicate_arrays",
    "ShareResult",
    "build_collectors",
    "LEVELS",
    "SynthesisOptions",
    "synthesize",
]
