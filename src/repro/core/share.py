"""Resource sharing of failure communication channels (Sections 3.3, 4.2).

"Creating a streaming communication channel per Impulse-C process can
become expensive in terms of resources … a single bit of the stream is used
per assertion … a separate process is created that can handle failure
signals from up to 32 assertions per process if a 32-bit communication
channel is used."

Checkers in ``share`` mode raise 1-bit failure events on dedicated tap
wires. This pass groups up to ``word_width`` checkers per *collector*
process; each collector ORs arriving failure bits into a word and sends it
over a single CPU-bound stream. The CPU notifier decodes set bits back to
assertion error codes. The area effect is what Figures 4 and 5 measure:
failure streams drop from one per process to one per 32 assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parallelize import CheckerPlan
from repro.runtime.hwexec import CollectorSpec, FailStreamDecode
from repro.runtime.taskgraph import Application, ProcessDef


@dataclass
class ShareResult:
    collectors: list[str] = field(default_factory=list)
    fail_streams: dict[str, FailStreamDecode] = field(default_factory=dict)


def build_collectors(
    app: Application,
    plans: list[CheckerPlan],
    registry_lookup,
    word_width: int = 32,
) -> ShareResult:
    """Create collector processes for all bit-mode checker plans."""
    result = ShareResult()
    bit_plans = [p for p in plans if p.fail_mode == "bit"]
    for group_index in range(0, len(bit_plans), word_width):
        group = bit_plans[group_index:group_index + word_width]
        cname = f"__collect{group_index // word_width}"
        stream_name = f"{cname}_out"
        spec = CollectorSpec(output=stream_name)
        decode = FailStreamDecode(mode="bitmask")
        for bit, plan in enumerate(group):
            # failure tap: checker -> collector, 1 bit wide
            app.add_tap(plan.fail_tap, plan.checker.name, cname, (1,))
            spec.inputs.append((plan.fail_tap, bit))
            decode.table[bit] = (plan.app_process, plan.site)
        collector = ProcessDef(name=cname, func=None, kind="collector",
                               daemon=True, collector_spec=spec)
        app.processes[cname] = collector
        app.sink(stream_name, f"{cname}.out", width=word_width,
                 role="assert_bitmask")
        result.collectors.append(cname)
        result.fail_streams[stream_name] = decode
        _ = registry_lookup
    return result
