"""Human rendering of diagnostics: caret-underlined excerpts, color, JSON.

The text format follows the shape users know from production compilers::

    demo.c:4:5: error[RPR-T003]: unknown type 'floot'
      4 |     floot x = 1;
        |     ^^^^^
        = help: supported types are the C integer types and intN/uintN

``sources`` maps filenames to original source text so the excerpt shows
the *unpreprocessed* line (line numbers are preserved exactly by the
preprocessor, so the coordinates line up).
"""

from __future__ import annotations

import json
import re

from repro.diagnostics.core import Diagnostic

__all__ = ["diagnostic_records", "diagnostics_to_json", "render_diagnostic",
           "render_diagnostics", "summary_line"]

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_SEV_COLOR = {"error": "\x1b[31m", "warning": "\x1b[33m", "note": "\x1b[36m"}
_CARET_COLOR = "\x1b[32m"

_WORD_RE = re.compile(r"[A-Za-z0-9_]+")


def _underline_width(line: str, col: int, end_col: int) -> int:
    """How many columns to underline, 1-based ``col`` into ``line``."""
    if end_col > col:
        return end_col - col
    m = _WORD_RE.match(line, col - 1)
    if m:
        return max(1, m.end() - (col - 1))
    return 1


def render_diagnostic(
    diag: Diagnostic,
    sources: dict[str, str] | None = None,
    color: bool = False,
) -> str:
    """One diagnostic as multi-line text with an optional source excerpt."""
    sev_c = _SEV_COLOR.get(diag.severity, "") if color else ""
    bold = _BOLD if color else ""
    reset = _RESET if color else ""
    caret_c = _CARET_COLOR if color else ""

    head = f"{sev_c}{diag.severity}{reset}{bold}[{diag.code}]{reset}: " \
           f"{diag.message}"
    if diag.span is not None and diag.span.known:
        head = f"{bold}{diag.span}{reset}: {head}"
    lines = [head]

    span = diag.span
    source = (sources or {}).get(span.file) if span is not None else None
    if source is not None and span.known:
        src_lines = source.split("\n")
        if 1 <= span.line <= len(src_lines):
            text = src_lines[span.line - 1]
            gutter = f"{span.line} | "
            lines.append(f"  {gutter}{text}")
            if span.col:
                width = _underline_width(text, span.col, span.end_col)
                pad = " " * (len(str(span.line)) + 1) + "| "
                lines.append(
                    f"  {pad}{' ' * (span.col - 1)}"
                    f"{caret_c}{'^' * width}{reset}"
                )
    for note in diag.notes:
        lines.append(f"    = note: {note}")
    if diag.hint:
        lines.append(f"    = help: {diag.hint}")
    return "\n".join(lines)


def render_diagnostics(
    diags: list[Diagnostic],
    sources: dict[str, str] | None = None,
    color: bool = False,
) -> str:
    """All diagnostics in source order, blank-line separated, with a
    summary line."""
    ordered = sorted(diags, key=Diagnostic.sort_key)
    blocks = [render_diagnostic(d, sources=sources, color=color)
              for d in ordered]
    blocks.append(summary_line(ordered, color=color))
    return "\n".join(blocks)


def summary_line(diags: list[Diagnostic], color: bool = False) -> str:
    errors = sum(1 for d in diags if d.severity == "error")
    warnings = sum(1 for d in diags if d.severity == "warning")
    parts = []
    if errors:
        parts.append(f"{errors} error{'s' if errors != 1 else ''}")
    if warnings:
        parts.append(f"{warnings} warning{'s' if warnings != 1 else ''}")
    if not parts:
        return "no diagnostics"
    text = " and ".join(parts) + " generated"
    if color and errors:
        return f"{_SEV_COLOR['error']}{text}{_RESET}"
    return text


def diagnostic_records(diags: list) -> list[dict]:
    """Plain-dict diagnostic records in stable source order.

    Accepts a mix of :class:`Diagnostic` objects and already-serialized
    dicts — the form streamed results embed (serve protocol events, JSONL
    journals), so every machine-readable surface orders diagnostics the
    same way the human renderer does.
    """
    objs = [d if isinstance(d, Diagnostic) else Diagnostic.from_dict(d)
            for d in diags]
    return [d.to_dict() for d in sorted(objs, key=Diagnostic.sort_key)]


def diagnostics_to_json(diags: list[Diagnostic], **extra) -> str:
    """Stable JSON for ``--json`` output and failure bundles."""
    payload = dict(extra)
    payload["diagnostics"] = [d.to_dict()
                              for d in sorted(diags, key=Diagnostic.sort_key)]
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
