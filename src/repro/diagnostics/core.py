"""The :class:`Diagnostic` record — one structured toolchain finding.

Modeled on the production diagnostic infrastructures surveyed in
PAPERS.md (Clang's coded, source-located diagnostics; CBMC's structured
property-violation traces): a stable error code, a severity, a primary
message anchored at a :class:`~repro.diagnostics.span.Span`, secondary
notes and an optional fix hint. Diagnostics serialize to plain JSON
dicts, which is what lab/campaign/difftest result records and failure
bundles store, and what ``repro replay`` compares bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.diagnostics.span import Span

__all__ = ["Diagnostic", "SEVERITIES"]

#: ordered from most to least severe
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code + severity + message (+ span, notes, hint)."""

    code: str
    severity: str
    message: str
    span: Span | None = None
    notes: tuple[str, ...] = ()
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity {self.severity!r} not in {SEVERITIES}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def replace(self, **changes) -> "Diagnostic":
        return _dc_replace(self, **changes)

    def one_line(self) -> str:
        """Compact single-line form for logs and progress output."""
        loc = f"{self.span}: " if self.span is not None else ""
        return f"{loc}{self.severity}[{self.code}]: {self.message}"

    # ---- JSON round trip -------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = self.span.to_dict()
        if self.notes:
            out["notes"] = list(self.notes)
        if self.hint is not None:
            out["hint"] = self.hint
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            code=str(data["code"]),
            severity=str(data.get("severity", "error")),
            message=str(data.get("message", "")),
            span=Span.from_dict(data.get("span")),
            notes=tuple(data.get("notes", ())),
            hint=data.get("hint"),
        )

    def sort_key(self) -> tuple:
        """Source order: file, line, col, then severity rank."""
        span = self.span or Span(file="￿")
        return (span.file, span.line, span.col,
                SEVERITIES.index(self.severity), self.code)
