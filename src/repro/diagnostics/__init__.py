"""Structured diagnostics: coded, source-located, collectable, replayable.

The error-handling backbone of the toolchain:

* :class:`Span` — file/line/col source coordinates threaded from the
  preprocessor through pycparser into lowered IR;
* :class:`Diagnostic` — one structured finding (stable ``RPR-###`` code,
  severity, message, span, notes, fix hint), JSON round-trippable;
* :class:`DiagnosticSink` — collects diagnostics so the frontend can
  recover per-declaration/per-statement and report *all* errors in one
  run, with a strict mode preserving raise-on-first behavior;
* :mod:`~repro.diagnostics.render` — caret-underlined source excerpts
  with optional ANSI color, plus JSON output;
* :mod:`~repro.diagnostics.bundle` — self-contained, replayable failure
  bundles (``repro replay <bundle>``).

Submodules are loaded lazily: :mod:`repro.errors` imports
``repro.diagnostics.span`` while the rest of this package imports
``repro.errors``, and PEP 562 lazy attributes break that cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Span": "repro.diagnostics.span",
    "Diagnostic": "repro.diagnostics.core",
    "SEVERITIES": "repro.diagnostics.core",
    "DiagnosticSink": "repro.diagnostics.sink",
    "diagnostics_from_exception": "repro.diagnostics.bridge",
    "render_diagnostic": "repro.diagnostics.render",
    "render_diagnostics": "repro.diagnostics.render",
    "diagnostics_to_json": "repro.diagnostics.render",
    "FailureBundle": "repro.diagnostics.bundle",
    "write_bundle": "repro.diagnostics.bundle",
    "read_bundle": "repro.diagnostics.bundle",
    "replay_bundle": "repro.diagnostics.bundle",
    "check_source": "repro.diagnostics.engine",
    "CheckResult": "repro.diagnostics.engine",
    "describe_code": "repro.diagnostics.codes",
    "is_valid_code": "repro.diagnostics.codes",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
