"""Collect-mode compilation drivers.

:func:`check_source` runs the whole frontend (preprocess → parse → lower →
IR verify) with a collect-mode sink, so a source with several independent
problems — a bad directive, a duplicate definition, an unknown type, an
unsupported statement — reports *all* of them in one run, Clang-style.
:func:`synth_diagnostics` goes further and attempts full assertion
synthesis when the frontend is clean, bridging any hard error into
diagnostics; it is the engine behind ``repro synth`` and behind replaying
``synth`` failure bundles, so both construct byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics.bridge import diagnostic_from_exception
from repro.diagnostics.core import Diagnostic
from repro.diagnostics.render import diagnostics_to_json, render_diagnostics
from repro.diagnostics.sink import DiagnosticSink
from repro.errors import ReproError

__all__ = ["CheckResult", "check_source", "synth_diagnostics"]


@dataclass
class CheckResult:
    """Everything one collect-mode frontend run produced."""

    filename: str
    source: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: functions that lowered cleanly (unusable for synthesis when
    #: ``has_errors`` — parts of the unit may be missing)
    module: object = None

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.diagnostics]

    def to_json(self, **extra) -> str:
        return diagnostics_to_json(self.diagnostics, **extra)

    def render(self, color: bool = False) -> str:
        return render_diagnostics(self.diagnostics,
                                  sources={self.filename: self.source},
                                  color=color)


def check_source(
    source: str,
    filename: str = "<source>",
    defines: dict[str, str] | None = None,
) -> CheckResult:
    """Frontend-check ``source``, reporting every error in one pass."""
    from repro.frontend.lowering import lower_source
    from repro.ir.verify import verify_module

    sink = DiagnosticSink(strict=False)
    module = None
    try:
        module = lower_source(source, filename=filename, defines=defines,
                              sink=sink)
        if not sink.has_errors:
            verify_module(module, sink=sink)
    except ReproError as exc:  # a raise that escaped the recovery points
        sink.capture(exc)
    except Exception as exc:  # internal error — still report, coded E999
        sink.emit(diagnostic_from_exception(exc))
    return CheckResult(filename=filename, source=source,
                       diagnostics=sink.sorted(), module=module)


def synth_diagnostics(
    source: str,
    filename: str = "<source>",
    defines: dict[str, str] | None = None,
    level: str = "optimized",
    options: dict | None = None,
    feed: list[int] | None = None,
) -> tuple[CheckResult, list[dict]]:
    """Frontend-check, then synthesize if clean.

    Returns ``(check_result, diagnostics_dicts)`` where the dicts cover
    the whole attempt — frontend diagnostics plus any bridged synthesis
    failure. An empty list means the design synthesized cleanly.
    Deterministic for fixed inputs, which is what makes ``synth`` failure
    bundles replay bit-identically.
    """
    check = check_source(source, filename=filename, defines=defines)
    if check.has_errors:
        return check, check.to_dicts()
    diags = [d.to_dict() for d in check.diagnostics]  # warnings/notes
    try:
        from repro.core.synth import SynthesisOptions, synthesize
        from repro.lab.sweep import AppSpec, build_app

        params: dict = {"source": source, "filename": filename}
        if feed:
            params["feed"] = tuple(feed)
        app = build_app(AppSpec.make("csource", **params))
        opts = SynthesisOptions(**(options or {}))
        synthesize(app, assertions=level, options=opts)
    except Exception as exc:
        diags.append(diagnostic_from_exception(exc).to_dict())
    return check, diags
