"""Exception → diagnostic bridge for the hard-error remainder.

Not every failure flows through a sink: HLS scheduling, codegen and the
simulators still raise, and orchestration workers can die on arbitrary
Python exceptions. This bridge turns any caught exception into structured
diagnostic dicts so the lab executor, sweeps, campaigns and difftest can
journal machine-readable failures instead of traceback strings. A
:class:`ReproError` maps to its own coded diagnostic; anything else
becomes the generic internal-error code ``RPR-E999`` with the traceback
preserved as notes.
"""

from __future__ import annotations

import traceback

from repro.diagnostics.core import Diagnostic
from repro.errors import ReproError

__all__ = ["INTERNAL_ERROR_CODE", "diagnostic_from_exception",
           "diagnostics_from_exception"]

INTERNAL_ERROR_CODE = "RPR-E999"


def diagnostic_from_exception(exc: BaseException,
                              max_trace_lines: int = 20) -> Diagnostic:
    """One structured diagnostic for any exception."""
    if isinstance(exc, ReproError):
        diag = exc.diagnostic()
        cause = exc.__cause__
        # concurrent.futures chains a synthetic _RemoteTraceback onto any
        # exception unpickled from a pool worker; noting it would embed a
        # machine-specific traceback and break bit-identical bundle replay
        if cause is not None and not isinstance(cause, ReproError) \
                and type(cause).__name__ != "_RemoteTraceback":
            diag = diag.replace(notes=(
                *diag.notes,
                f"caused by {type(cause).__name__}: {cause}",
            ))
        return diag
    trace = traceback.format_exception(type(exc), exc, exc.__traceback__)
    lines = "".join(trace).rstrip("\n").split("\n")
    if len(lines) > max_trace_lines:
        lines = ["..."] + lines[-max_trace_lines:]
    return Diagnostic(
        code=INTERNAL_ERROR_CODE,
        severity="error",
        message=f"{type(exc).__name__}: {exc}",
        notes=tuple(lines),
        hint="internal error — not a problem with the input design; "
             "please report it with the failure bundle",
    )


def diagnostics_from_exception(exc: BaseException) -> list[dict]:
    """JSON-ready diagnostic dicts for one exception (the shape result
    records and :class:`~repro.lab.executor.PointOutcome` carry)."""
    return [diagnostic_from_exception(exc).to_dict()]
