"""Self-contained, replayable failure bundles.

When a sweep point, campaign run, difftest seed or plain ``repro synth``
fails, the orchestration layer writes a *failure bundle*: a directory
holding everything needed to reproduce the failure on another machine —
the (preprocessed-input) C source, the synthesis options / seed / fault
configuration that selected the failing point, and the structured
diagnostics that were observed. ``repro replay <bundle>`` re-runs the
bundled configuration and compares the fresh diagnostics against the
recorded ones **byte for byte**; exit status 0 means the failure
reproduced exactly.

Layout::

    <bundle>/
      manifest.json      {schema, kind, context}
      diagnostics.json   {"diagnostics": [...]}  (stable JSON)
      source.c           present when the failure has a program attached

``kind`` selects the replay recipe: ``synth`` (frontend+synthesis of the
bundled source), ``sweep`` (one rebuilt sweep point), ``campaign`` (one
regenerated fault scenario at one assertion level) or ``difftest`` (one
three-way differential run).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.diagnostics.bridge import diagnostics_from_exception
from repro.errors import ReproError

__all__ = [
    "BUNDLE_SCHEMA",
    "FailureBundle",
    "ReplayResult",
    "bundle_name",
    "read_bundle",
    "replay_bundle",
    "write_bundle",
]

BUNDLE_SCHEMA = 1
MANIFEST_NAME = "manifest.json"
DIAGNOSTICS_NAME = "diagnostics.json"
SOURCE_NAME = "source.c"

KINDS = ("synth", "sweep", "campaign", "difftest")

_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._-]+")


def bundle_name(point_id: str) -> str:
    """A filesystem-safe directory name for a point id."""
    return _UNSAFE_RE.sub("_", point_id).strip("_") or "point"


def _dump(obj) -> str:
    """The one canonical JSON spelling used on both sides of a replay
    comparison — byte-identical iff the structures are equal."""
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


@dataclass
class FailureBundle:
    """An in-memory view of one bundle directory."""

    path: Path
    kind: str
    context: dict = field(default_factory=dict)
    diagnostics: list = field(default_factory=list)
    source: str | None = None

    def diagnostics_json(self) -> str:
        return _dump({"diagnostics": self.diagnostics})


@dataclass
class ReplayResult:
    """Outcome of re-running a bundle."""

    bundle: FailureBundle
    expected: str     # recorded diagnostics.json text
    actual: str       # freshly produced diagnostics, same canonical form
    diagnostics: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the failure reproduced bit-identically."""
        return self.expected == self.actual


def write_bundle(
    directory: str | Path,
    kind: str,
    diagnostics: list,
    context: dict | None = None,
    source: str | None = None,
) -> Path:
    """Write one bundle; returns its directory path."""
    if kind not in KINDS:
        raise ReproError(f"unknown bundle kind {kind!r}; have {KINDS}",
                         code="RPR-E010")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST_NAME).write_text(_dump({
        "schema": BUNDLE_SCHEMA,
        "kind": kind,
        "context": context or {},
        "has_source": source is not None,
    }))
    (path / DIAGNOSTICS_NAME).write_text(_dump({"diagnostics": diagnostics}))
    if source is not None:
        (path / SOURCE_NAME).write_text(source)
    return path


def read_bundle(path: str | Path) -> FailureBundle:
    """Load a bundle directory written by :func:`write_bundle`."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise ReproError(f"{path}: not a failure bundle (no {MANIFEST_NAME})",
                         code="RPR-E011")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ReproError(
            f"{path}: bundle schema {manifest.get('schema')!r} "
            f"!= supported {BUNDLE_SCHEMA}", code="RPR-E012")
    kind = manifest.get("kind")
    if kind not in KINDS:
        raise ReproError(f"{path}: unknown bundle kind {kind!r}",
                         code="RPR-E013")
    diags = json.loads((path / DIAGNOSTICS_NAME).read_text())["diagnostics"] \
        if (path / DIAGNOSTICS_NAME).exists() else []
    source = (path / SOURCE_NAME).read_text() \
        if (path / SOURCE_NAME).exists() else None
    return FailureBundle(path=path, kind=kind,
                         context=manifest.get("context") or {},
                         diagnostics=diags, source=source)


# ---- replay recipes ---------------------------------------------------------


def _replay_synth(bundle: FailureBundle) -> list:
    from repro.diagnostics.engine import synth_diagnostics

    ctx = bundle.context
    _check, diags = synth_diagnostics(
        bundle.source or "",
        filename=ctx.get("filename", "<source>"),
        defines=ctx.get("defines"),
        level=ctx.get("level", "optimized"),
        options=ctx.get("options"),
        feed=ctx.get("feed"),
    )
    return diags


def _replay_sweep(bundle: FailureBundle) -> list:
    from repro.core.synth import SynthesisOptions, synthesize
    from repro.lab.sweep import AppSpec, build_app
    from repro.platform.resources import estimate_image
    from repro.platform.timing import estimate_fmax

    ctx = bundle.context
    point = ctx.get("point", {})
    params = {k: v for k, v in point.get("app_params", [])}
    if bundle.source is not None:
        params["source"] = bundle.source
    params = {k: tuple(v) if isinstance(v, list) else v
              for k, v in params.items()}
    try:
        # mirror repro.lab.sweep.evaluate_point, minus the cache
        app = build_app(AppSpec.make(point.get("app_kind", "csource"),
                                     **params))
        options = SynthesisOptions(**(point.get("options") or {}))
        image = synthesize(app, assertions=point.get("level", "optimized"),
                           options=options)
        resources = estimate_image(image)
        estimate_fmax(image, resources=resources)
    except Exception as exc:
        return diagnostics_from_exception(exc)
    return []


def _replay_campaign(bundle: FailureBundle) -> list:
    from repro.core.synth import SynthesisOptions
    from repro.faults.campaign import (
        _run_one,
        builtin_targets,
        generate_scenarios,
    )
    from repro.runtime.swsim import software_sim

    ctx = bundle.context
    targets = builtin_targets()
    name = ctx.get("target")
    if name not in targets:
        raise ReproError(
            f"bundle names campaign target {name!r}, which is not a "
            f"builtin; have {sorted(targets)}", code="RPR-E015")
    target = targets[name]
    app = target.build()
    sim = software_sim(app)
    golden = {n: list(words) for n, words in sim.outputs.items()}
    scenarios = generate_scenarios(app, seed=int(ctx.get("seed", 0)),
                                   count=int(ctx.get("count", 8)))
    wanted = [s for s in scenarios if s.name == ctx.get("scenario")]
    if not wanted:
        raise ReproError(
            f"scenario {ctx.get('scenario')!r} not regenerated by seed "
            f"{ctx.get('seed')} — bundle and code out of sync",
            code="RPR-E014")
    options = SynthesisOptions(**(ctx.get("options") or {})) \
        if ctx.get("options") is not None else None
    try:
        _run_one((target.watchdog, app, wanted[0],
                  ctx.get("level", "optimized"), golden,
                  bool(ctx.get("nabort", False)), options, None))
    except Exception as exc:
        return diagnostics_from_exception(exc)
    return []


def _faults_from_context(specs) -> tuple:
    """Rebuild translation-fault objects from ``[name, kwargs]`` pairs."""
    import repro.faults.ir as fault_ir

    faults = []
    for name, kwargs in specs or []:
        cls = getattr(fault_ir, str(name), None)
        if cls is None:
            raise ReproError(f"unknown translation fault {name!r} in bundle",
                             code="RPR-E016")
        faults.append(cls(**kwargs))
    return tuple(faults)


def _replay_difftest(bundle: FailureBundle) -> list:
    from repro.difftest.oracle import divergence_diagnostics, run_difftest

    ctx = bundle.context
    # a bundle naming an unknown fault is a bundle/code mismatch, not a
    # replay outcome — raise like the other context guards (E014/E015)
    faults = _faults_from_context(ctx.get("faults"))
    try:
        report = run_difftest(
            bundle.source or "",
            list(ctx.get("feed") or []),
            filename=ctx.get("filename", "bundle.c"),
            faults=faults,
            max_cycles=int(ctx.get("max_cycles", 200_000)),
        )
    except Exception as exc:
        return diagnostics_from_exception(exc)
    return divergence_diagnostics(report.divergence)


_REPLAYERS = {
    "synth": _replay_synth,
    "sweep": _replay_sweep,
    "campaign": _replay_campaign,
    "difftest": _replay_difftest,
}


def replay_bundle(bundle: str | Path | FailureBundle) -> ReplayResult:
    """Re-run ``bundle`` and compare fresh vs recorded diagnostics."""
    if not isinstance(bundle, FailureBundle):
        bundle = read_bundle(bundle)
    diags = _REPLAYERS[bundle.kind](bundle)
    return ReplayResult(
        bundle=bundle,
        expected=bundle.diagnostics_json(),
        actual=_dump({"diagnostics": diags}),
        diagnostics=diags,
    )
