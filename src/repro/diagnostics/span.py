"""Source locations carried through the whole compile pipeline.

A :class:`Span` is the file/line/column coordinate of a diagnostic,
created in the preprocessor, preserved across pycparser's ``#line``-reset
coordinates, and attached to lowered IR instructions — so an error
surfaced by the scheduler or the RTL simulator can still point at the C
line that caused it (the paper's Section 5.1 "where did it hang"
methodology applied to the toolchain itself).

This module must stay import-free of the rest of :mod:`repro` —
:mod:`repro.errors` imports it, and everything imports ``repro.errors``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Span"]

#: pycparser (and cpp-style) location prefixes: ``file:line[:col][:] msg``
_LOCATION_RE = re.compile(r"^(?P<file>[^:\n]+):(?P<line>\d+)(?::(?P<col>\d+))?:?\s*(?P<rest>.*)$")


@dataclass(frozen=True)
class Span:
    """A source location: ``file:line[:col]``, optionally with an extent.

    ``col`` is 1-based like compiler output; 0 means "column unknown".
    ``end_col`` is exclusive; 0 means "no extent known" (renderers then
    underline the token starting at ``col``).
    """

    file: str = "<source>"
    line: int = 0
    col: int = 0
    end_col: int = 0

    def __str__(self) -> str:
        if self.col:
            return f"{self.file}:{self.line}:{self.col}"
        if self.line:
            return f"{self.file}:{self.line}"
        return self.file

    @property
    def known(self) -> bool:
        return bool(self.line)

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "end_col": self.end_col,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "Span | None":
        if not data:
            return None
        return cls(
            file=str(data.get("file", "<source>")),
            line=int(data.get("line", 0)),
            col=int(data.get("col", 0)),
            end_col=int(data.get("end_col", 0)),
        )

    @classmethod
    def from_coord(cls, coord) -> "Span | None":
        """Build from a pycparser ``Coord`` (or anything with the same
        ``file``/``line``/``column`` attributes)."""
        if coord is None:
            return None
        return cls(
            file=getattr(coord, "file", None) or "<source>",
            line=getattr(coord, "line", 0) or 0,
            col=getattr(coord, "column", 0) or 0,
        )

    @classmethod
    def parse_prefix(cls, message: str) -> "tuple[Span | None, str]":
        """Split a ``file:line[:col]: msg`` prefix off ``message``.

        pycparser's ParseError stringifies its coordinate into the message
        and discards the structured form; this recovers it. Returns
        ``(span, remainder)``; ``(None, message)`` when no prefix matches.
        """
        m = _LOCATION_RE.match(message)
        if m is None:
            return None, message
        span = cls(
            file=m.group("file"),
            line=int(m.group("line")),
            col=int(m.group("col") or 0),
        )
        return span, m.group("rest")
