"""The :class:`DiagnosticSink` — collect instead of raising.

A sink is threaded through the frontend (preprocessor, parser, lowering)
and the IR verifier. Components report problems with :meth:`emit` (a
ready-made :class:`Diagnostic`) or :meth:`capture` (a caught
:class:`ReproError`); in **collect** mode the component then recovers —
skips the bad declaration/statement and keeps going — so one compile run
reports *every* error. In **strict** mode (the default everywhere, so
existing callers see no behavior change) ``capture`` re-raises the
original exception and ``emit`` raises a :class:`DiagnosticError`,
preserving raise-on-first semantics.
"""

from __future__ import annotations

from repro.diagnostics.core import Diagnostic
from repro.errors import DiagnosticError, ReproError

__all__ = ["DiagnosticSink"]


class DiagnosticSink:
    """Accumulates diagnostics; strict mode turns errors back into raises."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.diagnostics: list[Diagnostic] = []

    # ---- reporting -------------------------------------------------------

    def emit(self, diag: Diagnostic) -> None:
        """Record ``diag``; in strict mode an error severity raises."""
        self.diagnostics.append(diag)
        if self.strict and diag.is_error:
            raise DiagnosticError.from_diagnostic(diag)

    def capture(self, exc: ReproError) -> None:
        """Record a caught toolchain error; in strict mode re-raise it.

        This is the recovery point: callers do
        ``except ReproError as exc: sink.capture(exc)`` and continue with
        the next declaration/statement — which in strict mode degenerates
        to not catching at all.
        """
        if self.strict:
            raise exc
        self.diagnostics.append(exc.diagnostic())

    def note(self, message: str, span=None) -> None:
        """Attach a secondary note to the most recent diagnostic."""
        if not self.diagnostics:
            self.emit(Diagnostic(code="RPR-E001", severity="note",
                                 message=message, span=span))
            return
        last = self.diagnostics[-1]
        self.diagnostics[-1] = last.replace(notes=(*last.notes, message))

    # ---- queries ---------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics in source order (stable for JSON output)."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def raise_if_errors(self) -> None:
        """Raise the first collected error (source order) if any."""
        errs = [d for d in self.sorted() if d.is_error]
        if errs:
            raise DiagnosticError.from_diagnostic(errs[0])

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.sorted()]
