"""Error-code conventions and lookup.

Codes are ``RPR-<category letter><3 digits>`` — e.g. ``RPR-P012`` is the
twelfth preprocessor diagnostic. The category table lives next to the
exception hierarchy (:data:`repro.errors.CODE_PREFIXES`) so a class can
never be added without a prefix; this module adds the string-level
helpers tooling needs (validation for the CI lint, prose lookup for
``repro synth --help-codes`` and the README).
"""

from __future__ import annotations

import re

from repro.errors import CODE_PREFIXES

__all__ = ["CODE_RE", "describe_code", "is_valid_code", "render_code_table"]

CODE_RE = re.compile(r"^RPR-[A-Z]\d{3}$")


def is_valid_code(code: str) -> bool:
    """True for a well-formed code with a registered category prefix."""
    return bool(CODE_RE.match(code)) and code[:5] in CODE_PREFIXES


def describe_code(code: str) -> str:
    """Category prose for a code (empty string when unregistered)."""
    return CODE_PREFIXES.get(code[:5], "")


def render_code_table() -> str:
    """The category table as plain text (for ``--help-codes``)."""
    width = max(len(p) for p in CODE_PREFIXES)
    lines = ["error-code categories (RPR-<letter><3 digits>):", ""]
    for prefix, prose in CODE_PREFIXES.items():
        lines.append(f"  {prefix:<{width}}xxx  {prose}")
    return "\n".join(lines)
