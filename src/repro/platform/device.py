"""Target device models.

The paper's platform is an XtremeData XD1000: a dual-Opteron board with an
Altera Stratix-II EP2S180 in one CPU socket. The capacity numbers below are
the denominators printed in the paper's Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceModel:
    """FPGA capacity model (Stratix-II style)."""

    name: str
    aluts: int
    registers: int
    bram_bits: int
    block_interconnect: int
    dsp_mults: int
    #: smallest block-RAM allocation unit (M4K: 4K data + parity)
    m4k_bits: int = 4608


#: the paper's device
EP2S180 = DeviceModel(
    name="EP2S180",
    aluts=143_520,
    registers=143_520,
    bram_bits=9_383_040,
    block_interconnect=536_440,
    dsp_mults=768,
)

#: a mid-size sibling, used in capacity/overflow tests
EP2S60 = DeviceModel(
    name="EP2S60",
    aluts=48_352,
    registers=48_352,
    bram_bits=2_544_192,
    block_interconnect=181_620,
    dsp_mults=288,
)


@dataclass(frozen=True)
class BoardModel:
    """CPU<->FPGA board: one time-multiplexed physical channel.

    ``link_words_per_cycle`` is the per-direction word bandwidth of the
    multiplexed link (the XD1000's HyperTransport socket interface carries
    one 64-bit word per FPGA cycle per direction; our streams are <= 64
    bits wide, so one word per cycle).
    """

    name: str = "XD1000"
    link_words_per_cycle: int = 1
    #: FIFO depth of each CPU-bound stream endpoint (bits are charged by
    #: the resource estimator: depth x (width + flags))
    stream_fifo_depth: int = 16


XD1000 = BoardModel()
