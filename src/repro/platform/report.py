"""Overhead reporting in the paper's table format.

``overhead_report(original_image, assert_image)`` produces the five
resource rows plus the frequency row of Tables 1 and 2, with the same
"absolute (+percent of device)" formatting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.device import DeviceModel, EP2S180
from repro.platform.resources import DesignResources, estimate_image
from repro.platform.timing import TimingReport, estimate_fmax
from repro.utils.tables import render_table


@dataclass
class OverheadReport:
    """Original-vs-assert comparison for one application."""

    device: DeviceModel
    original: DesignResources
    asserted: DesignResources
    original_fmax: TimingReport
    asserted_fmax: TimingReport

    def rows(self) -> list[list[str]]:
        dev = self.device
        o, a = self.original.total, self.asserted.total

        def fmt(value: int, capacity: int) -> str:
            return f"{value} ({100.0 * value / capacity:.2f}%)"

        def dfmt(new: int, old: int, capacity: int) -> str:
            d = new - old
            return f"{d:+d} ({100.0 * d / capacity:+.2f}%)"

        rows = [
            [f"Logic used (out of {dev.aluts})",
             fmt(o.logic, dev.aluts), fmt(a.logic, dev.aluts),
             dfmt(a.logic, o.logic, dev.aluts)],
            [f"Comb. ALUT (out of {dev.aluts})",
             fmt(o.comb_aluts, dev.aluts), fmt(a.comb_aluts, dev.aluts),
             dfmt(a.comb_aluts, o.comb_aluts, dev.aluts)],
            [f"Registers (out of {dev.registers})",
             fmt(o.registers, dev.registers), fmt(a.registers, dev.registers),
             dfmt(a.registers, o.registers, dev.registers)],
            [f"Block RAM ({dev.bram_bits} bits)",
             fmt(o.bram_bits, dev.bram_bits), fmt(a.bram_bits, dev.bram_bits),
             dfmt(a.bram_bits, o.bram_bits, dev.bram_bits)],
            [f"Block interconnect (out of {dev.block_interconnect})",
             fmt(o.interconnect, dev.block_interconnect),
             fmt(a.interconnect, dev.block_interconnect),
             dfmt(a.interconnect, o.interconnect, dev.block_interconnect)],
        ]
        fo, fa = self.original_fmax.fmax_mhz, self.asserted_fmax.fmax_mhz
        rows.append([
            "Frequency (MHz)",
            f"{fo:.1f}", f"{fa:.1f}",
            f"{fa - fo:+.1f} ({100.0 * (fa - fo) / fo:+.2f}%)",
        ])
        return rows

    def render(self, title: str) -> str:
        return render_table(
            ["", "Original", "Assert", "Overhead"], self.rows(), title=title
        )

    @property
    def fmax_overhead_pct(self) -> float:
        fo, fa = self.original_fmax.fmax_mhz, self.asserted_fmax.fmax_mhz
        return 100.0 * (fa - fo) / fo

    @property
    def max_resource_overhead_pct(self) -> float:
        dev, o, a = self.device, self.original.total, self.asserted.total
        pairs = [
            (a.logic - o.logic, dev.aluts),
            (a.comb_aluts - o.comb_aluts, dev.aluts),
            (a.registers - o.registers, dev.registers),
            (a.bram_bits - o.bram_bits, dev.bram_bits),
            (a.interconnect - o.interconnect, dev.block_interconnect),
        ]
        return max(100.0 * d / cap for d, cap in pairs)


def overhead_report(
    original_image, assert_image, device: DeviceModel = EP2S180
) -> OverheadReport:
    ro = estimate_image(original_image, device)
    ra = estimate_image(assert_image, device)
    return OverheadReport(
        device=device,
        original=ro,
        asserted=ra,
        original_fmax=estimate_fmax(original_image, device, resources=ro),
        asserted_fmax=estimate_fmax(assert_image, device, resources=ra),
    )


def point_summary(
    image,
    device: DeviceModel = EP2S180,
    resources: DesignResources | None = None,
    fmax: TimingReport | None = None,
) -> dict:
    """Flat, JSON-able metrics for one synthesized design point.

    This is the record shape the lab result store journals per sweep
    point; pass precomputed ``resources``/``fmax`` to avoid re-estimating.
    """
    res = resources if resources is not None else estimate_image(image, device)
    timing = fmax if fmax is not None else estimate_fmax(
        image, device, resources=res
    )
    summary: dict = {
        "device": device.name,
        "assertion_level": image.assertion_level,
        "processes": len(image.compiled),
    }
    summary.update(res.total.as_dict())
    summary.update(timing.as_dict())
    return summary


def fit_report(image, device: DeviceModel = EP2S180) -> list[str]:
    """Does the design fit the device? Empty list means yes."""
    return estimate_image(image, device).total.check_fits(device)


def execution_summary(result) -> list[str]:
    """Human-readable lines for a :class:`repro.runtime.hwexec.HwResult`.

    Surfaces the watchdog's termination classification (completed /
    aborted / deadlock / livelock / timeout) instead of the legacy binary
    ``hung`` flag, plus detection latency, quarantine and triage detail.
    """
    lines = [f"termination: {result.reason} after {result.cycles} cycles"]
    if result.failures:
        lines.append(
            f"assertion failures: {len(result.failures)} "
            f"(first at cycle {result.first_failure_cycle})"
        )
    if result.aborted_by is not None:
        lines.append(f"aborted by: {result.aborted_by.message()}")
    if result.quarantined:
        lines.append(f"quarantined processes: {', '.join(result.quarantined)}")
    if result.watchdog is not None:
        lines.extend(result.watchdog.render())
    elif result.hung:
        lines.extend(f"  trace: {t}" for t in result.traces)
    for event in result.fault_events:
        lines.append(f"fault event: {event}")
    return lines
