"""Analytic resource estimation for synthesized applications.

Plays the role of Quartus's fitter report in the reproduction: given a
:class:`HardwareImage` it charges ALUTs, registers, block-RAM bits and
block interconnect per structural element, with per-primitive costs
calibrated to Stratix-II ALM characteristics. The absolute numbers land in
the same range as the paper's case studies; the *overheads* (what Tables 1,
2 and Figure 5 actually compare) come out of the same structural elements
the paper names: assertion checker logic, tap registers, and one 576-bit
stream FIFO per CPU-bound channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.binding import BindingReport
from repro.hls.compiler import CompiledProcess
from repro.platform.device import BoardModel, DeviceModel, EP2S180, XD1000
from repro.utils.bitops import clog2


@dataclass
class ResourceReport:
    """One column of the paper's Table 1/2."""

    comb_aluts: int = 0
    registers: int = 0
    bram_bits: int = 0
    interconnect: int = 0
    dsp_mults: int = 0

    @property
    def logic(self) -> int:
        """'Logic used' (occupied ALM sites): registers and combinational
        ALUTs pack two-per-ALM; correlated placement keeps them from fully
        merging, matching Quartus's reported utilization."""
        hi, lo = max(self.comb_aluts, self.registers), min(
            self.comb_aluts, self.registers
        )
        return hi + int(0.46 * lo)

    def add(self, other: "ResourceReport") -> None:
        self.comb_aluts += other.comb_aluts
        self.registers += other.registers
        self.bram_bits += other.bram_bits
        self.interconnect += other.interconnect
        self.dsp_mults += other.dsp_mults

    def as_dict(self) -> dict[str, int]:
        """JSON-able summary (used by the lab result store)."""
        return {
            "logic": self.logic,
            "comb_aluts": self.comb_aluts,
            "registers": self.registers,
            "bram_bits": self.bram_bits,
            "interconnect": self.interconnect,
            "dsp_mults": self.dsp_mults,
        }

    def check_fits(self, device: DeviceModel) -> list[str]:
        problems = []
        if self.comb_aluts > device.aluts:
            problems.append(f"ALUTs {self.comb_aluts} > {device.aluts}")
        if self.registers > device.registers:
            problems.append(f"registers {self.registers} > {device.registers}")
        if self.bram_bits > device.bram_bits:
            problems.append(f"BRAM {self.bram_bits} > {device.bram_bits}")
        if self.interconnect > device.block_interconnect:
            problems.append(
                f"interconnect {self.interconnect} > {device.block_interconnect}"
            )
        return problems


def _op_aluts(instr) -> int:
    """ALUT cost of one operation, constant-operand aware.

    Synthesis specializes constant operands: a bitwise op with a constant
    is rewiring, a shift by a constant is free, a comparison against zero
    is a reduction tree. This matters for fidelity — the paper's
    per-assertion logic (a single ``x > 0`` comparator) is a handful of
    ALUTs, not a full-width comparator.
    """
    from repro.ir.values import Const

    resource = instr.info.resource
    consts = [a for a in instr.args if isinstance(a, Const)]
    # constants synthesize at the width of the variable operand (a uint8
    # compared against the literal 127 is an 8-bit comparator, not a 32-bit
    # one, regardless of C's promotion rules)
    var_widths = [
        a.ty.width for a in instr.args
        if hasattr(a, "ty") and not isinstance(a, Const)
    ]
    width = max(
        var_widths
        or [d.ty.width for d in instr.dests]
        or [a.ty.width for a in instr.args if hasattr(a, "ty")]
        or [1]
    )
    if resource == "addsub":
        return width  # carry chain, constant or not
    if resource == "compare":
        if consts and consts[0].value == 0:
            return (width + 5) // 6 + 1  # zero test: OR-reduce
        if consts:
            return (width + 2) // 3
        return width // 2 + 1
    if resource == "logic":
        if consts:
            return 0  # masking with a constant is wiring
        return (width + 1) // 2
    if resource == "shift":
        if consts:
            return 0  # constant shift is wiring
        return (width * max(1, clog2(max(2, width)))) // 2
    if resource == "divide":
        return width * 4
    if resource == "mult":
        return 4  # glue only; the multiplier maps to a DSP block
    return width


def _fu_aluts(fu) -> int:
    """A shared functional unit is as big as its largest bound operation."""
    return max((_op_aluts(op.instr) for op in fu.ops), default=fu.width)


@dataclass
class ProcessResources:
    name: str
    report: ResourceReport
    detail: dict = field(default_factory=dict)


def estimate_process(cp: CompiledProcess) -> ProcessResources:
    """Charge one process's datapath, FSM, memories and endpoints."""
    func = cp.hw_func
    binding: BindingReport = cp.binding
    r = ResourceReport()
    detail: dict = {}

    # datapath functional units + sharing muxes
    fu_aluts = 0
    for fu in binding.fus:
        fu_aluts += _fu_aluts(fu)
        if fu.resource == "mult":
            r.dsp_mults += 1
    # a 6-input ALUT absorbs ~3 steering-mux bits alongside function logic
    mux_aluts = binding.mux_bits() // 6
    r.comb_aluts += fu_aluts + mux_aluts
    detail["fu_aluts"] = fu_aluts
    detail["mux_aluts"] = mux_aluts

    # registers: one per scalar bit (Impulse-C registers every C variable),
    # plus pipeline stage-valid bits
    scalar_regs = sum(ty.width for ty in func.scalars.values())
    pipe_regs = sum(ps.latency for ps in cp.schedule.pipelines.values())
    r.registers += scalar_regs + pipe_regs
    detail["scalar_regs"] = scalar_regs

    # FSM: state register + next-state/decode logic. Pipeline stages are
    # not decoded FSM states — they carry shift-register valid bits and a
    # small initiation controller per pipeline instead.
    seq_states = sum(bs.length for bs in cp.schedule.blocks.values())
    pipe_stages = sum(ps.latency for ps in cp.schedule.pipelines.values())
    state_bits = clog2(max(2, seq_states + 1))
    r.registers += state_bits
    # pipeline stage-valid bits are registers (charged above via pipe_regs);
    # each pipeline needs only a small initiation controller in logic
    fsm_aluts = seq_states + 2 * len(cp.schedule.pipelines)
    r.comb_aluts += fsm_aluts
    detail["fsm_states"] = seq_states + pipe_stages

    # select ops and predication enables (not bound as FUs)
    from repro.ir.ops import OpKind

    select_aluts = 0
    pred_temps: set[str] = set()
    for instr in func.instructions():
        if instr.op == OpKind.SELECT and instr.dest is not None:
            select_aluts += instr.dest.ty.width
        pred = instr.attrs.get("pred")
        if pred is not None:
            pred_temps.add(pred.name)
    # one squash/enable gate per distinct predicate
    select_aluts += len(pred_temps)
    r.comb_aluts += select_aluts

    # local arrays -> block RAM (rounded up to M4K granularity happens at
    # the design level; bits are charged raw here like the paper's tables)
    array_bits = sum(arr.bits for arr in func.arrays.values())
    r.bram_bits += array_bits
    detail["array_bits"] = array_bits

    # stream endpoints inside the process (handshake + data register)
    endpoint_aluts = 0
    endpoint_regs = 0
    for sp in func.streams:
        # Impulse-C stream endpoints carry handshake FSMs and data staging
        endpoint_aluts += 10 + sp.width // 4
        endpoint_regs += 4 + sp.width // 6
    r.comb_aluts += endpoint_aluts
    r.registers += endpoint_regs

    # interconnect: scales with logic plus per-endpoint routing
    r.interconnect = int(
        1.35 * r.comb_aluts + 0.45 * r.registers + 14 * len(func.streams)
    )
    return ProcessResources(cp.name, r, detail)


@dataclass
class DesignResources:
    """Whole-design estimate: what the paper's tables report."""

    total: ResourceReport
    processes: list[ProcessResources]
    channel_bits: int
    channel_count: int
    device: DeviceModel

    def utilization(self) -> float:
        return self.total.comb_aluts / self.device.aluts


def estimate_image(
    image,
    device: DeviceModel = EP2S180,
    board: BoardModel = XD1000,
) -> DesignResources:
    """Estimate the full application: processes + channels + board glue."""
    total = ResourceReport()
    per_process = []
    for cp in image.compiled.values():
        pr = estimate_process(cp)
        per_process.append(pr)
        total.add(pr.report)

    # channels: each stream gets a FIFO (the paper's +576-bit observation:
    # 16 deep x (32 data + 4 status) = 576 bits per channel)
    channel_bits = 0
    channel_count = 0
    for sd in image.app.streams.values():
        channel_count += 1
        bits = board.stream_fifo_depth * (sd.width + 4)
        channel_bits += bits
        total.bram_bits += bits
        if sd.cpu_bound or sd.cpu_fed:
            # CPU-bound channels pay the board wrapper: DMA descriptor
            # logic plus a slot in the physical link's time multiplexer.
            # This is the per-channel cost that resource sharing
            # amortizes (Figures 4/5).
            total.comb_aluts += 24
            total.registers += 18
            total.interconnect += 60
        else:
            total.comb_aluts += 9
            total.registers += 7
            total.interconnect += 22
    for td in image.app.taps.values():
        width = sum(td.widths)
        bits = 8 * (width + 2)  # taps use shallow dedicated FIFOs
        channel_bits += bits
        total.bram_bits += bits
        total.comb_aluts += 1  # a tap is wiring plus a shallow FIFO
        total.registers += 4   # control only: it taps an existing register
        total.interconnect += 8
        _ = width

    # collector pseudo-processes: sticky word + OR tree + endpoint
    for pd in image.app.processes.values():
        if pd.kind == "collector" and pd.collector_spec is not None:
            n = len(pd.collector_spec.inputs)
            total.comb_aluts += 8 + n
            total.registers += 36
            total.interconnect += 30 + n

    return DesignResources(
        total=total,
        processes=per_process,
        channel_bits=channel_bits,
        channel_count=channel_count,
        device=device,
    )
