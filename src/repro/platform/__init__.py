"""Device, resource and timing models (the reproduction's Quartus stand-in)."""

from repro.platform.device import EP2S60, EP2S180, XD1000, BoardModel, DeviceModel
from repro.platform.report import OverheadReport, fit_report, overhead_report
from repro.platform.resources import (
    DesignResources,
    ProcessResources,
    ResourceReport,
    estimate_image,
    estimate_process,
)
from repro.platform.timing import TimingParams, TimingReport, estimate_fmax

__all__ = [
    "EP2S60",
    "EP2S180",
    "XD1000",
    "BoardModel",
    "DeviceModel",
    "OverheadReport",
    "fit_report",
    "overhead_report",
    "DesignResources",
    "ProcessResources",
    "ResourceReport",
    "estimate_image",
    "estimate_process",
    "TimingParams",
    "TimingReport",
    "estimate_fmax",
]
