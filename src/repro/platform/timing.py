"""Analytic maximum-frequency model (the reproduction's Quartus timing
analyzer).

The critical path is assembled from structural facts of the synthesized
design rather than fitted per benchmark:

* **logic depth** — the deepest combinational chain any control step
  actually schedules (the scheduler records per-instruction chain depth);
* **embedded delays** — a block-RAM flow-through read or a DSP multiplier
  in the chain adds its access time;
* **channel multiplexing pressure** — every CPU-bound logical stream takes
  a slot in the board-side time multiplexer; its fan-in grows the mux tree
  and the routing spread. This is the term that reproduces Figure 4: 128
  unoptimized assertion streams collapse Fmax by ~19%, while the shared
  (1-per-32) channels leave it within a percent of the original;
* **congestion** — a quadratic utilization term (negligible below ~50%
  utilization, as on the paper's 9%-utilized case studies);
* **placement jitter** — a deterministic ±1.5% hash of the design
  fingerprint, reproducing the run-to-run non-monotonicity the paper notes
  in Section 5.3 (their edge-detect "Assert" build came out *faster* than
  the original).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ops import OpKind
from repro.platform.device import DeviceModel, EP2S180
from repro.platform.resources import DesignResources, estimate_image
from repro.utils.bitops import clog2
from repro.utils.idgen import stable_fingerprint


@dataclass(frozen=True)
class TimingParams:
    """Delay constants (ns), Stratix-II-flavoured."""

    t_reg: float = 1.00          # clk->Q + setup
    t_lut_level: float = 0.65    # one LUT + local routing
    t_bram: float = 2.30         # M4K flow-through access
    t_dsp: float = 2.40          # DSP multiplier
    t_mux_per_stream: float = 0.0045   # linear fan-in/routing spread (CPU slot)
    internal_stream_weight: float = 0.1  # internal streams route locally
    t_mux_level: float = 0.02          # per mux-tree level
    t_fanout_per_process: float = 0.004  # global control fanout past the knee
    fanout_knee: int = 32                # paper: Fmax flat until ~32 processes
    t_congestion: float = 3.0          # * utilization^2
    #: minimum achievable period: clock network, wrapper interface and
    #: board-level timing put a ceiling on Fmax regardless of user logic
    t_floor: float = 4.40
    jitter: float = 0.015              # +/- fraction


@dataclass
class TimingReport:
    fmax_mhz: float
    critical_path_ns: float
    contributions: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.fmax_mhz:.1f} MHz ({self.critical_path_ns:.2f} ns)"

    def as_dict(self) -> dict[str, float]:
        """JSON-able summary (used by the lab result store)."""
        return {
            "fmax_mhz": round(self.fmax_mhz, 4),
            "critical_path_ns": round(self.critical_path_ns, 4),
        }


def _design_depth(image) -> tuple[int, bool, bool]:
    """(max chain depth, bram on path, dsp on path) across all processes."""
    max_depth = 1
    bram_on_path = False
    dsp_on_path = False
    for cp in image.compiled.values():
        func = cp.hw_func
        for bname, bs in cp.schedule.blocks.items():
            block = func.blocks[bname]
            step_has_load: dict[int, bool] = {}
            step_has_mul: dict[int, bool] = {}
            for idx, st in bs.instr_step.items():
                instr = block.instrs[idx]
                if instr.op == OpKind.LOAD:
                    step_has_load[st] = True
                if instr.op == OpKind.MUL:
                    step_has_mul[st] = True
            for idx, depth in bs.instr_depth.items():
                st = bs.instr_step[idx]
                max_depth = max(max_depth, depth)
                if depth >= 1 and step_has_load.get(st):
                    bram_on_path = True
                if step_has_mul.get(st):
                    dsp_on_path = True
        for ps in cp.schedule.pipelines.values():
            steps_with_load = {
                ps.instr_step[i]
                for i, ins in enumerate(ps.instrs)
                if ins.op == OpKind.LOAD
            }
            for i, ins in enumerate(ps.instrs):
                if ins.op == OpKind.MUL:
                    dsp_on_path = True
                depth = ps.instr_depth.get(i, ins.info.levels)
                max_depth = max(max_depth, depth)
                if depth >= 1 and ps.instr_step[i] in steps_with_load:
                    bram_on_path = True
    return max_depth, bram_on_path, dsp_on_path


def estimate_fmax(
    image,
    device: DeviceModel = EP2S180,
    params: TimingParams = TimingParams(),
    resources: DesignResources | None = None,
) -> TimingReport:
    """Estimate the design's maximum clock frequency."""
    resources = resources or estimate_image(image, device)
    depth, bram_on_path, dsp_on_path = _design_depth(image)

    t_logic = params.t_reg + depth * params.t_lut_level
    t_embed = 0.0
    if bram_on_path:
        t_embed += params.t_bram
    if dsp_on_path:
        t_embed += params.t_dsp

    # channel multiplexing: every CPU-bound or CPU-fed logical stream takes
    # a slot in the physical link's time multiplexer
    cpu_streams = sum(
        1 for sd in image.app.streams.values() if sd.cpu_bound or sd.cpu_fed
    )
    # internal streams add local routing but not board-mux slots
    internal_streams = len(image.app.streams) - cpu_streams
    t_mux = (
        params.t_mux_per_stream
        * (cpu_streams + params.internal_stream_weight * internal_streams)
        + params.t_mux_level * clog2(max(2, cpu_streams + 1))
    )

    # global control/clock-enable fanout: flat until ~32 processes, then
    # the spread across the die starts to cost (Section 5.3's observation)
    n_procs = sum(
        1 for pd in image.app.fpga_processes() if not pd.daemon
    )
    t_fan = params.t_fanout_per_process * max(0, n_procs - params.fanout_knee)

    u = resources.utilization()
    t_cong = params.t_congestion * u * u

    path = max(t_logic + t_embed + t_mux + t_fan + t_cong, params.t_floor)

    # deterministic placement jitter in [-jitter, +jitter]
    fp = stable_fingerprint(
        sorted(image.compiled),
        sorted(image.app.streams),
        resources.total.comb_aluts,
        resources.total.registers,
    )
    frac = ((fp % 10_000) / 10_000.0) * 2.0 - 1.0
    path *= 1.0 + params.jitter * frac

    fmax = 1000.0 / path
    return TimingReport(
        fmax_mhz=fmax,
        critical_path_ns=path,
        contributions={
            "logic_ns": t_logic,
            "embedded_ns": t_embed,
            "mux_ns": t_mux,
            "congestion_ns": t_cong,
            "depth": depth,
            "cpu_streams": cpu_streams,
            "utilization": u,
            "jitter_frac": frac,
        },
    )
