"""Per-point retry policy with backoff, jitter and a circuit breaker.

At campaign scale (thousands of fault scenarios and fuzz seeds), worker
crashes and hangs are routine, not exceptional — a single flaky point must
not cost a rerun of the whole sweep, and a systematically broken
configuration must not triple its wall-clock by retrying every point
three times. This module is the policy half of that trade:

* :class:`RetryPolicy` decides *whether* a failed point runs again
  (transient-vs-permanent classification from the structured RPR
  diagnostic codes the executor attaches: worker crashes ``RPR-E001``,
  timeouts ``RPR-E002`` and repeated pool breaks ``RPR-E003`` are
  transient; synthesis/toolchain errors are permanent) and *when*
  (exponential backoff with deterministic jitter, so two shards retrying
  the same cache do not stampede in lockstep);
* :class:`CircuitBreaker` bounds retry storms: once more than
  ``threshold`` of a statistically meaningful sample of points has
  failed, the campaign degrades to no-retry mode with a single
  ``RPR-E004`` diagnostic — a broken config fails fast instead of
  failing three times slower.

Determinism: jitter is derived from :func:`stable_fingerprint` over
``(seed, token, attempt)``, never from ``random`` or the clock, so a
resumed or re-sharded run backs off identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics.core import Diagnostic
from repro.utils.idgen import stable_fingerprint

__all__ = [
    "TRANSIENT_CODES",
    "BREAKER_CODE",
    "CircuitBreaker",
    "RetryPolicy",
    "is_transient",
    "is_transient_exception",
]

#: executor-harness diagnostic codes that mark an outcome as retryable:
#: the *fabric* failed (crash, hang, broken pool), not the point itself.
#: The serve layer contributes its own transients — capacity rejections
#: (RPR-V002), a draining daemon (RPR-V004), an unreachable daemon
#: (RPR-V006) and a mid-stream disconnect after acceptance (RPR-V007) —
#: so the fabric router and the daemon client classify network faults
#: with the *same* policy campaigns use for worker faults.
TRANSIENT_CODES = frozenset({
    "RPR-E001", "RPR-E002", "RPR-E003",
    "RPR-V002", "RPR-V004", "RPR-V006", "RPR-V007",
})

#: emitted once when the circuit breaker trips a campaign into no-retry
BREAKER_CODE = "RPR-E004"


def is_transient(outcome) -> bool:
    """True when a non-ok :class:`PointOutcome` is worth re-running.

    Classification is by diagnostic code, not status string: a ``failed``
    point whose diagnostics carry a synthesis error (``RPR-L...``,
    ``RPR-T...``) is deterministic and will fail again; one whose
    diagnostics carry only harness codes (crash/timeout) is transient.
    """
    codes = {d.get("code") for d in (outcome.diagnostics or ())
             if isinstance(d, dict)}
    codes.discard(None)
    if not codes:
        # no structured diagnostics at all: an unclassified harness
        # failure — treat as transient (a retry can only help)
        return outcome.status in ("timeout", "failed")
    return bool(codes) and codes <= TRANSIENT_CODES


def is_transient_exception(exc: BaseException) -> bool:
    """True when an exception carries a transient diagnostic code.

    The one classification seam for exception-shaped failures (the serve
    client's connection errors, a fabric shard's rejection): a
    :class:`~repro.errors.ReproError` whose ``code`` is in
    :data:`TRANSIENT_CODES` is worth retrying elsewhere or later.
    """
    return getattr(exc, "code", None) in TRANSIENT_CODES


@dataclass
class CircuitBreaker:
    """Degrades a campaign to no-retry mode when failures are systemic.

    ``observe`` is fed every *final* point outcome; once at least
    ``min_points`` have been seen and the failure fraction exceeds
    ``threshold``, the breaker opens and stays open — retrying is then a
    wall-clock tax on a configuration that is broken, not unlucky.
    """

    threshold: float = 0.25
    min_points: int = 20
    ok: int = 0
    failed: int = 0
    open: bool = False
    #: the one-shot diagnostic dict recorded when the breaker tripped
    tripped_diagnostic: dict | None = None

    def observe(self, point_ok: bool) -> None:
        if point_ok:
            self.ok += 1
        else:
            self.failed += 1
        total = self.ok + self.failed
        if (not self.open and total >= self.min_points
                and self.failed / total > self.threshold):
            self.open = True
            self.tripped_diagnostic = Diagnostic(
                code=BREAKER_CODE,
                severity="warning",
                message=(
                    f"retry circuit breaker open: {self.failed}/{total} "
                    f"points failing (> {self.threshold:.0%}); degrading "
                    "to no-retry mode — fix the configuration instead of "
                    "retrying it"),
            ).to_dict()

    def as_dict(self) -> dict:
        return {"ok": self.ok, "failed": self.failed, "open": self.open,
                "threshold": self.threshold, "min_points": self.min_points}


@dataclass
class RetryPolicy:
    """How many times, and how fast, one point may run.

    ``max_attempts`` counts every execution (1 = no retries). Delay for
    attempt ``n`` (the one about to run, 2-based for retries) is
    ``base_delay * 2**(n - 2)`` capped at ``max_delay``, stretched by up
    to ``jitter`` (a deterministic fraction derived from the point token,
    so concurrent shards desynchronize without a shared RNG).
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    breaker: CircuitBreaker | None = field(default_factory=CircuitBreaker)

    def should_retry(self, outcome, attempt: int) -> bool:
        """May ``outcome`` (from execution number ``attempt``) re-run?"""
        if attempt >= self.max_attempts:
            return False
        if self.breaker is not None and self.breaker.open:
            return False
        return is_transient(outcome)

    def delay(self, attempt: int, token: object = "") -> float:
        """Seconds to wait before execution number ``attempt`` (>= 2)."""
        backoff = self.base_delay * (2.0 ** max(0, attempt - 2))
        backoff = min(backoff, self.max_delay)
        u = (stable_fingerprint(self.seed, token, attempt) % 10_000) / 10_000
        return backoff * (1.0 + self.jitter * u)

    def observe(self, point_ok: bool) -> None:
        """Feed one *final* outcome to the breaker (no-op without one)."""
        if self.breaker is not None:
            self.breaker.observe(point_ok)

    @property
    def breaker_open(self) -> bool:
        return self.breaker is not None and self.breaker.open

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "breaker": self.breaker.as_dict() if self.breaker else None,
        }
