"""Incremental app synthesis through the per-process artifact cache.

:func:`repro.core.synth.synthesize` is already structured as
``synth_process`` per FPGA process followed by ``assemble_image``; this
module inserts a :func:`repro.lab.cache.process_cache_key` lookup between
the two, so synthesizing an app means: fingerprint each process, rebuild
only the ones whose key misses, and assemble the image from the artifact
set. Editing one process of an N-process app costs one process synthesis
plus assembly instead of N — the warm-edit latency the serve daemon's
submit path now rides on.

Because full and incremental synthesis share the exact same two-phase
pipeline, their outputs are identical by construction (and pinned
byte-identical by ``tests/lab/test_incremental.py``).

Each cache miss is filled under a :class:`repro.lab.cache.FillLease`, so
N workers/daemons cold-starting the same point perform exactly one
synthesis per process while the rest wait and read the filled entries.
"""

from __future__ import annotations

from repro.core.synth import (
    ProcessArtifact,
    SynthesisOptions,
    assemble_image,
    effective_level,
    synth_process,
)
from repro.lab.cache import SynthesisCache, process_cache_key
from repro.platform.device import EP2S180, DeviceModel
from repro.runtime.hwexec import HardwareImage
from repro.runtime.taskgraph import Application

__all__ = ["synthesize_incremental"]


def synthesize_incremental(
    app: Application,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    cache: SynthesisCache | None = None,
    device: DeviceModel = EP2S180,
    nabort: bool | None = None,
    faults: dict[str, tuple] | None = None,
    configs: dict[str, object] | None = None,
    retry=None,
) -> tuple[HardwareImage, dict]:
    """Synthesize ``app`` reusing cached per-process artifacts.

    Returns ``(image, info)`` where ``image`` is identical to
    ``synthesize(app, ...)`` and ``info`` reports the incremental work:

    * ``processes``    — FPGA process count;
    * ``proc_hits``    — artifacts reused from the cache;
    * ``proc_misses``  — artifacts synthesized (= ``resyntheses``);
    * ``resyntheses``  — processes actually rebuilt this call;
    * ``partial_rebuild`` — True when the call both reused and rebuilt
      (the edit-one-process case the whole seam exists for).

    ``cache=None`` (or a disabled cache) degrades to a full resynthesis
    with the same return shape.
    """
    options = options or SynthesisOptions()
    level = effective_level(assertions, options)
    cache = cache if cache is not None else SynthesisCache(None)

    artifacts: dict[str, ProcessArtifact] = {}
    code_base = 1
    hits = 0
    misses = 0
    for pd in app.fpga_processes():
        config = (configs or {}).get(pd.name)
        fault_spec = (faults or {}).get(pd.name)
        key = process_cache_key(
            pd.name, str(pd.func), level, options, code_base,
            device=device, config=config or pd.config,
            fault_spec=fault_spec,
        )

        def produce(pd=pd, config=config, fault_spec=fault_spec,
                    base=code_base):
            return synth_process(pd, level, options, base,
                                 config=config, fault_spec=fault_spec)

        art, filled = cache.get_or_fill_process(key, produce, retry=retry)
        if filled:
            misses += 1
        else:
            hits += 1
        artifacts[pd.name] = art
        code_base += art.n_codes

    image = assemble_image(app, artifacts, level, options, nabort=nabort,
                           faults=faults, configs=configs)
    partial = 0 < misses < len(artifacts)
    if partial:
        cache.note_partial_rebuild()
    info = {
        "processes": len(artifacts),
        "proc_hits": hits,
        "proc_misses": misses,
        "resyntheses": misses,
        "partial_rebuild": partial,
    }
    return image, info
