"""Deterministic fault injection for the lab fabric itself.

:mod:`repro.faults` injects faults into *simulated hardware* to measure
whether in-circuit assertions catch them; this module injects faults into
the *campaign infrastructure* — worker processes and the result journal —
to prove that the executor/retry/store/shard stack survives its own
failure modes. Same philosophy, one layer down: the verification
infrastructure is itself a system under test.

Seven fault kinds, mirroring what real million-point campaigns see:

``crash``
    the worker process dies mid-point (``os._exit``), exactly like a
    segfaulting synthesis job — exercises pool-break salvage, RPR-E001
    classification and retry;
``hang``
    the worker sleeps forever — exercises deadline-based timeouts,
    stuck-worker hard-kills and RPR-E002 retry;
``torn_write``
    the *driver* process is killed between appending a result record and
    fsyncing it, leaving a torn JSONL line — exercises
    :class:`repro.lab.store.StoreStats` corruption counting and
    resume-to-identical-results semantics.

Four network-layer kinds aim the same philosophy at the serve fabric
(the multi-node daemon mesh of :mod:`repro.serve`):

``connect_refuse``
    the client's connect attempt raises ``ConnectionRefusedError`` —
    exercises the client's bounded reconnect retries (RPR-V006);
``stream_cut``
    the daemon closes the connection after streaming ``accepted`` but
    before the terminal event — exercises truncated-stream RPR-V007
    classification and fabric re-routing;
``reply_delay``
    the daemon sleeps ``delay_s`` before the terminal event — exercises
    client deadlines and straggler behavior;
``daemon_kill``
    the daemon SIGKILLs itself as it starts executing a job — the
    hardest fault the fabric must survive: clients see a dead peer,
    the write-ahead journal sees an orphaned job, and the fabric
    router must re-route the shard. **Never arm this in-process** (it
    kills the whole interpreter); it is meant for subprocess daemons.

``lease_kill``
    the worker SIGKILLs itself right after claiming a cache fill lease
    (:meth:`repro.lab.cache.SynthesisCache.acquire_fill`) — exercises
    stale-lease detection by owner pid and atomic takeover, the property
    that keeps a crashed filler from wedging every waiter. **Never arm
    in-process.**

Determinism: whether a fault fires for a given token is a pure function
of ``(seed, kind, token)`` via :func:`stable_fingerprint` — no RNG state,
no clock. Each (kind, token) fires **once**: the first execution to roll
the fault claims it by atomically creating a marker file in ``state_dir``
(shared across processes and re-runs), so a retried or resumed campaign
converges to the same final results as an uninterrupted one — which is
exactly the property the chaos suite asserts.

Arming: set ``REPRO_CHAOS`` to a JSON object (see :meth:`ChaosSpec.to_env`)
in the environment of the run under test. Workers and the store check the
variable lazily; when unset, the hooks cost one dict lookup.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field

from repro.utils.idgen import stable_fingerprint

__all__ = ["ENV_VAR", "ChaosSpec", "ChaosMonkey", "active_chaos"]

ENV_VAR = "REPRO_CHAOS"

#: worker-crash exit code (distinguishable from normal failures in logs)
CRASH_EXIT = 13
#: driver torn-write exit code
TORN_EXIT = 23


@dataclass(frozen=True)
class ChaosSpec:
    """What to break, how often, and where the once-only ledger lives.

    Rates are fractions in [0, 1] evaluated per token; ``only`` (when
    non-empty) further restricts injection to tokens containing at least
    one of the substrings — tests use ``only=`` with rate 1.0 to target
    exact points deterministically.
    """

    seed: int = 0
    state_dir: str = ""
    crash: float = 0.0
    hang: float = 0.0
    torn_write: float = 0.0
    hang_s: float = 3600.0
    torn_style: str = "partial"   # 'partial' line or 'afterwrite' kill
    # network-layer faults (serve fabric)
    connect_refuse: float = 0.0
    stream_cut: float = 0.0
    reply_delay: float = 0.0
    delay_s: float = 0.05
    daemon_kill: float = 0.0
    #: SIGKILL the process right after it claims a cache fill lease —
    #: proves leases never leak (waiters detect the dead owner pid and
    #: take the lease over instead of waiting out the stale window)
    lease_kill: float = 0.0
    only: tuple[str, ...] = field(default_factory=tuple)

    def to_env(self) -> str:
        """JSON for ``REPRO_CHAOS`` (give the run under test this env)."""
        doc = asdict(self)
        doc["only"] = list(self.only)
        return json.dumps(doc, sort_keys=True)

    @classmethod
    def from_env(cls, value: str) -> "ChaosSpec":
        doc = json.loads(value)
        doc["only"] = tuple(doc.get("only") or ())
        return cls(**doc)


class ChaosMonkey:
    """Evaluates a :class:`ChaosSpec` against tokens, with a shared
    once-only ledger so every fault fires exactly one time."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        if spec.state_dir:
            os.makedirs(spec.state_dir, exist_ok=True)

    # ---- selection ------------------------------------------------------

    def _selected(self, kind: str, rate: float, token: str) -> bool:
        if rate <= 0.0:
            return False
        if self.spec.only and not any(s in token for s in self.spec.only):
            return False
        roll = stable_fingerprint(self.spec.seed, kind, token) % 10_000
        return roll < rate * 10_000

    def _claim(self, kind: str, token: str) -> bool:
        """Atomically claim (kind, token); False when already fired."""
        if not self.spec.state_dir:
            return True  # no ledger: fire every time
        name = f"{kind}-{stable_fingerprint(kind, token):016x}.fired"
        path = os.path.join(self.spec.state_dir, name)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(token[:512])
        return True

    def should_fire(self, kind: str, rate: float, token: str) -> bool:
        return self._selected(kind, rate, token) and self._claim(kind, token)

    # ---- worker-side injection (executor shim) --------------------------

    def injure_worker(self, token: str) -> None:
        """Called from :func:`repro.lab.executor._worker_shim` as the
        worker picks up a point. May never return."""
        if self.should_fire("crash", self.spec.crash, token):
            os._exit(CRASH_EXIT)
        if self.should_fire("hang", self.spec.hang, token):
            time.sleep(self.spec.hang_s)

    # ---- driver-side injection (store append) ---------------------------

    def torn_write_kill(self, fh, line: str, token: str) -> bool:
        """Called from :meth:`repro.lab.store.RunHandle.append` with the
        record's line *before* it is written. When the fault fires this
        writes a torn (or unsynced) line and kills the driver; returns
        False when the caller should append normally."""
        if not self.should_fire("torn_write", self.spec.torn_write, token):
            return False
        if self.spec.torn_style == "afterwrite":
            # full line written and flushed, killed before fsync — the
            # record's durability is up to the OS
            fh.write(line + "\n")
            fh.flush()
        else:
            # torn mid-line: the classic half-record a power cut leaves
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
        os._exit(TORN_EXIT)

    # ---- network-layer injection (serve fabric) -------------------------

    def injure_connect(self, token: str) -> None:
        """Called from :meth:`repro.serve.client.ServeClient` before a
        connect attempt; raises the same error a dead peer produces."""
        if self.should_fire("connect_refuse", self.spec.connect_refuse,
                            token):
            raise ConnectionRefusedError(
                f"chaos: connection refused ({token})")

    def cut_stream(self, token: str) -> bool:
        """Called from the daemon after streaming ``accepted``; True
        tells the handler to drop the connection without a terminal
        event (the client sees a truncated stream)."""
        return self.should_fire("stream_cut", self.spec.stream_cut, token)

    def delay_reply(self, token: str) -> None:
        """Called from the daemon before the terminal event; sleeps
        ``delay_s`` when the fault fires."""
        if self.should_fire("reply_delay", self.spec.reply_delay, token):
            time.sleep(self.spec.delay_s)

    def injure_daemon(self, token: str) -> None:
        """Called from the daemon as a job starts executing; SIGKILLs the
        whole daemon process when the fault fires — the crash the
        write-ahead journal and fabric failover exist for. Only arm in
        subprocess daemons."""
        if self.should_fire("daemon_kill", self.spec.daemon_kill, token):
            import signal

            os.kill(os.getpid(), signal.SIGKILL)

    def injure_lease_holder(self, token: str) -> None:
        """Called from :meth:`repro.lab.cache.SynthesisCache.acquire_fill`
        right after the lease file is created; SIGKILLs the holder so the
        lease leaks — the stale-takeover path other fillers must survive.
        Only arm in subprocess workers."""
        if self.should_fire("lease_kill", self.spec.lease_kill, token):
            import signal

            os.kill(os.getpid(), signal.SIGKILL)


_cache: dict[str, ChaosMonkey | None] = {}


def active_chaos() -> ChaosMonkey | None:
    """The armed :class:`ChaosMonkey`, or None when ``REPRO_CHAOS`` is
    unset/invalid. Parsed once per distinct env value."""
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    if value not in _cache:
        try:
            _cache[value] = ChaosMonkey(ChaosSpec.from_env(value))
        except (ValueError, TypeError, KeyError):
            _cache[value] = None
    return _cache[value]
