"""Content-addressed on-disk cache for synthesis artifacts.

The evaluation is a design-space sweep: the same (application, assertion
level, optimization switches, device) point is synthesized again and again
across benchmark runs, campaign levels and sweep reruns. The cache keys
each point by a :func:`stable_fingerprint` over everything that can change
the result — the canonical IR text of every process (i.e. the source), the
task-graph wiring, every :class:`SynthesisOptions` field, the assertion
level, the device model and the package version — and memoizes the
expensive artifacts (synthesized image, resource estimate, Fmax report).

Properties:

* **content-addressed** — the key is derived from design content, never
  from file paths or timestamps, so logically identical inputs hit across
  processes, machines and interpreter runs;
* **cross-process safe** — entries are written to a temp file and
  ``os.replace``-d into place, so concurrent sweep workers can share one
  cache directory without locks (last writer wins on identical content);
* **thread-safe** — one handle may be shared across threads (the serve
  daemon's request pool hammers a single warm handle); get/put/evict and
  the stats counters are serialized by an internal lock;
* **bounded** — an LRU sweep (by access time) evicts the oldest entries
  beyond ``max_entries``;
* **observable** — hit/miss/store/eviction counters are kept per handle
  and surfaced in sweep manifests and progress lines.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.synth import SynthesisOptions
from repro.platform.device import EP2S180, DeviceModel
from repro.utils.idgen import stable_fingerprint

__all__ = [
    "CacheStats",
    "SynthesisCache",
    "app_key_parts",
    "cache_key",
]

#: bump to invalidate every cached artifact on a format change
CACHE_SCHEMA = 1


def _stable(part: object) -> object:
    """Normalize one fingerprint part: callables by qualified name (their
    repr embeds a memory address, which would poison the key)."""
    if callable(part) and not isinstance(part, type):
        return f"{getattr(part, '__module__', '?')}.{getattr(part, '__qualname__', repr(part))}"
    return part


def app_key_parts(app) -> list[object]:
    """Canonical, content-only description of an Application.

    Includes everything synthesis consumes: per-process IR text (which
    changes whenever the C source changes), HLS configs, stream/tap wiring,
    feeder data and the abort mode. Iteration order is sorted so dict
    insertion order cannot leak into the key.
    """
    parts: list[object] = [app.name, app.nabort]
    for name in sorted(app.processes):
        pd = app.processes[name]
        parts.append((
            "proc", name, pd.kind, pd.daemon,
            str(pd.func) if pd.func is not None else None,
            repr(pd.config),
            tuple(sorted((k, _stable(v)) for k, v in pd.ext_sw.items())),
            tuple(sorted((k, _stable(v)) for k, v in pd.ext_hw.items())),
        ))
    for name in sorted(app.streams):
        sd = app.streams[name]
        parts.append((
            "stream", name, str(sd.source), str(sd.dest), sd.width, sd.depth,
            tuple(sd.feeder_data or ()), sd.role,
            tuple(sorted(sd.role_info.items())),
        ))
    for name in sorted(app.taps):
        td = app.taps[name]
        parts.append(("tap", name, td.source, td.dest, td.widths))
    return parts


def cache_key(
    app,
    assertions: str,
    options: SynthesisOptions | None = None,
    device: DeviceModel = EP2S180,
    extra: tuple = (),
) -> str:
    """Hex cache key for one synthesis point.

    Any change to the source text (via the process IR), any
    ``SynthesisOptions`` field, the assertion level, the device model, the
    package version or the cache schema produces a different key.
    """
    from repro import __version__

    options = options or SynthesisOptions()
    fp = stable_fingerprint(
        CACHE_SCHEMA,
        __version__,
        assertions,
        options.key_parts(),
        repr(device),
        app_key_parts(app),
        tuple(_stable(e) for e in extra),
    )
    return f"{fp:016x}"


@dataclass
class CacheStats:
    """Counters for one cache handle (not persisted; per-process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0
    #: corrupt entries found on get() — evicted and counted separately so
    #: a sweep can surface "the cache directory is rotting" loudly rather
    #: than silently re-synthesizing forever
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
            "corrupt": self.corrupt,
        }

    def snapshot(self) -> tuple[int, ...]:
        return (self.hits, self.misses, self.stores, self.evictions,
                self.errors, self.corrupt)

    def delta(self, before: tuple[int, ...]) -> dict[str, int]:
        now = self.snapshot()
        keys = ("hits", "misses", "stores", "evictions", "errors", "corrupt")
        return {k: now[i] - before[i] for i, k in enumerate(keys)}

    def merge(self, other: dict[str, int]) -> None:
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.stores += other.get("stores", 0)
        self.evictions += other.get("evictions", 0)
        self.errors += other.get("errors", 0)
        self.corrupt += other.get("corrupt", 0)

    def __str__(self) -> str:
        return (f"cache hits={self.hits} misses={self.misses} "
                f"stores={self.stores} evictions={self.evictions}")


class SynthesisCache:
    """Pickle-backed artifact store addressed by :func:`cache_key`.

    ``root=None`` disables the cache entirely (every ``get`` misses, every
    ``put`` is dropped) so call sites need no conditionals.
    """

    def __init__(self, root: str | os.PathLike | None,
                 max_entries: int = 512) -> None:
        self.root = Path(root) if root is not None else None
        self.max_entries = max_entries
        self.stats = CacheStats()
        # the on-disk format is cross-process safe via atomic replaces,
        # but one *handle* (stats counters + get/put/evict sequences) is
        # not inherently thread-safe; the serve daemon shares a single
        # warm handle across its whole request pool, so serialize here
        self._lock = threading.RLock()
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, key: str) -> Path:
        return self.root / "objects" / f"{key}.pkl"

    def get(self, key: str):
        """Return the cached object for ``key`` or None on a miss."""
        with self._lock:
            if self.root is None:
                self.stats.misses += 1
                return None
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    obj = pickle.load(fh)
            except FileNotFoundError:
                self.stats.misses += 1
                return None
            except Exception:
                # truncated/corrupt entry (e.g. version skew): treat as a
                # miss and drop it so the slot heals on the next put
                self.stats.errors += 1
                self.stats.corrupt += 1
                self.stats.misses += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
                return None
            self.stats.hits += 1
            try:
                os.utime(path)  # LRU touch
            except OSError:
                pass
            return obj

    def put(self, key: str, obj) -> None:
        """Atomically store ``obj`` under ``key`` and run the LRU sweep."""
        with self._lock:
            if self.root is None:
                return
            path = self._path(key)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
            self._evict()

    def _evict(self) -> None:
        entries = []
        for p in self.root.glob("objects/*.pkl"):
            try:
                entries.append((p.stat().st_mtime, p))
            except OSError:
                continue  # concurrently evicted by another handle
        entries.sort()
        while len(entries) > self.max_entries:
            _, victim = entries.pop(0)
            try:
                os.unlink(victim)
                self.stats.evictions += 1
            except OSError:
                pass

    def __len__(self) -> int:
        with self._lock:
            if self.root is None:
                return 0
            return sum(1 for _ in self.root.glob("objects/*.pkl"))

    def clear(self) -> None:
        with self._lock:
            if self.root is None:
                return
            for path in self.root.glob("objects/*.pkl"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
