"""Content-addressed on-disk cache for synthesis artifacts.

The evaluation is a design-space sweep: the same (application, assertion
level, optimization switches, device) point is synthesized again and again
across benchmark runs, campaign levels and sweep reruns. The cache keys
each point by a :func:`stable_fingerprint` over everything that can change
the result — the canonical IR text of every process (i.e. the source), the
task-graph wiring, every :class:`SynthesisOptions` field, the assertion
level, the device model and the package version — and memoizes the
expensive artifacts (synthesized image, resource estimate, Fmax report).

Properties:

* **content-addressed** — the key is derived from design content, never
  from file paths or timestamps, so logically identical inputs hit across
  processes, machines and interpreter runs;
* **cross-process safe** — entries are written to a temp file and
  ``os.replace``-d into place, so concurrent sweep workers can share one
  cache directory without locks (last writer wins on identical content);
* **thread-safe** — one handle may be shared across threads (the serve
  daemon's request pool hammers a single warm handle); get/put/evict and
  the stats counters are serialized by an internal lock;
* **bounded** — an LRU sweep (by access time) evicts the oldest entries
  beyond ``max_entries``;
* **observable** — hit/miss/store/eviction counters are kept per handle
  and surfaced in sweep manifests and progress lines.

Two cache granularities share the store:

* **app-level** entries (:func:`cache_key`) memoize a whole synthesis
  point — ``(image, resources, fmax)``;
* **process-level** entries (:func:`process_cache_key`) memoize one
  :class:`repro.core.synth.ProcessArtifact`, so editing one process of a
  multi-process app rebuilds only that process
  (:mod:`repro.lab.incremental`). Process lookups keep their own
  ``proc_hits``/``proc_misses`` counters so app-level hit-rate assertions
  stay meaningful.

**Fill leases** dedupe *concurrent first-touch fills*: the on-disk store
already dedupes across time (second run hits), but N daemons cold-starting
the same campaign used to synthesize the same points N times in parallel.
:meth:`SynthesisCache.acquire_fill` claims a fingerprint-keyed lease file
(claimed by atomic hard link of a fully written payload: owner pid +
takeover epoch inside) so exactly
one process fills while the rest wait on the shared
:class:`~repro.lab.retry.RetryPolicy` backoff and then read the filled
entry. Leases held by dead owners (worker SIGKILL) are taken over via an
atomic rename, eviction never removes an entry whose key has a live lease,
and a bounded wall-clock wait means a wedged owner degrades to a duplicate
fill — availability over strict dedup.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.synth import SynthesisOptions
from repro.hls.constraints import HLSConfig
from repro.platform.device import EP2S180, DeviceModel
from repro.utils.idgen import stable_fingerprint

__all__ = [
    "CacheStats",
    "FillLease",
    "SynthesisCache",
    "app_key_parts",
    "cache_key",
    "process_cache_key",
]

#: bump to invalidate every cached artifact on a format change
CACHE_SCHEMA = 1

#: bump to invalidate process-level artifacts only
PROC_SCHEMA = 1

#: a lease older than this is presumed wedged even if its owner pid is
#: alive (e.g. the owner is stuck in an unrelated syscall) — waiters take
#: it over; real fills are seconds, so five minutes is generous
LEASE_STALE_S = 300.0

#: default bounded wait for a lease-protected fill before degrading to a
#: duplicate (unleased) fill — availability over strict dedup
LEASE_WAIT_S = 120.0


def _stable(part: object) -> object:
    """Normalize one fingerprint part: callables by qualified name (their
    repr embeds a memory address, which would poison the key)."""
    if callable(part) and not isinstance(part, type):
        return f"{getattr(part, '__module__', '?')}.{getattr(part, '__qualname__', repr(part))}"
    return part


def app_key_parts(app) -> list[object]:
    """Canonical, content-only description of an Application.

    Includes everything synthesis consumes: per-process IR text (which
    changes whenever the C source changes), HLS configs, stream/tap wiring,
    feeder data and the abort mode. Iteration order is sorted so dict
    insertion order cannot leak into the key.
    """
    parts: list[object] = [app.name, app.nabort]
    for name in sorted(app.processes):
        pd = app.processes[name]
        parts.append((
            "proc", name, pd.kind, pd.daemon,
            str(pd.func) if pd.func is not None else None,
            repr(pd.config),
            tuple(sorted((k, _stable(v)) for k, v in pd.ext_sw.items())),
            tuple(sorted((k, _stable(v)) for k, v in pd.ext_hw.items())),
        ))
    for name in sorted(app.streams):
        sd = app.streams[name]
        parts.append((
            "stream", name, str(sd.source), str(sd.dest), sd.width, sd.depth,
            tuple(sd.feeder_data or ()), sd.role,
            tuple(sorted(sd.role_info.items())),
        ))
    for name in sorted(app.taps):
        td = app.taps[name]
        parts.append(("tap", name, td.source, td.dest, td.widths))
    return parts


def cache_key(
    app,
    assertions: str,
    options: SynthesisOptions | None = None,
    device: DeviceModel = EP2S180,
    extra: tuple = (),
) -> str:
    """Hex cache key for one synthesis point.

    Any change to the source text (via the process IR), any
    ``SynthesisOptions`` field, the assertion level, the device model, the
    package version or the cache schema produces a different key.
    """
    from repro import __version__

    options = options or SynthesisOptions()
    fp = stable_fingerprint(
        CACHE_SCHEMA,
        __version__,
        assertions,
        options.key_parts(),
        repr(device),
        app_key_parts(app),
        tuple(_stable(e) for e in extra),
    )
    return f"{fp:016x}"


def process_cache_key(
    name: str,
    ir_text: str,
    assertions: str,
    options: SynthesisOptions | None = None,
    code_base: int = 1,
    device: DeviceModel = EP2S180,
    config: HLSConfig | None = None,
    fault_spec: tuple | None = None,
) -> str:
    """Hex cache key for ONE process's synthesis artifact.

    Keyed on everything :func:`repro.core.synth.synth_process` consumes:
    the process's canonical IR text (the source), the
    :meth:`~repro.core.synth.SynthesisOptions.process_key_parts` options
    slice (app-assembly and execution options are deliberately excluded so
    artifacts are shared across those variants), the effective assertion
    level, the error-code base (registry numbering is global and
    sequential, so a process's codes shift when an *earlier* process gains
    or loses assertions), the HLS config override, the translation-fault
    tuple, the device model, the package version and the schemas. The
    ``"p"`` prefix keeps the namespace disjoint from app-level keys.
    """
    from repro import __version__

    options = options or SynthesisOptions()
    fp = stable_fingerprint(
        "proc",
        CACHE_SCHEMA,
        PROC_SCHEMA,
        __version__,
        assertions,
        options.process_key_parts(),
        repr(device),
        name,
        ir_text,
        code_base,
        repr(config),
        repr(tuple(fault_spec)) if fault_spec else None,
    )
    return f"p{fp:015x}"


@dataclass
class CacheStats:
    """Counters for one cache handle (not persisted; per-process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0
    #: corrupt entries found on get() — evicted and counted separately so
    #: a sweep can surface "the cache directory is rotting" loudly rather
    #: than silently re-synthesizing forever
    corrupt: int = 0
    #: process-level artifact lookups (kept apart from hits/misses so
    #: app-level hit-rate assertions are not diluted by the per-process
    #: lookups an app miss fans out into)
    proc_hits: int = 0
    proc_misses: int = 0
    #: fill-lease contention: acquires that had to wait on another
    #: owner's fill (counted once per waiting acquire)
    lease_waits: int = 0
    #: stale leases (dead or wedged owner) taken over
    lease_takeovers: int = 0
    #: app syntheses that reused at least one cached process artifact and
    #: rebuilt at least one — the incremental win the counters exist for
    partial_rebuilds: int = 0

    _FIELDS = ("hits", "misses", "stores", "evictions", "errors", "corrupt",
               "proc_hits", "proc_misses", "lease_waits", "lease_takeovers",
               "partial_rebuilds")

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def snapshot(self) -> tuple[int, ...]:
        return tuple(getattr(self, name) for name in self._FIELDS)

    def delta(self, before: tuple[int, ...]) -> dict[str, int]:
        now = self.snapshot()
        return {k: now[i] - before[i] for i, k in enumerate(self._FIELDS)}

    def merge(self, other: dict[str, int]) -> None:
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name) + other.get(name, 0))

    def __str__(self) -> str:
        return (f"cache hits={self.hits} misses={self.misses} "
                f"stores={self.stores} evictions={self.evictions} "
                f"proc={self.proc_hits}/{self.proc_hits + self.proc_misses}")


def _active_chaos():
    """Late import: chaos is an optional test harness, and the hook must
    cost one env lookup when unarmed."""
    from repro.lab.chaos import active_chaos

    return active_chaos()


@dataclass
class FillLease:
    """A held (or degraded) claim on filling one cache key.

    ``owned=False`` marks the degraded cases — disabled cache, or a
    bounded wait that timed out and fell back to a duplicate fill — where
    there is no lease file to release.
    """

    key: str
    path: Path | None
    pid: int
    epoch: int
    owned: bool = True

    def release(self) -> None:
        """Drop the claim (idempotent; no-op for degraded leases)."""
        if self.owned and self.path is not None:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self.owned = False


class SynthesisCache:
    """Pickle-backed artifact store addressed by :func:`cache_key`.

    ``root=None`` disables the cache entirely (every ``get`` misses, every
    ``put`` is dropped) so call sites need no conditionals.
    """

    def __init__(self, root: str | os.PathLike | None,
                 max_entries: int = 512,
                 lease_stale_s: float = LEASE_STALE_S,
                 lease_wait_s: float = LEASE_WAIT_S) -> None:
        self.root = Path(root) if root is not None else None
        self.max_entries = max_entries
        self.lease_stale_s = lease_stale_s
        self.lease_wait_s = lease_wait_s
        self.stats = CacheStats()
        # the on-disk format is cross-process safe via atomic replaces,
        # but one *handle* (stats counters + get/put/evict sequences) is
        # not inherently thread-safe; the serve daemon shares a single
        # warm handle across its whole request pool, so serialize here
        self._lock = threading.RLock()
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            (self.root / "leases").mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, key: str) -> Path:
        return self.root / "objects" / f"{key}.pkl"

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.lease"

    def get(self, key: str):
        """Return the cached object for ``key`` or None on a miss."""
        return self._get(key, "hits", "misses")

    def get_process(self, key: str):
        """Process-artifact lookup (counts ``proc_hits``/``proc_misses``
        instead of the app-level hit/miss counters)."""
        return self._get(key, "proc_hits", "proc_misses")

    def _get(self, key: str, hit_field: str, miss_field: str):
        with self._lock:
            if self.root is None:
                setattr(self.stats, miss_field,
                        getattr(self.stats, miss_field) + 1)
                return None
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    obj = pickle.load(fh)
            except FileNotFoundError:
                setattr(self.stats, miss_field,
                        getattr(self.stats, miss_field) + 1)
                return None
            except Exception:
                # truncated/corrupt entry (e.g. version skew): treat as a
                # miss and drop it so the slot heals on the next put
                self.stats.errors += 1
                self.stats.corrupt += 1
                setattr(self.stats, miss_field,
                        getattr(self.stats, miss_field) + 1)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                return None
            setattr(self.stats, hit_field,
                    getattr(self.stats, hit_field) + 1)
            try:
                os.utime(path)  # LRU touch
            except OSError:
                pass
            return obj

    def put(self, key: str, obj) -> None:
        """Atomically store ``obj`` under ``key`` and run the LRU sweep."""
        with self._lock:
            if self.root is None:
                return
            path = self._path(key)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
            self._evict()

    def put_process(self, key: str, artifact) -> None:
        """Store one process artifact (same atomic path as :meth:`put`)."""
        self.put(key, artifact)

    # ---- fill leases -----------------------------------------------------

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _read_lease(self, path: Path) -> dict | None:
        try:
            with open(path) as fh:
                return json.loads(fh.read())
        except (OSError, ValueError):
            return None

    def _lease_live(self, info: dict | None) -> bool:
        """Is this lease held by a live, non-wedged owner?"""
        if info is None:
            # Unreadable/corrupt lease: claimable. Leases are claimed by
            # hard-linking a fully written payload, so this is never a
            # live owner caught mid-write.
            return False
        if time.time() - info.get("t", 0) > self.lease_stale_s:
            return False
        pid = info.get("pid")
        if not isinstance(pid, int):
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False  # owner died (SIGKILL leaks land here)
        except OSError:
            pass  # e.g. EPERM: someone else's live process
        return True

    def _takeover(self, path: Path) -> bool:
        """Atomically remove a stale lease; False when another waiter won
        the race (rename is the compare-and-swap: only one succeeds)."""
        doomed = path.with_suffix(f".stale{os.getpid()}")
        try:
            os.rename(path, doomed)
        except OSError:
            return False
        try:
            os.unlink(doomed)
        except OSError:
            pass
        with self._lock:
            self.stats.lease_takeovers += 1
        return True

    def acquire_fill(self, key: str, retry=None,
                     timeout: float | None = None) -> FillLease | None:
        """Claim the right to fill ``key``; block while someone else has it.

        Returns a :class:`FillLease` when the caller must produce and
        :meth:`put` the entry (release the lease in a ``finally``), or
        ``None`` when the entry appeared while waiting (the caller should
        simply :meth:`get` it). While another live owner holds the lease,
        this polls on the shared :class:`~repro.lab.retry.RetryPolicy`
        backoff shape; a dead or wedged owner is taken over (epoch + 1);
        after ``timeout`` seconds the wait degrades to an *unleased* fill
        so a stuck fleet never deadlocks on one wedged filler.
        """
        pid = os.getpid()
        if self.root is None:
            return FillLease(key=key, path=None, pid=pid, epoch=0, owned=False)
        if retry is None:
            from repro.lab.retry import RetryPolicy
            retry = RetryPolicy(base_delay=0.02, max_delay=0.25, jitter=0.5)
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.lease_wait_s)
        path = self._lease_path(key)
        epoch = 1
        attempt = 2  # RetryPolicy.delay() is 2-based (first retry)
        waited = False
        # unique per thread too: a pid-only name would alias the claim
        # file across threads, and re-opening it after a sibling's link
        # would truncate the canonical lease through the shared inode
        claim = path.with_suffix(f".claim{pid}-{threading.get_ident()}")
        while True:
            if self._path(key).exists():
                return None  # filled while we were waiting
            try:
                # Write the payload to a private file first, then claim
                # with an atomic hard link: the canonical lease path never
                # exists without its full JSON, so a concurrent waiter can
                # never misread a mid-write lease as torn and steal it.
                with open(claim, "w") as fh:
                    fh.write(json.dumps(
                        {"key": key, "pid": pid, "epoch": epoch,
                         "t": time.time()}))
                os.link(claim, path)
            except FileExistsError:
                self._unlink_quietly(claim)
                info = self._read_lease(path)
                if not self._lease_live(info):
                    if self._takeover(path):
                        epoch = (info or {}).get("epoch", 0) + 1
                    continue
                if not waited:
                    waited = True
                    with self._lock:
                        self.stats.lease_waits += 1
                if time.monotonic() > deadline:
                    # bounded wait expired: duplicate the fill rather than
                    # hang on a wedged owner
                    return FillLease(key=key, path=None, pid=pid,
                                     epoch=(info or {}).get("epoch", 0),
                                     owned=False)
                time.sleep(min(retry.delay(attempt, token=key),
                               max(0.0, deadline - time.monotonic())))
                attempt += 1
                continue
            except OSError:
                # lease dir unwritable (read-only cache): fill unleased
                self._unlink_quietly(claim)
                return FillLease(key=key, path=None, pid=pid, epoch=0,
                                 owned=False)
            self._unlink_quietly(claim)
            lease = FillLease(key=key, path=path, pid=pid, epoch=epoch)
            chaos = _active_chaos()
            if chaos is not None:
                chaos.injure_lease_holder(f"lease-fill:{key}")
            return lease

    def get_or_fill(self, key: str, producer, retry=None,
                    timeout: float | None = None, kind: str = "point"):
        """Lease-deduplicated read-through: ``(object, filled_by_us)``.

        A hit (including one that appeared while waiting on another
        owner's fill) returns ``(obj, False)``; a miss runs ``producer()``
        under the fill lease, stores the result and returns
        ``(obj, True)``. ``kind="process"`` routes the lookups through the
        ``proc_hits``/``proc_misses`` counters.
        """
        fetch = self.get_process if kind == "process" else self.get
        obj = fetch(key)
        if obj is not None:
            return obj, False
        while True:
            lease = self.acquire_fill(key, retry=retry, timeout=timeout)
            if lease is None:
                obj = fetch(key)
                if obj is not None:
                    return obj, False
                continue  # filled entry evicted before we read it: reclaim
            try:
                # Re-check under the lease: the previous owner stores the
                # entry *before* releasing, so a lease won in the gap
                # between its put and our claim means the entry is there.
                if self.root is not None and self._path(key).exists():
                    obj = fetch(key)
                    if obj is not None:
                        return obj, False
                obj = producer()
                self.put(key, obj)
                return obj, True
            finally:
                lease.release()

    def get_or_fill_process(self, key: str, producer, retry=None,
                            timeout: float | None = None):
        """:meth:`get_or_fill` for process artifacts."""
        return self.get_or_fill(key, producer, retry=retry, timeout=timeout,
                                kind="process")

    def note_partial_rebuild(self) -> None:
        """Record one app synthesis that mixed cached and rebuilt
        process artifacts (:mod:`repro.lab.incremental`)."""
        with self._lock:
            self.stats.partial_rebuilds += 1

    def _live_lease_keys(self) -> set[str]:
        """Keys protected from eviction by a live fill lease. Dead leases
        found along the way are collected (same takeover CAS as waiters
        use), so leaked lease files do not accumulate."""
        live: set[str] = set()
        for lp in self.root.glob("leases/*.lease"):
            info = self._read_lease(lp)
            if self._lease_live(info):
                live.add(lp.stem)
            else:
                self._takeover(lp)
        for orphan in self.root.glob("leases/*.stale*"):
            # a takeover that crashed between rename and unlink
            self._unlink_quietly(orphan)
        for orphan in self.root.glob("leases/*.claim*"):
            # a claimer that crashed between payload write and link; leave
            # young ones alone (their owner is about to link or unlink)
            try:
                if time.time() - orphan.stat().st_mtime > self.lease_stale_s:
                    os.unlink(orphan)
            except OSError:
                pass
        return live

    def _evict(self) -> None:
        entries = []
        protected = self._live_lease_keys()
        for p in self.root.glob("objects/*.pkl"):
            try:
                entries.append((p.stat().st_mtime, p))
            except OSError:
                continue  # concurrently evicted by another handle
        entries.sort()
        over = len(entries) - self.max_entries
        for _, victim in list(entries):
            if over <= 0:
                break
            if victim.stem in protected:
                # a concurrent filler just wrote (or is about to reread)
                # this entry; evicting it would turn its waiters' reads
                # into duplicate fills
                continue
            try:
                os.unlink(victim)
                self.stats.evictions += 1
            except OSError:
                pass
            over -= 1

    def __len__(self) -> int:
        with self._lock:
            if self.root is None:
                return 0
            return sum(1 for _ in self.root.glob("objects/*.pkl"))

    def clear(self) -> None:
        with self._lock:
            if self.root is None:
                return
            for path in self.root.glob("objects/*.pkl"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
