"""repro.lab — parallel design-space exploration with memoized synthesis.

Design note
===========

The paper's entire evaluation is one *shape*: a cross-product sweep over
application x assertion level x optimization switches, where every point
runs the identical, deterministic pipeline (lower -> instrument ->
schedule -> bind -> estimate). That shape used to be re-implemented ad hoc
by every benchmark and by the fault-campaign runner, serially, from
scratch, with nothing persisted between runs. ``repro.lab`` factors it
into four small, separately testable pieces:

``cache``
    A content-addressed on-disk artifact cache. The key is a
    :func:`repro.utils.idgen.stable_fingerprint` over everything that can
    change a synthesis result — canonical per-process IR text (i.e. the
    source), task-graph wiring, every ``SynthesisOptions`` field, the
    assertion level, the device model and the package version. Entries are
    written atomically (temp file + ``os.replace``) so concurrent workers
    share one cache directory without locks; the payoff is that a
    warm-cache rerun of the full benchmark sweep performs zero
    re-synthesis.

``executor``
    A crash-isolated parallel runner. Points fan out over a
    ``ProcessPoolExecutor`` (``--jobs``); a worker exception records a
    failed point instead of killing the sweep, a hard worker crash
    replaces the pool and carries on, a per-point timeout bounds hangs,
    and results return in submission order so parallel runs stay
    bit-identical to serial ones.

``store``
    An append-only JSONL result store with run manifests. Every resolved
    point is flushed immediately; the run id is derived from the sweep's
    content fingerprint, so re-invoking an interrupted sweep reopens the
    same run directory and resumes by skipping completed points.

``sweep``
    The declarative front end: ``SweepSpec.cross`` builds the paper-shaped
    cross product, ``run_sweep`` drives it through the three pieces above,
    and ``repro sweep`` exposes it on the command line.

On top of those sit the fault-tolerant **campaign fabric** pieces:

``retry``
    Per-point retry with exponential backoff + deterministic jitter.
    Transient failures (worker crash RPR-E001, timeout RPR-E002, pool
    break RPR-E003) retry; synthesis errors do not. A circuit breaker
    degrades to no-retry when a large fraction of points is failing.

``shard``
    Deterministic K/N sharding by stable point fingerprint, plus
    ``merge_runs``: fold per-shard run directories into one canonical run
    that is byte-identical whether the campaign ran sharded, unsharded,
    interrupted-and-resumed, or under chaos.

``chaos``
    Deterministic fault injection into the fabric itself (worker crashes,
    hangs, torn journal writes) — the harness that proves the pieces
    above actually deliver their guarantees.

Determinism contract: workers receive pure, picklable inputs
(:class:`SweepPoint`), the toolchain itself is seedless, and outcomes are
collected in submission order — so the same spec produces byte-identical
tables at any ``--jobs`` value, and cached artifacts are indistinguishable
from freshly synthesized ones. Retries, hedging, sharding and chaos all
preserve that contract at the *merged record* level.
"""

from repro.lab.cache import CacheStats, SynthesisCache, cache_key
from repro.lab.chaos import ChaosMonkey, ChaosSpec, active_chaos
from repro.lab.executor import ExecStats, LabExecutor, PointOutcome
from repro.lab.retry import CircuitBreaker, RetryPolicy
from repro.lab.shard import MergeResult, ShardSpec, merge_runs
from repro.lab.store import ResultStore, RunHandle, StoreStats
from repro.lab.sweep import (
    AppSpec,
    SweepPoint,
    SweepResult,
    SweepSpec,
    evaluate_point,
    run_sweep,
)

__all__ = [
    "AppSpec",
    "CacheStats",
    "ChaosMonkey",
    "ChaosSpec",
    "CircuitBreaker",
    "ExecStats",
    "LabExecutor",
    "MergeResult",
    "PointOutcome",
    "ResultStore",
    "RetryPolicy",
    "RunHandle",
    "ShardSpec",
    "StoreStats",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "SynthesisCache",
    "active_chaos",
    "cache_key",
    "evaluate_point",
    "merge_runs",
    "run_sweep",
]
