"""Deterministic sharding and shard merging for campaign runs.

A shard is a horizontal slice of a sweep/campaign/difftest space: point
``p`` belongs to shard ``k`` of ``N`` iff ``stable_fingerprint(p) % N ==
k - 1``. Because assignment hashes the *point* (never the host, the job
count or the clock), any K/N split partitions the space exactly, every
shard can run on a different machine (or a different CI matrix leg) with
its own :class:`~repro.lab.store.ResultStore` run directory, and a
crashed shard resumes independently of its siblings.

``merge_runs`` folds per-shard run directories back into one **canonical
run**: records are stripped of volatile fields (timings, cache hits,
retry/attempt counts — things that legitimately differ between an
interrupted-and-resumed run and a clean one), deduplicated latest-wins
per point, sorted by point id, and written with deterministic JSON
encoding next to a canonical manifest. The invariant the whole fabric is
built around, and that the chaos suite asserts:

    merge(shard 1/N .. N/N)  ==  merge(unsharded run)   (byte-identical)

for any N and any interleaving of crashes, hangs, torn writes and
resumes along the way. For fault campaigns the merge additionally renders
the detection-coverage matrix (``matrix.txt``) from the merged records,
with the same bit-identity guarantee.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.lab.store import ResultStore, RunHandle
from repro.utils.idgen import stable_fingerprint

__all__ = [
    "VOLATILE_RECORD_FIELDS",
    "MergeResult",
    "ShardError",
    "ShardSpec",
    "canonical_record",
    "find_run_group",
    "merge_runs",
]

MERGE_SCHEMA = 1

#: record fields that legitimately differ between an uninterrupted run
#: and a crashed/retried/resumed one — stripped before merging so the
#: canonical output is bit-identical either way
VOLATILE_RECORD_FIELDS = frozenset({
    "elapsed_s", "cache_hit", "cache_stats", "attempts", "bundle", "detail",
    # incremental-synthesis accounting: which processes were rebuilt vs
    # read from cache depends on run interleaving, not on the point
    "resyntheses", "proc_hits", "proc_misses", "partial_rebuild",
})

_SHARD_SUFFIX = re.compile(r"\.s(\d+)of(\d+)$")


class ShardError(ReproError):
    """Raised for malformed shard specs or unmergeable run groups."""

    code_prefix = "RPR-W"


@dataclass(frozen=True)
class ShardSpec:
    """One slice ``index``/``total`` (1-based, like CI matrix legs)."""

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1 or not 1 <= self.index <= self.total:
            raise ShardError(
                f"bad shard {self.index}/{self.total}: want 1 <= K <= N",
                code="RPR-W010")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``K/N`` (e.g. ``--shard 2/8``)."""
        m = re.fullmatch(r"(\d+)/(\d+)", text.strip())
        if not m:
            raise ShardError(
                f"bad --shard {text!r}: want K/N (e.g. 2/8)", code="RPR-W011")
        return cls(int(m.group(1)), int(m.group(2)))

    @classmethod
    def partition(cls, total: int) -> list["ShardSpec"]:
        """All ``total`` slices of a K/N split, in order — together they
        cover every point exactly once (the fabric router assigns one
        slice per serve peer)."""
        return [cls(k, total) for k in range(1, total + 1)]

    def contains(self, token: object) -> bool:
        """Does the point with this stable token land in this shard?"""
        return stable_fingerprint("shard", token) % self.total == \
            self.index - 1

    def select(self, items, key=lambda x: x) -> list:
        return [it for it in items if self.contains(key(it))]

    @property
    def label(self) -> str:
        return f"s{self.index}of{self.total}"

    def run_id(self, base: str) -> str:
        return f"{base}.{self.label}"

    def as_dict(self) -> dict:
        return {"index": self.index, "total": self.total}


def canonical_record(rec: dict) -> dict:
    """One record with every volatile field stripped (recursion-free:
    volatility only occurs at the top level of our records)."""
    return {k: v for k, v in rec.items() if k not in VOLATILE_RECORD_FIELDS}


def base_run_id(run_id: str) -> str:
    """Strip a ``.sKofN`` shard suffix (identity for unsharded ids)."""
    return _SHARD_SUFFIX.sub("", run_id)


def find_run_group(store_root, run: str) -> tuple[str, list[str]]:
    """Resolve ``run`` (a base run id, a shard run id, or a unique
    prefix) to ``(base_id, member run ids)`` within ``store_root``."""
    store = ResultStore(store_root)
    ids = store.run_ids()
    base = base_run_id(run)
    members = [rid for rid in ids if base_run_id(rid) == base]
    if not members:
        bases = sorted({base_run_id(rid) for rid in ids
                        if base_run_id(rid).startswith(base)
                        and not base_run_id(rid).endswith(".merged")})
        if len(bases) > 1:
            raise ShardError(
                f"run prefix {run!r} is ambiguous in {store_root}: "
                f"{bases}", code="RPR-W012")
        if not bases:
            raise ShardError(
                f"no runs matching {run!r} in {store_root}; have {ids}",
                code="RPR-W013")
        base = bases[0]
        members = [rid for rid in ids if base_run_id(rid) == base]
    # never fold a previous merge output back into itself
    members = [rid for rid in members if not rid.endswith(".merged")]
    return base, sorted(members)


@dataclass
class MergeResult:
    """The canonical merged run plus provenance counters."""

    run: RunHandle
    base_id: str
    sources: list[str]
    records: list[dict]
    counters: dict
    corrupt: int
    kind: str

    @property
    def matrix_path(self) -> Path | None:
        path = self.run.dir / "matrix.txt"
        return path if path.exists() else None


def _consistent(manifests: list[dict], key: str):
    """The shared value of ``key`` across shard manifests (None-tolerant)."""
    values = [m[key] for m in manifests if key in m and m[key] is not None]
    if not values:
        return None
    first = values[0]
    for v in values[1:]:
        if v != first:
            raise ShardError(
                f"shard manifests disagree on {key!r}: {first!r} != {v!r} "
                "(were these shards of the same spec?)", code="RPR-W014")
    return first


def merge_runs(store_root, run: str, out_dir=None,
               progress=None) -> MergeResult:
    """Merge every shard of ``run`` into one canonical run directory.

    The output (``<base>.merged`` under ``store_root`` unless ``out_dir``
    overrides it) holds a deterministic ``results.jsonl`` (volatile
    fields stripped, latest record per point, sorted by point id), a
    canonical ``manifest.json`` derived only from merged content, and —
    for fault campaigns — the rendered coverage matrix ``matrix.txt``.
    Merging the shards of a K/N split and merging the unsharded run
    produce byte-identical files.
    """
    base, members = find_run_group(store_root, run)
    store = ResultStore(store_root)
    latest: dict[str, dict] = {}
    manifests: list[dict] = []
    corrupt = 0
    for rid in members:
        handle = store.open_run(rid)
        for rec in handle.records():
            pid = rec.get("point_id")
            if pid is None:
                continue
            latest[pid] = canonical_record(rec)
        corrupt += handle.stats.corrupt
        manifest = handle.read_manifest()
        if manifest:
            manifests.append(manifest)

    kind = _consistent(manifests, "kind") or "run"
    merged_records = [latest[pid] for pid in sorted(latest)]
    counters: dict = {}
    for rec in merged_records:
        status = rec.get("status", "ok")
        counters[status] = counters.get(status, 0) + 1
    divergent = sum(1 for r in merged_records if r.get("divergent"))
    if kind == "difftest":
        counters["divergent"] = divergent

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        merged = RunHandle(out.parent, out.name)
    else:
        merged = store.open_run(f"{base}.merged")
    # rewrite, never append: a re-merge must be idempotent
    if merged.results_path.exists():
        merged.results_path.unlink()
    with open(merged.results_path, "w") as fh:
        for rec in merged_records:
            fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")

    context = _consistent(manifests, "context")
    manifest = {
        "merge_schema": MERGE_SCHEMA,
        "kind": kind,
        "run_id": base,
        "name": _consistent(manifests, "name"),
        "fingerprint": _consistent(manifests, "fingerprint"),
        "context": context,
        "points": sorted(latest),
        "counters": counters,
        "records": len(merged_records),
    }
    merged.write_manifest(manifest)

    if kind == "campaign" and context:
        from repro.faults.campaign import matrix_from_records

        (merged.dir / "matrix.txt").write_text(
            matrix_from_records(merged_records, context) + "\n")

    if progress:
        print(f"merged {len(members)} run(s) -> {merged.dir} "
              f"({len(merged_records)} points, {corrupt} corrupt "
              "journal lines skipped)", file=progress)
    return MergeResult(run=merged, base_id=base, sources=members,
                       records=merged_records, counters=counters,
                       corrupt=corrupt, kind=kind)
