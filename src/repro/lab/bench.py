"""Benchmark-harness glue: a process-wide cache handle + instrumented map.

The benchmark suite (``benchmarks/``) regenerates the paper's tables by
synthesizing the same design points on every run. This module gives it

* :func:`synth` — a drop-in for :func:`repro.core.synth.synthesize` that
  routes through one process-wide :class:`SynthesisCache` whose location
  comes from the ``REPRO_LAB_CACHE`` environment variable (exported by
  ``benchmarks/conftest.py`` *before* any worker process starts, so pool
  workers inherit it);
* :func:`call_with_stats` — wraps a worker function so it returns
  ``(result, cache_stats_delta)``; the conftest aggregates the deltas from
  every worker into the session manifest, which is how a warm-cache rerun
  can *prove* it performed zero re-synthesis.

Cache statistics are per-process counters; aggregation across pool
workers happens via the returned deltas, never via shared state.
"""

from __future__ import annotations

import os

from repro.core.synth import SynthesisOptions, synthesize
from repro.lab.cache import SynthesisCache, cache_key
from repro.platform.device import EP2S180, DeviceModel

__all__ = ["session_cache", "synth", "call_with_stats", "CACHE_ENV"]

CACHE_ENV = "REPRO_LAB_CACHE"

_CACHE: SynthesisCache | None = None


def session_cache() -> SynthesisCache:
    """The process-wide cache (disabled when ``REPRO_LAB_CACHE`` is unset)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = SynthesisCache(os.environ.get(CACHE_ENV) or None)
    return _CACHE


def reset_session_cache() -> None:
    """Drop the process-wide handle (tests re-point ``REPRO_LAB_CACHE``)."""
    global _CACHE
    _CACHE = None


def synth(
    app,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    device: DeviceModel = EP2S180,
):
    """Cache-backed synthesize: returns the image, memoizing it (along
    with its resource and timing estimates) under the content key."""
    from repro.platform.resources import estimate_image
    from repro.platform.timing import estimate_fmax

    cache = session_cache()
    key = cache_key(app, assertions, options, device)
    cached = cache.get(key)
    if cached is not None:
        image, _resources, _fmax = cached
        return image
    image = synthesize(app, assertions=assertions, options=options)
    resources = estimate_image(image, device)
    fmax = estimate_fmax(image, device, resources=resources)
    cache.put(key, (image, resources, fmax))
    return image


def call_with_stats(packed: tuple) -> tuple:
    """Worker shim: ``(fn, item) -> (fn(item), cache stats delta)``."""
    fn, item = packed
    before = session_cache().stats.snapshot()
    result = fn(item)
    return result, session_cache().stats.delta(before)
