"""Benchmark-harness glue: a process-wide cache handle + instrumented map.

The benchmark suite (``benchmarks/``) regenerates the paper's tables by
synthesizing the same design points on every run. This module gives it

* :func:`synth` — a drop-in for :func:`repro.core.synth.synthesize` that
  routes through one process-wide :class:`SynthesisCache` whose location
  comes from the ``REPRO_LAB_CACHE`` environment variable (exported by
  ``benchmarks/conftest.py`` *before* any worker process starts, so pool
  workers inherit it);
* :func:`call_with_stats` — wraps a worker function so it returns
  ``(result, cache_stats_delta)``; the conftest aggregates the deltas from
  every worker into the session manifest, which is how a warm-cache rerun
  can *prove* it performed zero re-synthesis;
* :func:`run_synth_bench` — the incremental-synthesis perf bench (cold
  app vs warm app vs edit-one-process), emitting the same JSON document
  shape as :func:`repro.simc.bench.run_bench` so the ``repro bench``
  baseline gate works on both suites unchanged.

Cache statistics are per-process counters; aggregation across pool
workers happens via the returned deltas, never via shared state.
"""

from __future__ import annotations

import math
import os
import tempfile
import time

from repro.core.synth import SynthesisOptions, synthesize
from repro.lab.cache import SynthesisCache, cache_key
from repro.platform.device import EP2S180, DeviceModel

__all__ = [
    "session_cache", "synth", "call_with_stats", "CACHE_ENV",
    "run_synth_bench", "render_synth_bench",
]

CACHE_ENV = "REPRO_LAB_CACHE"

_CACHE: SynthesisCache | None = None


def session_cache() -> SynthesisCache:
    """The process-wide cache (disabled when ``REPRO_LAB_CACHE`` is unset)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = SynthesisCache(os.environ.get(CACHE_ENV) or None)
    return _CACHE


def reset_session_cache() -> None:
    """Drop the process-wide handle (tests re-point ``REPRO_LAB_CACHE``)."""
    global _CACHE
    _CACHE = None


def synth(
    app,
    assertions: str = "optimized",
    options: SynthesisOptions | None = None,
    device: DeviceModel = EP2S180,
):
    """Cache-backed synthesize: returns the image, memoizing it (along
    with its resource and timing estimates) under the content key."""
    from repro.platform.resources import estimate_image
    from repro.platform.timing import estimate_fmax

    cache = session_cache()
    key = cache_key(app, assertions, options, device)
    cached = cache.get(key)
    if cached is not None:
        image, _resources, _fmax = cached
        return image
    image = synthesize(app, assertions=assertions, options=options)
    resources = estimate_image(image, device)
    fmax = estimate_fmax(image, device, resources=resources)
    cache.put(key, (image, resources, fmax))
    return image


def call_with_stats(packed: tuple) -> tuple:
    """Worker shim: ``(fn, item) -> (fn(item), cache stats delta)``."""
    fn, item = packed
    before = session_cache().stats.snapshot()
    result = fn(item)
    return result, session_cache().stats.delta(before)


# ---- incremental-synthesis perf bench ------------------------------------

def _report_signature(image) -> tuple:
    """Everything the warm/edit legs must reproduce bit-for-bit before
    their timings can be trusted: the full point summary (resources +
    timing) and the assertion decode table."""
    from repro.platform.report import point_summary

    return (
        point_summary(image, EP2S180),
        tuple(sorted(
            (stream, dec.mode, word, name, site.ordinal, site.expr_text)
            for stream, dec in image.assert_decode.items()
            for word, (name, site) in dec.table.items())),
    )


def _bench_synth_app(stages: int, repeats: int) -> list[dict]:
    """Bench one pipeline app through the incremental seam.

    Three legs, each best-of-``repeats`` under a fresh cache root:

    * **cold** — empty cache, every process synthesized (the
      denominator: what a non-incremental toolchain pays every time);
    * **warm** — identical resubmission, every artifact a hit
      (``synth_warm`` speedup = cold / warm);
    * **edit** — one stage's delta constant changed, exactly one
      process rebuilt (``synth_edit`` speedup = cold / edit).

    Before any timing is recorded, the warm and edited images are
    checked against fresh full resyntheses (resource/timing summary and
    assertion decode table), mirroring the bit-identity discipline of
    the simulation bench.
    """
    from repro.apps.pipeline import build_pipeline
    from repro.lab.incremental import synthesize_incremental
    from repro.simc.bench import BenchMismatchError

    name = f"pipeline{stages}"
    edited = {stages // 2: 5}

    def expect(info: dict, resyntheses: int, leg: str) -> None:
        if info["resyntheses"] != resyntheses:
            raise BenchMismatchError(
                f"{name}/{leg}: expected {resyntheses} resyntheses, "
                f"measured {info['resyntheses']}", code="RPR-M006")

    # correctness first: incremental warm/edit output must match a full
    # resynthesis of the same source
    with tempfile.TemporaryDirectory() as root:
        cache = SynthesisCache(root)
        _, info = synthesize_incremental(build_pipeline(stages),
                                         cache=cache)
        expect(info, stages, "cold")
        warm_img, info = synthesize_incremental(build_pipeline(stages),
                                                cache=cache)
        expect(info, 0, "warm")
        edit_img, info = synthesize_incremental(
            build_pipeline(stages, deltas=edited), cache=cache)
        expect(info, 1, "edit")
        for img, app in ((warm_img, build_pipeline(stages)),
                         (edit_img, build_pipeline(stages, deltas=edited))):
            full = synthesize(app)
            if _report_signature(img) != _report_signature(full):
                raise BenchMismatchError(
                    f"{name}: incremental image diverges from full "
                    "resynthesis", code="RPR-M007")

    # the apps are built (C parsed) outside the timed regions: every leg
    # pays that cost identically, and it is not what incremental
    # synthesis changes (synth_process clones, never mutates, app IR)
    base_app = build_pipeline(stages)
    edit_app = build_pipeline(stages, deltas=edited)
    cold_s = warm_s = edit_s = math.inf
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as root:
            cache = SynthesisCache(root)
            t0 = time.perf_counter()
            synthesize_incremental(base_app, cache=cache)
            cold_s = min(cold_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            synthesize_incremental(base_app, cache=cache)
            warm_s = min(warm_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            synthesize_incremental(edit_app, cache=cache)
            edit_s = min(edit_s, time.perf_counter() - t0)

    return [
        {
            "name": name,
            "kind": "synth_warm",
            "processes": stages,
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "speedup": round(cold_s / warm_s, 3),
        },
        {
            "name": name,
            "kind": "synth_edit",
            "processes": stages,
            "cold_s": round(cold_s, 6),
            "edit_s": round(edit_s, 6),
            "resyntheses": 1,
            "speedup": round(cold_s / edit_s, 3),
        },
    ]


def run_synth_bench(quick: bool = False) -> dict:
    """Run the incremental-synthesis bench suite.

    Returns the same document shape as
    :func:`repro.simc.bench.run_bench` (``schema``/``quick``/``entries``/
    ``geomean_speedup``) so ``compare_bench`` and the committed-baseline
    CI gate apply unchanged; entries are keyed ``(name, kind)`` with
    kinds ``synth_warm`` and ``synth_edit``. Quick mode trades timing
    stability (fewer repeats), not workload size, keeping the speedup
    ratios comparable to a full-mode baseline.
    """
    from repro.simc.bench import BENCH_SCHEMA

    repeats = 1 if quick else 3
    entries = []
    for stages in (4, 8):
        entries.extend(_bench_synth_app(stages, repeats))
    speedups = [e["speedup"] for e in entries]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "entries": entries,
        "geomean_speedup": round(geomean, 3),
    }


def render_synth_bench(doc: dict) -> str:
    """Human-readable table for a :func:`run_synth_bench` document."""
    lines = [
        "INCREMENTAL SYNTHESIS BENCH (cold vs warm/edit)"
        + ("  [quick]" if doc.get("quick") else ""),
        f"{'name':<12} {'kind':<11} {'procs':>5} "
        f"{'cold_s':>9} {'leg_s':>9} {'speedup':>8}",
    ]
    for e in doc["entries"]:
        leg_s = e.get("warm_s", e.get("edit_s", 0.0))
        lines.append(
            f"{e['name']:<12} {e['kind']:<11} {e['processes']:>5} "
            f"{e['cold_s']:>9.4f} {leg_s:>9.4f} "
            f"{e['speedup']:>7.2f}x")
    lines.append(f"geomean speedup: {doc['geomean_speedup']:.2f}x")
    return "\n".join(lines)
