"""Append-only JSONL result store with run manifests.

A sweep writes one record per evaluated point to
``<root>/<run_id>/results.jsonl`` the moment the point resolves (append +
flush + fsync, so a SIGINT or crash loses at most the in-flight point),
alongside a ``manifest.json`` snapshot of the run's configuration,
progress counters and cache statistics. Because the run id is derived
from the sweep's content fingerprint, re-invoking the same sweep lands in
the same run directory; :meth:`RunHandle.completed_ids` then tells the
sweep driver which points are already done, so an interrupted run resumes
by evaluating only the missing (or previously failed) points.

A hard kill mid-append leaves a torn final line; :meth:`RunHandle.records`
skips it but **counts** it in :class:`StoreStats` (parallel to
``CacheStats.corrupt``) so drivers can warn that the journal took damage
instead of silently shrinking. The chaos harness
(:mod:`repro.lab.chaos`) injects exactly that kill between append and
fsync to prove resume semantics hold.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

__all__ = ["StoreStats", "RunHandle", "ResultStore"]

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"


@dataclass
class StoreStats:
    """Counters from the most recent journal scan of one handle."""

    records: int = 0
    #: torn/corrupt JSONL lines skipped during the scan — non-zero means
    #: a previous run was killed mid-write (or the disk is rotting)
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"records": self.records, "corrupt": self.corrupt}


class RunHandle:
    """One run directory: an open JSONL results log plus its manifest."""

    def __init__(self, root: Path, run_id: str) -> None:
        self.run_id = run_id
        self.dir = root / run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.dir / RESULTS_NAME
        self.manifest_path = self.dir / MANIFEST_NAME
        #: refreshed by every :meth:`records` scan
        self.stats = StoreStats()
        self._tail_healed = False

    # ---- results log ----------------------------------------------------

    def _heal_torn_tail(self) -> None:
        """A hard kill mid-append can leave the journal's final line
        without its newline. Appending straight onto that tail would fuse
        the torn fragment with the *next* record and corrupt it too, so
        before the first append of a resumed run we terminate the tail —
        the fragment stays one isolated corrupt line."""
        try:
            with open(self.results_path, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
                    fh.flush()
                    os.fsync(fh.fileno())
        except FileNotFoundError:
            pass

    def append(self, record: dict) -> None:
        """Append one JSON record; flushed and fsynced immediately so
        interruption never loses an already-resolved point."""
        if not self._tail_healed:
            self._heal_torn_tail()
            self._tail_healed = True
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.results_path, "a") as fh:
            chaos = _active_chaos()
            if chaos is not None:
                chaos.torn_write_kill(fh, line,
                                      str(record.get("point_id", "")))
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self) -> list[dict]:
        """Every parseable record in append order. Torn/corrupt lines
        (e.g. the half-written final line a hard kill leaves) are skipped
        and counted in :attr:`stats`, never fatal."""
        self.stats = StoreStats()
        if not self.results_path.exists():
            return []
        out = []
        with open(self.results_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    self.stats.corrupt += 1
                    continue
        self.stats.records = len(out)
        return out

    def completed_ids(self, include_failed: bool = False) -> set[str]:
        """Point ids this run has already resolved.

        By default only successful points count as done — failed/timed-out
        points are retried on resume.
        """
        done = set()
        for rec in self.records():
            pid = rec.get("point_id")
            if pid is None:
                continue
            if rec.get("status") == "ok" or include_failed:
                done.add(pid)
        return done

    # ---- manifest -------------------------------------------------------

    def write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {}
        with open(self.manifest_path) as fh:
            return json.load(fh)


class ResultStore:
    """A directory of runs, one subdirectory per run id."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def open_run(self, run_id: str) -> RunHandle:
        return RunHandle(self.root, run_id)

    def run_ids(self) -> list[str]:
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and ((p / RESULTS_NAME).exists()
                               or (p / MANIFEST_NAME).exists())
        )


def _active_chaos():
    """Chaos hook indirection (import guarded so a broken chaos module
    can never take the store down with it)."""
    if not os.environ.get("REPRO_CHAOS"):
        return None
    try:
        from repro.lab.chaos import active_chaos
    except Exception:  # pragma: no cover
        return None
    return active_chaos()
