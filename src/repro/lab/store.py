"""Append-only JSONL result store with run manifests.

A sweep writes one record per evaluated point to
``<root>/<run_id>/results.jsonl`` the moment the point resolves (append +
flush, so a SIGINT or crash loses at most the in-flight point), alongside
a ``manifest.json`` snapshot of the run's configuration, progress counters
and cache statistics. Because the run id is derived from the sweep's
content fingerprint, re-invoking the same sweep lands in the same run
directory; :meth:`RunHandle.completed_ids` then tells the sweep driver
which points are already done, so an interrupted run resumes by evaluating
only the missing (or previously failed) points.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["RunHandle", "ResultStore"]

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"


class RunHandle:
    """One run directory: an open JSONL results log plus its manifest."""

    def __init__(self, root: Path, run_id: str) -> None:
        self.run_id = run_id
        self.dir = root / run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.dir / RESULTS_NAME
        self.manifest_path = self.dir / MANIFEST_NAME

    # ---- results log ----------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one JSON record; flushed immediately so interruption
        never loses an already-resolved point."""
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.results_path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self) -> list[dict]:
        """Every parseable record in append order (a torn final line from
        a hard kill is skipped, not fatal)."""
        if not self.results_path.exists():
            return []
        out = []
        with open(self.results_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return out

    def completed_ids(self, include_failed: bool = False) -> set[str]:
        """Point ids this run has already resolved.

        By default only successful points count as done — failed/timed-out
        points are retried on resume.
        """
        done = set()
        for rec in self.records():
            pid = rec.get("point_id")
            if pid is None:
                continue
            if rec.get("status") == "ok" or include_failed:
                done.add(pid)
        return done

    # ---- manifest -------------------------------------------------------

    def write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {}
        with open(self.manifest_path) as fh:
            return json.load(fh)


class ResultStore:
    """A directory of runs, one subdirectory per run id."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def open_run(self, run_id: str) -> RunHandle:
        return RunHandle(self.root, run_id)

    def run_ids(self) -> list[str]:
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and ((p / RESULTS_NAME).exists()
                               or (p / MANIFEST_NAME).exists())
        )
