"""Declarative design-space sweeps: cross-products, execution, tables.

A sweep is the paper's evaluation shape — app x assertion level x
optimization variant — declared as data (:class:`SweepSpec.cross`),
evaluated in parallel through :class:`repro.lab.executor.LabExecutor` with
every point memoized in :class:`repro.lab.cache.SynthesisCache`, and
journaled point-by-point in :class:`repro.lab.store.ResultStore` so an
interrupted run resumes where it stopped. ``repro sweep`` (see
:mod:`repro.cli`) is the command-line front end.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.synth import LEVELS, SynthesisOptions
from repro.diagnostics.bundle import bundle_name, write_bundle
from repro.errors import ReproError
from repro.lab.cache import SynthesisCache, cache_key
from repro.lab.incremental import synthesize_incremental
from repro.lab.executor import LabExecutor, PointOutcome
from repro.lab.retry import RetryPolicy
from repro.lab.shard import ShardSpec
from repro.lab.store import ResultStore, RunHandle
from repro.platform.device import EP2S180, DeviceModel
from repro.platform.report import point_summary
from repro.platform.resources import estimate_image
from repro.platform.timing import estimate_fmax
from repro.utils.idgen import stable_fingerprint
from repro.utils.tables import render_table

__all__ = [
    "AppSpec",
    "SweepPoint",
    "SweepSpec",
    "SweepResult",
    "OPTION_VARIANTS",
    "build_app",
    "evaluate_point",
    "evaluate_point_cached",
    "run_sweep",
]


class SweepError(ReproError):
    """Raised for malformed sweep specifications."""

    code_prefix = "RPR-W"


# ---- the swept space --------------------------------------------------------


def _build_loopback(params: dict):
    from repro.apps.loopback import build_loopback

    return build_loopback(int(params.get("n", 4)),
                          data=params.get("data"))


def _build_edge(params: dict):
    from repro.apps.edge_detect import build_edge_app

    return build_edge_app(width=int(params.get("width", 16)),
                          height=int(params.get("height", 8)))


def _build_tripledes(params: dict):
    from repro.apps.tripledes import build_tdes_app

    text = params.get("text", "In-circuit!")
    if isinstance(text, str):
        text = text.encode()
    return build_tdes_app(text=text)


def _build_pipeline(params: dict):
    from repro.apps.pipeline import build_pipeline

    deltas = {int(i): int(d) for i, d in dict(params.get("edits", ())).items()}
    return build_pipeline(int(params.get("stages", 3)), deltas=deltas,
                          data=params.get("data"))


def _build_csource(params: dict):
    from repro.runtime.taskgraph import Application

    app = Application(params.get("name", "csource"))
    pd = app.add_c_process(params["source"],
                           filename=params.get("filename", "sweep.c"))
    streams = pd.stream_params
    if len(streams) >= 2:
        app.feed("in", f"{pd.name}.{streams[0]}",
                 data=list(params.get("feed", ())))
        app.sink("out", f"{pd.name}.{streams[1]}")
    elif streams:
        app.sink("out", f"{pd.name}.{streams[0]}")
    return app


#: app-spec kinds resolvable inside sweep workers (everything here must be
#: buildable from plain JSON-able params, which keeps points picklable)
APP_BUILDERS: dict[str, Callable[[dict], object]] = {
    "loopback": _build_loopback,
    "edge": _build_edge,
    "tripledes": _build_tripledes,
    "pipeline": _build_pipeline,
    "csource": _build_csource,
}

#: named SynthesisOptions variants for ablation axes
OPTION_VARIANTS: dict[str, SynthesisOptions] = {
    "default": SynthesisOptions(),
    "noshare": SynthesisOptions(share=False),
    "noreplicate": SynthesisOptions(replicate=False),
    "noparallelize": SynthesisOptions(parallelize=False),
    "multichecker": SynthesisOptions(multichecker=True),
}


@dataclass(frozen=True)
class AppSpec:
    """A picklable recipe for building an Application inside a worker."""

    kind: str
    params: tuple = ()  # sorted (key, value) pairs

    @classmethod
    def make(cls, kind: str, **params) -> "AppSpec":
        if kind not in APP_BUILDERS:
            raise SweepError(
                f"unknown app kind {kind!r}; have {sorted(APP_BUILDERS)}", code="RPR-W001")
        return cls(kind, tuple(sorted(params.items())))

    @property
    def label(self) -> str:
        shown = [f"{k}={v}" for k, v in self.params
                 if k not in ("source", "data", "feed", "pixels")]
        return self.kind + (f"({','.join(shown)})" if shown else "")

    def build(self):
        return build_app(self)


def build_app(spec: AppSpec):
    try:
        builder = APP_BUILDERS[spec.kind]
    except KeyError:
        raise SweepError(f"unknown app kind {spec.kind!r}", code="RPR-W002") from None
    return builder(dict(spec.params))


@dataclass(frozen=True)
class SweepPoint:
    """One (app, level, options) coordinate of the swept space."""

    point_id: str
    app: AppSpec
    level: str
    variant: str = "default"
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    device: DeviceModel = EP2S180


@dataclass
class SweepSpec:
    """A named, ordered collection of sweep points."""

    name: str
    points: list[SweepPoint]

    @classmethod
    def cross(
        cls,
        name: str,
        apps: list[AppSpec],
        levels: tuple[str, ...] = ("none", "optimized"),
        variants: tuple[str, ...] = ("default",),
        device: DeviceModel = EP2S180,
    ) -> "SweepSpec":
        """The paper-shaped cross product app x level x variant."""
        for lv in levels:
            if lv not in LEVELS:
                raise SweepError(f"bad assertion level {lv!r}", code="RPR-W003")
        points = []
        for app in apps:
            for lv in levels:
                for var in variants:
                    try:
                        options = OPTION_VARIANTS[var]
                    except KeyError:
                        raise SweepError(
                            f"unknown option variant {var!r}; "
                            f"have {sorted(OPTION_VARIANTS)}", code="RPR-W004") from None
                    pid = f"{app.label}/{lv}"
                    if var != "default":
                        pid += f"/{var}"
                    points.append(SweepPoint(
                        point_id=pid, app=app, level=lv, variant=var,
                        options=options, device=device,
                    ))
        return cls(name, points)

    def fingerprint(self) -> str:
        """Content id of the swept space (drives the resumable run id)."""
        fp = stable_fingerprint(
            self.name,
            tuple(
                (p.point_id, p.app.kind, p.app.params, p.level, p.variant,
                 p.options.key_parts(), repr(p.device))
                for p in self.points
            ),
        )
        return f"{fp:012x}"

    def run_id(self) -> str:
        return f"{self.name}-{self.fingerprint()}"


# ---- point evaluation (runs inside workers) ---------------------------------


def _lane_signature(result) -> dict:
    """Everything a batched lane must reproduce bit-for-bit from a scalar
    run of the same image (``process_stats`` minus the ``backend`` tag,
    which legitimately differs between the two executors)."""
    return {
        "completed": result.completed,
        "cycles": result.cycles,
        "reason": result.reason,
        "outputs": result.outputs,
        "stderr": list(result.stderr),
        "failures": [(p, repr(s)) for p, s in result.failures],
        "aborted_by": repr(result.aborted_by),
        "first_failure_cycle": result.first_failure_cycle,
        "quarantined": list(result.quarantined),
        "process_stats": {
            name: {k: v for k, v in st.items() if k != "backend"}
            for name, st in result.process_stats.items()
        },
        "fault_events": list(result.fault_events),
    }


def evaluate_point_cached(point: SweepPoint, cache: SynthesisCache,
                          validate_lanes: int = 0) -> dict:
    """Evaluate one point through an existing cache handle.

    This is the in-process reuse seam: sweep workers call it with a fresh
    per-call handle (via :func:`evaluate_point`), while the serve daemon
    (:mod:`repro.serve`) calls it with one long-lived, thread-safe handle
    so every request shares the same warm statistics and disk objects.
    Returns a JSON-able record whose ``cache_stats`` field is the *delta*
    this evaluation contributed (for a fresh handle that equals the
    handle's full stats, so journaled records are unchanged).

    ``validate_lanes > 0`` additionally executes the synthesized image
    once scalar and once through :func:`repro.runtime.hwexec.execute_batch`
    with that many replicated lanes, recording ``lane_check`` = ``"ok"``
    only when every lane reproduces the scalar run bit-for-bit.

    An app-level miss is filled *incrementally*
    (:func:`repro.lab.incremental.synthesize_incremental` — only the
    processes whose per-process fingerprints miss are resynthesized) and
    under a fill lease (concurrent workers/daemons cold-starting the same
    point perform exactly one fill; the rest wait and read it). The
    record reports ``resyntheses``/``proc_hits``/``proc_misses``/
    ``partial_rebuild`` for the incremental work and counts a
    lease-followed fill as a ``cache_hit`` (the point was not
    synthesized here).
    """
    app = build_app(point.app)
    key = cache_key(app, point.level, point.options, point.device)
    t0 = time.monotonic()
    before = cache.stats.snapshot()
    inc_info: dict = {}

    def _produce():
        image, info = synthesize_incremental(
            app, point.level, options=point.options, cache=cache,
            device=point.device)
        inc_info.update(info)
        resources = estimate_image(image, point.device)
        fmax = estimate_fmax(image, point.device, resources=resources)
        return (image, resources, fmax)

    (image, resources, fmax), filled = cache.get_or_fill(key, _produce)
    record = {
        "point_id": point.point_id,
        "app": point.app.label,
        "level": point.level,
        "variant": point.variant,
        "key": key,
        "cache_hit": not filled,
        "resyntheses": inc_info.get("resyntheses", 0),
        "proc_hits": inc_info.get("proc_hits", 0),
        "proc_misses": inc_info.get("proc_misses", 0),
        "partial_rebuild": inc_info.get("partial_rebuild", False),
        "cache_stats": cache.stats.delta(before),
        "elapsed_s": round(time.monotonic() - t0, 4),
    }
    if validate_lanes > 0:
        from repro.runtime.hwexec import LaneSpec, execute, execute_batch

        ref = _lane_signature(execute(image))
        batch = execute_batch(
            image, [LaneSpec() for _ in range(validate_lanes)])
        bad = [i for i, r in enumerate(batch)
               if _lane_signature(r) != ref]
        record["validate_lanes"] = validate_lanes
        record["lane_check"] = (
            "ok" if not bad else "divergent:lanes=" +
            ",".join(map(str, bad)))
    record.update(point_summary(image, point.device,
                                resources=resources, fmax=fmax))
    return record


def evaluate_point(args: tuple) -> dict:
    """Worker entry: evaluate one point through the synthesis cache.

    ``args`` is ``(point, cache_root)`` or ``(point, cache_root,
    validate_lanes)``; module-level and tuple-packed so it pickles into
    ProcessPool workers. Returns a JSON-able record.
    """
    point, cache_root, *rest = args
    validate_lanes = rest[0] if rest else 0
    return evaluate_point_cached(point, SynthesisCache(cache_root),
                                 validate_lanes=validate_lanes)


def point_bundle_context(point: SweepPoint) -> tuple[dict, str | None]:
    """(bundle context, source text) for one point — everything
    :func:`repro.diagnostics.bundle.replay_bundle` needs to re-evaluate it.

    The C source (when the app is a ``csource`` spec) is pulled out of the
    params so the bundle stores it as ``source.c`` rather than inlined in
    the manifest.
    """
    params = dict(point.app.params)
    source = params.pop("source", None)
    context = {
        "point": {
            "point_id": point.point_id,
            "app_kind": point.app.kind,
            "app_params": sorted(params.items()),
            "level": point.level,
            "variant": point.variant,
            "options": dataclasses.asdict(point.options),
        },
    }
    return context, source


# ---- the driver -------------------------------------------------------------


@dataclass
class SweepResult:
    """Latest record per point, plus the run's manifest."""

    spec: SweepSpec
    run: RunHandle
    manifest: dict
    records: dict[str, dict]
    #: the points this run was responsible for (== spec.points unless the
    #: run was sharded with ``--shard K/N``)
    selected: list[SweepPoint] | None = None

    @property
    def points(self) -> list[SweepPoint]:
        return self.selected if self.selected is not None else \
            self.spec.points

    def rows(self) -> list[list[object]]:
        rows = []
        for p in self.points:
            rec = self.records.get(p.point_id)
            if rec is None:
                rows.append([p.point_id, "-", "-", "-", "-", "-", "missing"])
                continue
            if rec.get("status") != "ok":
                rows.append([p.point_id, "-", "-", "-", "-", "-",
                             rec.get("status", "failed")])
                continue
            rows.append([
                p.point_id,
                rec["processes"],
                rec["comb_aluts"],
                rec["registers"],
                rec["bram_bits"],
                f"{rec['fmax_mhz']:.1f}",
                "hit" if rec.get("cache_hit") else "miss",
            ])
        return rows

    def render(self) -> str:
        return render_table(
            ["point", "procs", "ALUTs", "regs", "BRAM bits", "Fmax MHz",
             "cache"],
            self.rows(),
            title=f"SWEEP {self.spec.name} "
                  f"({len(self.points)} points, run {self.run.run_id})",
        )

    @property
    def ok(self) -> bool:
        return self.manifest.get("counters", {}).get("failed", 0) == 0 and \
            len(self.records) == len(self.points)


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    store_root: str = "lab-runs",
    cache_root: str | None = None,
    resume: bool = True,
    timeout: float | None = None,
    progress=None,
    shard: ShardSpec | None = None,
    retry: RetryPolicy | None = None,
    hedge: bool = False,
    validate_lanes: int = 0,
) -> SweepResult:
    """Evaluate ``spec``, journaling every point; resumable and cached.

    ``progress`` is a writable text stream (defaults to stderr; pass
    ``False`` to silence). On KeyboardInterrupt the manifest is finalized
    with ``status="interrupted"`` before the exception propagates; a rerun
    with ``resume=True`` picks up the missing points. ``shard`` restricts
    the run to one deterministic K/N slice of the space (own run
    directory; fold slices back with :func:`repro.lab.shard.merge_runs`);
    ``retry``/``hedge`` configure the executor's fault tolerance.

    ``validate_lanes > 0`` makes every point also execute its image with
    that many batched replication lanes and check them bit-for-bit
    against a scalar run (journaled as ``lane_check``); such runs get
    their own ``-lanesN`` run directory so a plain sweep's journal is
    never mistaken for a validated one.
    """
    out = sys.stderr if progress is None else progress
    store = ResultStore(store_root)
    selected = (shard.select(spec.points, key=lambda p: p.point_id)
                if shard is not None else list(spec.points))
    run_id = shard.run_id(spec.run_id()) if shard is not None \
        else spec.run_id()
    if validate_lanes > 0:
        run_id += f"-lanes{validate_lanes}"
    run = store.open_run(run_id)
    if not resume and run.results_path.exists():
        run.results_path.unlink()
    done = run.completed_ids() if resume else set()
    journal_corrupt = run.stats.corrupt
    pending = [p for p in selected if p.point_id not in done]

    counters = {
        "total": len(selected),
        "skipped_resume": len(selected) - len(pending),
        "done": 0,
        "failed": 0,
        "retried": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "cache_corrupt": 0,
        "journal_corrupt": journal_corrupt,
        # incremental-synthesis work: processes actually rebuilt vs
        # per-process artifacts reused, and fill-lease contention
        "resyntheses": 0,
        "proc_hits": 0,
        "proc_misses": 0,
        "partial_rebuilds": 0,
        "lease_waits": 0,
        "lease_takeovers": 0,
    }
    bundle_paths: list[str] = []
    executor = LabExecutor(jobs=jobs, timeout=timeout, retry=retry,
                           hedge=hedge)

    def manifest(status: str, wall: float) -> dict:
        counters["retried"] = executor.stats.retries
        return {
            "kind": "sweep",
            "run_id": run.run_id,
            "name": spec.name,
            "sweep": spec.name,
            "fingerprint": spec.fingerprint(),
            "status": status,
            "jobs": jobs,
            "validate_lanes": validate_lanes,
            "shard": shard.as_dict() if shard is not None else None,
            "cache_root": str(cache_root) if cache_root else None,
            "store_root": str(store_root),
            "counters": dict(counters),
            "executor": executor.stats.as_dict(),
            "retry": retry.as_dict() if retry is not None else None,
            "breaker_open": retry.breaker_open if retry is not None
            else False,
            "bundles": list(bundle_paths),
            "wall_time_s": round(wall, 3),
            "points": [p.point_id for p in selected],
            "spec_points": len(spec.points),
        }

    def say(text: str) -> None:
        if out:
            print(text, file=out, flush=True)

    shard_note = f" [shard {shard.index}/{shard.total}]" \
        if shard is not None else ""
    say(f"sweep {spec.name}{shard_note}: {len(pending)}/{len(selected)} "
        f"points to run ({counters['skipped_resume']} already done), "
        f"jobs={jobs}")
    if journal_corrupt:
        say(f"sweep {spec.name}: WARNING: skipped {journal_corrupt} "
            f"torn/corrupt journal line"
            f"{'' if journal_corrupt == 1 else 's'} in "
            f"{run.results_path} (a previous run died mid-write; the "
            "affected points re-run)")
    t0 = time.monotonic()
    run.write_manifest(manifest("running", 0.0))

    def on_result(oc: PointOutcome) -> None:
        point = pending[oc.index]
        if oc.ok:
            record = dict(oc.value)
            record["status"] = "ok"
            record["attempts"] = oc.attempts
            counters["done"] += 1
            if record.get("cache_hit"):
                counters["cache_hits"] += 1
            else:
                counters["cache_misses"] += 1
            cs = record.get("cache_stats") or {}
            corrupt = cs.get("corrupt", 0)
            counters["cache_corrupt"] += corrupt
            counters["resyntheses"] += record.get("resyntheses", 0)
            counters["proc_hits"] += record.get("proc_hits", 0)
            counters["proc_misses"] += record.get("proc_misses", 0)
            if record.get("partial_rebuild"):
                counters["partial_rebuilds"] += 1
            counters["lease_waits"] += cs.get("lease_waits", 0)
            counters["lease_takeovers"] += cs.get("lease_takeovers", 0)
            note = "hit" if record.get("cache_hit") else "miss"
            if corrupt:
                note += f", {corrupt} corrupt cache entr" \
                        + ("y evicted" if corrupt == 1 else "ies evicted")
        else:
            record = {
                "point_id": point.point_id,
                "status": oc.status,
                "error": oc.error,
                "attempts": oc.attempts,
                "diagnostics": list(oc.diagnostics),
            }
            counters["failed"] += 1
            note = oc.error
            context, source = point_bundle_context(point)
            bdir = write_bundle(
                run.dir / "bundles" / bundle_name(point.point_id),
                "sweep", list(oc.diagnostics),
                context=context, source=source,
            )
            record["bundle"] = str(bdir)
            bundle_paths.append(str(bdir))
            note += f" [bundle: {bdir}]"
        run.append(record)
        finished = counters["done"] + counters["failed"]
        say(f"[{finished + counters['skipped_resume']}/{counters['total']}] "
            f"{point.point_id}: {oc.status} ({note})")

    try:
        executor.map(evaluate_point,
                     [(p, cache_root, validate_lanes) for p in pending],
                     on_result=on_result)
    except KeyboardInterrupt:
        run.write_manifest(manifest("interrupted", time.monotonic() - t0))
        say(f"sweep {spec.name}: interrupted after "
            f"{counters['done']} points; rerun to resume")
        raise

    wall = time.monotonic() - t0
    status = "completed" if counters["failed"] == 0 else "completed-with-failures"
    run.write_manifest(manifest(status, wall))
    say(f"sweep {spec.name}: points total={counters['total']} "
        f"done={counters['done']} failed={counters['failed']} "
        f"skipped={counters['skipped_resume']}, cache "
        f"hits={counters['cache_hits']} misses={counters['cache_misses']}, "
        f"wall time {wall:.2f}s")
    say(f"sweep {spec.name}: incremental resyntheses="
        f"{counters['resyntheses']} proc_hits={counters['proc_hits']} "
        f"proc_misses={counters['proc_misses']} "
        f"partial_rebuilds={counters['partial_rebuilds']} "
        f"lease_waits={counters['lease_waits']} "
        f"lease_takeovers={counters['lease_takeovers']}")
    if counters["cache_corrupt"]:
        say(f"sweep {spec.name}: WARNING: evicted "
            f"{counters['cache_corrupt']} corrupt cache "
            f"entr{'y' if counters['cache_corrupt'] == 1 else 'ies'} "
            f"under {cache_root} (affected points re-synthesized)")
    if bundle_paths:
        say(f"sweep {spec.name}: {len(bundle_paths)} failure bundle(s) "
            f"written; inspect with 'repro replay <bundle>'")

    latest: dict[str, dict] = {}
    for rec in run.records():
        pid = rec.get("point_id")
        if pid is not None:
            latest[pid] = rec
    return SweepResult(spec=spec, run=run, manifest=run.read_manifest(),
                       records=latest, selected=selected)
