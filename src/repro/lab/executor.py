"""Fault-tolerant parallel point runner for design-space campaigns.

``LabExecutor.map`` evaluates picklable work items through a
``ProcessPoolExecutor`` (or inline for ``jobs <= 1`` — the two paths are
behaviorally identical, which is what makes "same results at any --jobs"
testable). The executor is the fabric layer of million-point campaigns,
so it never lets one bad point — or one bad *worker* — cost the run:

* a worker **exception** is caught and recorded as a failed
  :class:`PointOutcome` (traceback preserved) while every other point
  completes;
* a worker **hard crash** (segfault, ``os._exit``) breaks the pool; the
  executor salvages every completed result, blames the crash on the
  oldest started point (``RPR-E001``), requeues the rest on a fresh
  pool, and gives up with ``RPR-E003`` rather than looping if pools keep
  breaking spontaneously;
* per-point **timeouts are deadline-based**: each point's clock starts
  when its worker actually begins (not when the future was submitted, and
  not when the driver happens to wait on it). A point past its deadline
  is marked ``status="timeout"`` (``RPR-E002``) and its stuck worker
  process is **hard-killed** — the pool slot is reclaimed and pool
  shutdown never blocks on an abandoned worker;
* with a :class:`repro.lab.retry.RetryPolicy`, transient failures
  (crash/timeout codes) are **retried** with exponential backoff and
  deterministic jitter, bounded by the policy's circuit breaker; the
  final :class:`PointOutcome` journals how many attempts ran;
* with ``hedge=True``, **stragglers are hedged**: once the queue is
  drained and a point has run far beyond the median completion time, a
  speculative duplicate is submitted and the first result wins (the
  loser is ignored, and hard-killed at teardown if it never finishes);
* **KeyboardInterrupt** propagates — resumability is the store's job
  (:mod:`repro.lab.store`), not the executor's.

Results always come back in submission order regardless of completion
order, so parallel campaigns are deterministic given deterministic
workers. :mod:`repro.lab.chaos` hooks into the worker shim, which is how
the crash/hang half of the chaos suite exercises everything above.
"""

from __future__ import annotations

import heapq
import os
import shutil
import signal
import tempfile
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.diagnostics.bridge import diagnostics_from_exception
from repro.diagnostics.core import Diagnostic

__all__ = ["ExecStats", "PointOutcome", "LabExecutor"]


@dataclass
class PointOutcome:
    """The fate of one work item."""

    index: int
    status: str                 # 'ok' | 'failed' | 'timeout'
    value: object = None        # worker return value when status == 'ok'
    error: str = ""             # one-line error summary otherwise
    detail: str = ""            # traceback text for failed points
    #: structured diagnostic dicts for non-ok points (see
    #: :mod:`repro.diagnostics`) — what result records and failure
    #: bundles journal instead of the traceback strings above
    diagnostics: list = field(default_factory=list)
    #: how many executions this point took (1 = no retries); journaled
    #: into result records by the sweep/campaign/difftest drivers
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ExecStats:
    """What the fabric did beyond plain execution, for manifests."""

    retries: int = 0
    timeouts: int = 0
    worker_kills: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    pool_breaks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_kills": self.worker_kills,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "pool_breaks": self.pool_breaks,
        }

    def merge(self, other: dict) -> None:
        """Fold a journaled stats dict (a manifest's ``executor`` block)
        into this aggregate — the serve daemon's ``/stats`` verb sums the
        fabric work of every job it ran through one of these."""
        self.retries += other.get("retries", 0)
        self.timeouts += other.get("timeouts", 0)
        self.worker_kills += other.get("worker_kills", 0)
        self.hedges += other.get("hedges", 0)
        self.hedge_wins += other.get("hedge_wins", 0)
        self.pool_breaks += other.get("pool_breaks", 0)


def _harness_diagnostics(code: str, message: str) -> list:
    """A coded diagnostic for failures with no exception object (a worker
    that segfaulted, a point that timed out)."""
    return [Diagnostic(code=code, severity="error", message=message).to_dict()]


def _outcome_from_exc(index: int, exc: BaseException) -> PointOutcome:
    return PointOutcome(
        index=index,
        status="failed",
        error=f"{type(exc).__name__}: {exc}",
        detail="".join(traceback.format_exception(exc)),
        diagnostics=diagnostics_from_exception(exc),
    )


def _worker_shim(fn, item, trace_path, token):
    """Worker-side wrapper around ``fn``.

    Publishes the worker's pid to ``trace_path`` the moment execution
    starts — that file's mtime is the point's deadline clock and its
    content is what the driver ``SIGKILL``s when the point hangs — and
    gives :mod:`repro.lab.chaos` its injection seam (a chaos-armed run
    may crash or hang right here, exactly like a faulty worker would).
    """
    if trace_path:
        try:
            with open(trace_path, "w") as fh:
                fh.write(str(os.getpid()))
        except OSError:
            pass
    try:
        from repro.lab.chaos import active_chaos

        chaos = active_chaos()
        if chaos is not None:
            chaos.injure_worker(token)
        return fn(item)
    finally:
        if trace_path:
            try:
                os.unlink(trace_path)
            except OSError:
                pass


@dataclass
class _Task:
    """One scheduled execution of one point (retries/hedges clone it)."""

    index: int
    item: object
    attempt: int = 1
    hedge: bool = False
    uid: int = 0                  # unique per submission (trace filename)
    started: float | None = None  # wall-clock worker start, once observed
    submitted: float | None = None  # fallback clock when start unobserved


class _MapState:
    """Book-keeping for one ``map`` call's pool path."""

    def __init__(self, n_items: int) -> None:
        self.n_items = n_items
        self.ready: deque[_Task] = deque()
        self.delayed: list[tuple[float, int, _Task]] = []  # heap
        self.inflight: dict[object, _Task] = {}
        self.resolved: dict[int, PointOutcome] = {}
        self.index_inflight: dict[int, int] = {}
        self.hedged: set[int] = set()
        self.durations: list[float] = []
        self.expected_break = False
        self.seq = 0

    def next_uid(self) -> int:
        self.seq += 1
        return self.seq

    @property
    def done(self) -> bool:
        return len(self.resolved) >= self.n_items


class LabExecutor:
    """Runs ``fn(item)`` over many items with crash isolation.

    ``jobs <= 1`` runs inline (no subprocesses, no pickling round-trip);
    ``jobs > 1`` uses a process pool. ``timeout`` bounds the wall time a
    point may *run* (measured from worker start); ``retry`` is an
    optional :class:`repro.lab.retry.RetryPolicy`; ``hedge`` enables
    speculative re-submission of tail stragglers.
    """

    #: how many times a spontaneously broken pool is replaced before the
    #: remaining points are marked failed (deliberate stuck-worker kills
    #: do not count against this)
    MAX_POOL_RESTARTS = 2

    #: event-loop wait quantum when deadlines/hedges need polling
    QUANTUM = 0.05

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 mp_context=None, retry=None, hedge: bool = False,
                 hedge_factor: float = 4.0, hedge_min_wait: float = 1.0,
                 hedge_min_samples: int = 3) -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.mp_context = mp_context
        self.retry = retry
        self.hedge = hedge
        self.hedge_factor = hedge_factor
        self.hedge_min_wait = hedge_min_wait
        self.hedge_min_samples = hedge_min_samples
        self.stats = ExecStats()
        self._trace_dir: str | None = None

    def map(
        self,
        fn: Callable,
        items: Sequence,
        on_result: Callable[[PointOutcome], None] | None = None,
    ) -> list[PointOutcome]:
        """Evaluate ``fn`` over ``items``; one PointOutcome per item, in
        order. ``on_result`` is invoked once per point as it resolves."""
        items = list(items)
        self.stats = ExecStats()
        if self.jobs == 1 or len(items) <= 1:
            return self._map_inline(fn, items, on_result)
        return self._map_pool(fn, items, on_result)

    # ---- inline path ----------------------------------------------------

    def _map_inline(self, fn, items, on_result) -> list[PointOutcome]:
        outcomes = []
        for index, item in enumerate(items):
            attempt = 1
            while True:
                try:
                    outcome = PointOutcome(index=index, status="ok",
                                           value=fn(item))
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:  # crash isolation
                    outcome = _outcome_from_exc(index, exc)
                outcome.attempts = attempt
                if (not outcome.ok and self.retry is not None
                        and self.retry.should_retry(outcome, attempt)):
                    self.stats.retries += 1
                    attempt += 1
                    time.sleep(self.retry.delay(attempt, repr(item)))
                    continue
                break
            if self.retry is not None:
                self.retry.observe(outcome.ok)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    # ---- pool path ------------------------------------------------------

    @property
    def _needs_trace(self) -> bool:
        return self.timeout is not None or self.hedge

    def _map_pool(self, fn, items, on_result) -> list[PointOutcome]:
        state = _MapState(len(items))
        for index, item in enumerate(items):
            state.ready.append(_Task(index=index, item=item,
                                     uid=state.next_uid()))
        if self._needs_trace:
            self._trace_dir = tempfile.mkdtemp(prefix="labexec-")

        def emit(oc: PointOutcome) -> None:
            state.resolved[oc.index] = oc
            if on_result is not None:
                on_result(oc)

        pool = None
        restarts = 0
        try:
            while not state.done:
                now = time.monotonic()
                while state.delayed and state.delayed[0][0] <= now:
                    _, _, task = heapq.heappop(state.delayed)
                    state.ready.append(task)
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.jobs, max(1, len(items))),
                        mp_context=self.mp_context,
                    )
                broken = not self._submit_ready(pool, fn, state)
                if not broken and state.inflight:
                    done, _ = wait(list(state.inflight),
                                   timeout=self._quantum(state),
                                   return_when=FIRST_COMPLETED)
                    for fut in done:
                        broken |= self._collect(fut, state, emit)
                    broken |= self._reap_deadlines(state, emit)
                    self._maybe_hedge(pool, fn, state)
                elif not broken and not state.inflight:
                    if state.delayed:
                        pause = state.delayed[0][0] - time.monotonic()
                        if pause > 0:
                            time.sleep(min(pause, 1.0))
                    elif not state.ready:
                        break  # nothing anywhere: all resolved
                broken = broken or self._pool_broken(pool)
                if broken:
                    deliberate = state.expected_break
                    self._handle_break(state, emit)
                    self._drain_pool(pool, state)
                    pool = None
                    if not deliberate:
                        self.stats.pool_breaks += 1
                        restarts += 1
                        if restarts > self.MAX_POOL_RESTARTS:
                            self._give_up(state, emit)
                            break
        finally:
            self._drain_pool(pool, state)
            if self._trace_dir is not None:
                shutil.rmtree(self._trace_dir, ignore_errors=True)
                self._trace_dir = None
        return [state.resolved[i] for i in sorted(state.resolved)]

    # ---- submission -----------------------------------------------------

    def _trace_path(self, task: _Task) -> str | None:
        if self._trace_dir is None:
            return None
        return os.path.join(self._trace_dir, f"t{task.uid}.pid")

    def _submit_ready(self, pool, fn, state) -> bool:
        """Submit every ready task; False when the pool refused (broken)."""
        while state.ready:
            task = state.ready.popleft()
            if task.index in state.resolved:
                continue
            try:
                fut = pool.submit(_worker_shim, fn, task.item,
                                  self._trace_path(task), repr(task.item))
            except BrokenExecutor:
                state.ready.appendleft(task)
                return False
            except RuntimeError:
                # pool is shutting down underneath us (interpreter exit)
                state.ready.appendleft(task)
                return False
            task.submitted = time.time()
            state.inflight[fut] = task
            state.index_inflight[task.index] = \
                state.index_inflight.get(task.index, 0) + 1
        return True

    def _quantum(self, state) -> float | None:
        candidates = []
        if self.timeout is not None or self.hedge:
            candidates.append(self.QUANTUM)
        if state.delayed:
            candidates.append(
                max(0.0, state.delayed[0][0] - time.monotonic()))
        return min(candidates) if candidates else None

    # ---- completion -----------------------------------------------------

    def _collect(self, fut, state, emit) -> bool:
        """Fold one completed future into the state; True on pool break."""
        task = state.inflight.pop(fut, None)
        if task is None:
            return False
        state.index_inflight[task.index] = \
            max(0, state.index_inflight.get(task.index, 1) - 1)
        if task.index in state.resolved:
            # hedge loser (or post-kill echo of a timed-out point)
            return False
        try:
            value = fut.result(timeout=0)
        except KeyboardInterrupt:
            raise
        except BrokenExecutor:
            # the whole pool died; _handle_break assigns blame with the
            # full picture, so just put the task back in contention
            state.inflight[fut] = task
            state.index_inflight[task.index] += 1
            return True
        except BaseException as exc:
            if state.index_inflight.get(task.index, 0) > 0:
                return False  # a live twin may still succeed
            self._finalize(task, _outcome_from_exc(task.index, exc),
                           state, emit)
            return False
        # completed workers have unlinked their pid file, so fall back to
        # submit time — with free workers the two clocks nearly coincide
        start = task.started if task.started is not None else task.submitted
        if start is not None:
            state.durations.append(max(0.0, time.time() - start))
        if task.hedge:
            self.stats.hedge_wins += 1
        self._finalize(task, PointOutcome(index=task.index, status="ok",
                                          value=value), state, emit)
        return False

    def _finalize(self, task: _Task, outcome: PointOutcome, state,
                  emit) -> None:
        """Retry-or-emit decision for one finished execution."""
        if task.index in state.resolved:
            return
        outcome.attempts = task.attempt
        if (not outcome.ok and self.retry is not None
                and self.retry.should_retry(outcome, task.attempt)):
            self.stats.retries += 1
            clone = replace(task, attempt=task.attempt + 1, hedge=False,
                            started=None, uid=state.next_uid())
            delay = self.retry.delay(clone.attempt, repr(task.item))
            heapq.heappush(state.delayed,
                           (time.monotonic() + delay, clone.uid, clone))
            return
        if self.retry is not None:
            self.retry.observe(outcome.ok)
        emit(outcome)

    # ---- deadlines and stuck-worker kills -------------------------------

    def _task_started(self, task: _Task) -> float | None:
        """Wall-clock time the worker began this task (pid-file mtime)."""
        if task.started is not None:
            return task.started
        path = self._trace_path(task)
        if path is None:
            return None
        try:
            task.started = os.stat(path).st_mtime
        except OSError:
            return None
        return task.started

    def _kill_task_worker(self, task: _Task) -> bool:
        """SIGKILL the worker running ``task``; True when a kill was sent."""
        path = self._trace_path(task)
        if path is None:
            return False
        try:
            with open(path) as fh:
                pid = int(fh.read().strip() or "0")
        except (OSError, ValueError):
            return False
        if pid <= 0:
            return False
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            return False
        self.stats.worker_kills += 1
        return True

    def _reap_deadlines(self, state, emit) -> bool:
        """Time out points that have *run* past the deadline; kill their
        workers. Returns True when a kill will break the pool."""
        if self.timeout is None:
            return False
        now = time.time()
        broke = False
        for fut, task in list(state.inflight.items()):
            if fut.done():
                continue
            started = self._task_started(task)
            if started is None or now - started < self.timeout:
                continue
            state.inflight.pop(fut)
            state.index_inflight[task.index] = \
                max(0, state.index_inflight.get(task.index, 1) - 1)
            self.stats.timeouts += 1
            already = task.index in state.resolved
            if not fut.cancel():
                if self._kill_task_worker(task):
                    state.expected_break = True
                    broke = True
            if not already:
                self._finalize(task, PointOutcome(
                    index=task.index, status="timeout",
                    error=f"timed out after {self.timeout}s",
                    diagnostics=_harness_diagnostics(
                        "RPR-E002", f"timed out after {self.timeout}s"),
                ), state, emit)
        return broke

    # ---- straggler hedging ----------------------------------------------

    def _maybe_hedge(self, pool, fn, state) -> None:
        """Speculatively duplicate tail stragglers, first result wins."""
        if not self.hedge or state.ready or state.delayed:
            return
        if len(state.durations) < self.hedge_min_samples:
            return
        if len(state.inflight) >= self.jobs:
            return  # no idle workers to speculate on
        ordered = sorted(state.durations)
        median = ordered[len(ordered) // 2]
        threshold = max(self.hedge_min_wait, self.hedge_factor * median)
        now = time.time()
        for fut, task in list(state.inflight.items()):
            if task.hedge or task.index in state.hedged:
                continue
            started = self._task_started(task)
            if started is None or now - started < threshold:
                continue
            twin = replace(task, hedge=True, started=None,
                           uid=state.next_uid())
            try:
                tfut = pool.submit(_worker_shim, fn, twin.item,
                                   self._trace_path(twin), repr(twin.item))
            except (BrokenExecutor, RuntimeError):
                return
            twin.submitted = time.time()
            state.inflight[tfut] = twin
            state.index_inflight[twin.index] = \
                state.index_inflight.get(twin.index, 0) + 1
            state.hedged.add(task.index)
            self.stats.hedges += 1
            if len(state.inflight) >= self.jobs:
                return

    # ---- pool breaks ----------------------------------------------------

    @staticmethod
    def _pool_broken(pool) -> bool:
        return bool(getattr(pool, "_broken", False))

    def _handle_break(self, state, emit) -> None:
        """Salvage a broken pool: keep completed results, blame the crash
        (when spontaneous) on the oldest started task, requeue the rest."""
        candidates: list[_Task] = []
        for fut, task in list(state.inflight.items()):
            if task.index in state.resolved:
                continue
            if fut.done() and not fut.cancelled():
                try:
                    value = fut.result(timeout=0)
                except KeyboardInterrupt:
                    raise
                except BrokenExecutor:
                    candidates.append(task)
                    continue
                except BaseException as exc:
                    self._finalize(task, _outcome_from_exc(task.index, exc),
                                   state, emit)
                    continue
                self._finalize(task, PointOutcome(
                    index=task.index, status="ok", value=value), state, emit)
                continue
            fut.cancel()
            candidates.append(task)
        state.inflight.clear()
        state.index_inflight.clear()
        # one task per index survives (hedge twins collapse)
        by_index: dict[int, _Task] = {}
        for task in candidates:
            keep = by_index.get(task.index)
            if keep is None or (keep.hedge and not task.hedge):
                by_index[task.index] = task
        ordered = [by_index[i] for i in sorted(by_index)]
        blame: _Task | None = None
        if not state.expected_break and ordered:
            started = [t for t in ordered
                       if self._task_started(t) is not None]
            blame = (started or ordered)[0]
            msg = ("worker crashed: the process pool broke while this "
                   "point was running")
            self._finalize(blame, PointOutcome(
                index=blame.index, status="failed",
                error=msg,
                diagnostics=_harness_diagnostics("RPR-E001", msg),
            ), state, emit)
        for task in ordered:
            if task is blame:
                continue
            state.ready.append(replace(task, hedge=False, started=None,
                                       uid=state.next_uid()))
        state.expected_break = False

    def _give_up(self, state, emit) -> None:
        """Pools keep breaking spontaneously: fail the stragglers."""
        leftovers = list(state.ready) + [t for _, _, t in state.delayed]
        state.ready.clear()
        state.delayed.clear()
        msg = "worker pool broke repeatedly; giving up"
        for task in leftovers:
            if task.index in state.resolved:
                continue
            oc = PointOutcome(
                index=task.index, status="failed", error=msg,
                diagnostics=_harness_diagnostics("RPR-E003", msg),
            )
            oc.attempts = task.attempt
            if self.retry is not None:
                self.retry.observe(False)
            emit(oc)

    # ---- teardown -------------------------------------------------------

    def _drain_pool(self, pool, state=None) -> None:
        """Dispose of a pool without ever blocking on a stuck worker."""
        if pool is None:
            return
        # snapshot first: shutdown() clears _processes even with wait=False
        processes = getattr(pool, "_processes", None) or {}
        procs = [processes[k] for k in list(processes)]
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for p in procs:
            try:
                p.terminate()
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for p in procs:
            try:
                p.join(max(0.0, deadline - time.monotonic()))
                if p.is_alive():
                    p.kill()
                    p.join(1.0)
            except Exception:
                pass
