"""Crash-isolated parallel point runner for design-space sweeps.

``LabExecutor.map`` evaluates picklable work items through a
``ProcessPoolExecutor`` (or inline for ``jobs <= 1`` — the two paths are
behaviorally identical, which is what makes "same results at any --jobs"
testable). The executor never lets one bad point kill a sweep:

* a worker **exception** is caught and recorded as a failed
  :class:`PointOutcome` (traceback preserved) while every other point
  completes;
* a worker **hard crash** (segfault, ``os._exit``) breaks the pool; the
  executor records the point it was waiting on as failed, starts a fresh
  pool for the unfinished remainder, and if that pool breaks too it marks
  the stragglers failed rather than looping — the sweep always terminates
  and the failed points stay re-runnable via the resumable store. Crashing
  points are never re-executed inline, so a hostile worker cannot take the
  orchestrating process down with it;
* a per-point **timeout** marks the point failed with ``status="timeout"``
  rather than waiting forever (the stuck worker process is abandoned to
  the pool's shutdown);
* **KeyboardInterrupt** propagates — resumability is the store's job
  (:mod:`repro.lab.store`), not the executor's.

Results always come back in submission order regardless of completion
order, so parallel sweeps are deterministic given deterministic workers.
"""

from __future__ import annotations

import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, TimeoutError
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.diagnostics.bridge import diagnostics_from_exception
from repro.diagnostics.core import Diagnostic

__all__ = ["PointOutcome", "LabExecutor"]


@dataclass
class PointOutcome:
    """The fate of one work item."""

    index: int
    status: str                 # 'ok' | 'failed' | 'timeout'
    value: object = None        # worker return value when status == 'ok'
    error: str = ""             # one-line error summary otherwise
    detail: str = ""            # traceback text for failed points
    #: structured diagnostic dicts for non-ok points (see
    #: :mod:`repro.diagnostics`) — what result records and failure
    #: bundles journal instead of the traceback strings above
    diagnostics: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _harness_diagnostics(code: str, message: str) -> list:
    """A coded diagnostic for failures with no exception object (a worker
    that segfaulted, a point that timed out)."""
    return [Diagnostic(code=code, severity="error", message=message).to_dict()]


def _outcome_from_exc(index: int, exc: BaseException) -> PointOutcome:
    return PointOutcome(
        index=index,
        status="failed",
        error=f"{type(exc).__name__}: {exc}",
        detail="".join(traceback.format_exception(exc)),
        diagnostics=diagnostics_from_exception(exc),
    )


class LabExecutor:
    """Runs ``fn(item)`` over many items with crash isolation.

    ``jobs <= 1`` runs inline (no subprocesses, no pickling round-trip);
    ``jobs > 1`` uses a process pool. ``timeout`` bounds the wall time
    spent waiting on any single point.
    """

    #: how many times a broken pool is replaced before giving up
    MAX_POOL_RESTARTS = 1

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 mp_context=None) -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.mp_context = mp_context

    def map(
        self,
        fn: Callable,
        items: Sequence,
        on_result: Callable[[PointOutcome], None] | None = None,
    ) -> list[PointOutcome]:
        """Evaluate ``fn`` over ``items``; one PointOutcome per item, in
        order. ``on_result`` is invoked once per point as it resolves."""
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return self._map_inline(fn, enumerate(items), on_result)
        return self._map_pool(fn, items, on_result)

    # ---- inline path ----------------------------------------------------

    def _map_inline(self, fn, indexed, on_result) -> list[PointOutcome]:
        outcomes = []
        for index, item in indexed:
            try:
                outcome = PointOutcome(index=index, status="ok",
                                       value=fn(item))
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # crash isolation
                outcome = _outcome_from_exc(index, exc)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    # ---- pool path ------------------------------------------------------

    def _map_pool(self, fn, items, on_result) -> list[PointOutcome]:
        outcomes: dict[int, PointOutcome] = {}

        def emit(oc: PointOutcome) -> None:
            outcomes[oc.index] = oc
            if on_result is not None:
                on_result(oc)

        pending = list(enumerate(items))
        restarts = 0
        while pending:
            pending = self._pool_round(fn, pending, emit)
            if pending:
                if restarts >= self.MAX_POOL_RESTARTS:
                    for index, _item in pending:
                        emit(PointOutcome(
                            index=index, status="failed",
                            error="worker pool broke repeatedly; giving up",
                            diagnostics=_harness_diagnostics(
                                "RPR-E003",
                                "worker pool broke repeatedly; giving up"),
                        ))
                    break
                restarts += 1
        return [outcomes[i] for i in sorted(outcomes)]

    def _pool_round(self, fn, pending, emit):
        """One pool lifetime; returns the points left unresolved by a
        broken pool (empty when the round completed normally)."""
        unresolved: list[tuple[int, object]] = []
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)),
            mp_context=self.mp_context,
        ) as pool:
            futures = [(i, item, pool.submit(fn, item))
                       for i, item in pending]
            broken = False
            for index, item, fut in futures:
                if broken:
                    # the pool died: salvage results that completed before
                    # the break, requeue everything else for the next pool
                    try:
                        emit(PointOutcome(index=index, status="ok",
                                          value=fut.result(timeout=0)))
                    except KeyboardInterrupt:
                        raise
                    except BaseException:
                        unresolved.append((index, item))
                    continue
                try:
                    outcome = PointOutcome(
                        index=index, status="ok",
                        value=fut.result(timeout=self.timeout),
                    )
                except TimeoutError:
                    fut.cancel()
                    outcome = PointOutcome(
                        index=index, status="timeout",
                        error=f"timed out after {self.timeout}s",
                        diagnostics=_harness_diagnostics(
                            "RPR-E002", f"timed out after {self.timeout}s"),
                    )
                except KeyboardInterrupt:
                    raise
                except BrokenExecutor as exc:
                    broken = True
                    outcome = PointOutcome(
                        index=index, status="failed",
                        error=f"worker crashed: {type(exc).__name__}: {exc}",
                        diagnostics=_harness_diagnostics(
                            "RPR-E001",
                            f"worker crashed: {type(exc).__name__}: {exc}"),
                    )
                except BaseException as exc:
                    outcome = _outcome_from_exc(index, exc)
                emit(outcome)
        return unresolved
