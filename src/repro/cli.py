"""Command-line interface: compile dialect C to Verilog + reports.

    python -m repro compile app.c [--assertions LEVEL] [-o OUTDIR]
    python -m repro synth app.c [--color | --json] [--bundle DIR]
    python -m repro report  app.c [--assertions LEVEL]
    python -m repro simulate app.c --feed 1,2,3 [--assertions LEVEL]
    python -m repro campaign --app tripledes --seed 0 --count 8 [--jobs N]
    python -m repro sweep --apps loopback:4,edge:16x8 --levels none,optimized \\
        --jobs 4 --store lab-runs --cache lab-cache \\
        [--shard K/N] [--retries 2] [--hedge]
    python -m repro merge <run-id-or-prefix> --store lab-runs
    python -m repro replay lab-runs/<run>/bundles/<point>
    python -m repro serve --port 0 --jobs 4 --cache serve-cache \\
        --address-file serve.addr
    python -m repro submit --address HOST:PORT synth --app loopback:4

``compile`` writes one ``.v`` file per process plus ``report.txt`` (area,
Fmax, pipeline timing). ``report`` prints the original-vs-assert overhead
table (the paper's Table 1/2 format). ``simulate`` runs the single-process
application through software simulation and cycle-accurate hardware
execution and diffs them. ``campaign`` sweeps seeded fault-injection
scenarios across one of the paper's applications and prints the
detection-coverage matrix (assertion vs. watchdog vs. silent). ``sweep``
runs a declarative design-space cross product (app x assertion level x
optimization variant) through the parallel lab executor with a
content-addressed synthesis cache and a resumable JSONL result store.
``synth`` runs the collect-mode frontend (every error in one pass,
Clang-style caret excerpts, stable ``RPR-*`` codes) and then full
synthesis, optionally writing a replayable failure bundle. ``replay``
re-runs a failure bundle (from ``synth``, a sweep, a campaign or a
difftest) and exits 0 iff the recorded diagnostics reproduce
byte-for-byte. ``sweep``, ``campaign`` and ``difftest`` all accept
``--shard K/N`` (run one deterministic slice of the space), ``--retries``
(exponential-backoff retry of transient failures) and ``--hedge``
(speculative re-execution of stragglers); ``merge`` folds per-shard run
directories back into one canonical run, byte-identical to merging an
unsharded run.

The C file must contain exactly one process whose first stream parameter
is the input and second the output (the common case); richer task graphs
use the Python API.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.synth import SynthesisOptions, synthesize
from repro.platform.report import execution_summary, overhead_report
from repro.platform.resources import estimate_image
from repro.platform.timing import estimate_fmax
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application


def _build_app(path: str, feed: list[int]) -> Application:
    with open(path) as fh:
        source = fh.read()
    app = Application(os.path.splitext(os.path.basename(path))[0])
    pd = app.add_c_process(source, filename=os.path.basename(path))
    params = pd.stream_params
    if len(params) < 1:
        raise SystemExit(f"{path}: the process has no stream parameters")
    if len(params) >= 2:
        app.feed("cli_in", f"{pd.name}.{params[0]}", data=feed)
        app.sink("cli_out", f"{pd.name}.{params[1]}")
        for extra in params[2:]:
            app.sink(f"cli_{extra}", f"{pd.name}.{extra}")
    else:
        app.sink("cli_out", f"{pd.name}.{params[0]}")
    return app


def _options(args) -> SynthesisOptions:
    return SynthesisOptions(
        parallelize=not args.no_parallelize,
        replicate=not args.no_replicate,
        share=not args.no_share,
        multichecker=args.multichecker,
        sim_backend=getattr(args, "sim_backend", "compiled"),
    )


def _options_dict(args) -> dict:
    return {
        "parallelize": not args.no_parallelize,
        "replicate": not args.no_replicate,
        "share": not args.no_share,
        "multichecker": args.multichecker,
        "sim_backend": getattr(args, "sim_backend", "compiled"),
    }


def cmd_synth(args) -> int:
    import json as _json

    from repro.diagnostics import Diagnostic
    from repro.diagnostics.bundle import write_bundle
    from repro.diagnostics.codes import render_code_table
    from repro.diagnostics.engine import synth_diagnostics
    from repro.diagnostics.render import render_diagnostics

    if args.help_codes:
        print(render_code_table())
        return 0
    if not args.source:
        raise SystemExit("synth: a source file is required "
                         "(or use --help-codes)")
    with open(args.source) as fh:
        source = fh.read()
    filename = os.path.basename(args.source)
    feed = [int(v, 0) for v in args.feed.split(",")] if args.feed else []
    options = _options_dict(args)

    _check, diags = synth_diagnostics(
        source, filename=filename, level=args.assertions,
        options=options, feed=feed or None,
    )
    failed = any(d.get("severity") == "error" for d in diags)

    if args.json:
        print(_json.dumps({"diagnostics": diags}, indent=2, sort_keys=True))
    else:
        if diags:
            print(render_diagnostics(
                [Diagnostic.from_dict(d) for d in diags],
                sources={filename: source}, color=args.color,
            ))
        if not failed:
            print(f"{filename}: synthesized cleanly "
                  f"(assertions={args.assertions})")

    if failed and args.bundle:
        path = write_bundle(
            args.bundle, "synth", diags,
            context={
                "filename": filename,
                "level": args.assertions,
                "options": options,
                "feed": feed or None,
            },
            source=source,
        )
        print(f"failure bundle: {path}", file=sys.stderr)
    return 1 if failed else 0


def cmd_replay(args) -> int:
    import json as _json

    from repro.diagnostics import Diagnostic
    from repro.diagnostics.bundle import read_bundle, replay_bundle
    from repro.diagnostics.render import render_diagnostics
    from repro.errors import ReproError

    try:
        bundle = read_bundle(args.bundle)
        result = replay_bundle(bundle)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None

    if args.json:
        print(_json.dumps(
            {"kind": bundle.kind, "reproduced": result.ok,
             "expected": bundle.diagnostics, "actual": result.diagnostics},
            indent=2, sort_keys=True))
        return 0 if result.ok else 1

    # the bundled source is keyed under every file its spans mention, so
    # caret excerpts render no matter what the original filename was
    sources = {}
    if bundle.source is not None:
        for d in result.diagnostics:
            span = d.get("span") or {}
            if span.get("file"):
                sources[span["file"]] = bundle.source
    if result.diagnostics:
        print(render_diagnostics(
            [Diagnostic.from_dict(d) for d in result.diagnostics],
            sources=sources, color=args.color,
        ))
    else:
        print(f"{args.bundle}: replay produced no diagnostics")
    if result.ok:
        print(f"{args.bundle}: {bundle.kind} failure reproduced "
              "bit-identically")
        return 0
    print(f"{args.bundle}: replay DIVERGED from the recorded diagnostics "
          "(the failure did not reproduce; toolchain or environment "
          "changed since the bundle was written)", file=sys.stderr)
    return 1


def cmd_compile(args) -> int:
    app = _build_app(args.source, [])
    image = synthesize(app, assertions=args.assertions,
                       options=_options(args))
    os.makedirs(args.outdir, exist_ok=True)
    for name, cp in image.compiled.items():
        path = os.path.join(args.outdir, f"{name}.v")
        with open(path, "w") as fh:
            fh.write(cp.verilog())
        print(f"wrote {path}")
    res = estimate_image(image)
    fmax = estimate_fmax(image, resources=res)
    lines = [
        f"assertion level: {args.assertions}",
        f"processes: {', '.join(sorted(image.compiled))}",
        f"comb ALUTs: {res.total.comb_aluts}",
        f"registers:  {res.total.registers}",
        f"BRAM bits:  {res.total.bram_bits}",
        f"interconnect: {res.total.interconnect}",
        f"Fmax: {fmax.fmax_mhz:.1f} MHz "
        f"(critical path {fmax.critical_path_ns:.2f} ns)",
    ]
    for name, cp in sorted(image.compiled.items()):
        for header, (latency, rate) in cp.pipeline_report().items():
            lines.append(
                f"pipeline {name}/{header}: latency {latency}, rate {rate}"
            )
    report_path = os.path.join(args.outdir, "report.txt")
    with open(report_path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {report_path}")
    print("\n".join(lines))
    return 0


def cmd_report(args) -> int:
    app = _build_app(args.source, [])
    original = synthesize(app, assertions="none")
    asserted = synthesize(app, assertions=args.assertions,
                          options=_options(args))
    report = overhead_report(original, asserted)
    print(report.render(
        f"ASSERTION OVERHEAD ({os.path.basename(args.source)}, "
        f"{args.assertions})"
    ))
    return 0


def cmd_simulate(args) -> int:
    feed = [int(v, 0) for v in args.feed.split(",")] if args.feed else []
    app = _build_app(args.source, feed)
    sim = software_sim(app)
    print(f"software simulation: completed={sim.completed} "
          f"aborted={sim.aborted}")
    for name, values in sorted(sim.outputs.items()):
        print(f"  {name}: {values}")
    for line in sim.stderr:
        print(f"  stderr: {line}")

    image = synthesize(app, assertions=args.assertions,
                       options=_options(args))
    hw = execute(image, max_cycles=args.max_cycles)
    print(f"hardware execution:  completed={hw.completed} "
          f"reason={hw.reason} cycles={hw.cycles}")
    for name, values in sorted(hw.outputs.items()):
        print(f"  {name}: {values}")
    for line in hw.stderr:
        print(f"  stderr: {line}")
    for line in execution_summary(hw):
        print(f"  {line}")

    data_match = all(
        hw.outputs.get(k) == v for k, v in sim.outputs.items() if v
    )
    print(f"outputs match: {data_match}")
    return 0 if (hw.completed or hw.aborted) else 1


def _shard_arg(args):
    """--shard K/N -> ShardSpec (None when the flag is absent)."""
    if not getattr(args, "shard", None):
        return None
    from repro.errors import ReproError
    from repro.lab.shard import ShardSpec

    try:
        return ShardSpec.parse(args.shard)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None


def _retry_arg(args):
    """--retries N -> RetryPolicy with N+1 total attempts (0 -> None)."""
    retries = getattr(args, "retries", 0)
    if not retries:
        return None
    from repro.lab.retry import RetryPolicy

    return RetryPolicy(max_attempts=retries + 1)


def cmd_campaign(args) -> int:
    from repro.faults.campaign import builtin_targets, run_campaign

    if args.app not in builtin_targets():
        raise SystemExit(
            f"unknown --app {args.app!r}; have {sorted(builtin_targets())}"
        )
    levels = tuple(args.levels.split(","))
    for lv in levels:
        if lv not in ("none", "unoptimized", "optimized"):
            raise SystemExit(f"bad assertion level {lv!r} in --levels")
    result = run_campaign(
        args.app,
        levels=levels,
        seed=args.seed,
        count=args.count,
        nabort=args.nabort,
        options=SynthesisOptions(sim_backend=args.sim_backend),
        jobs=args.jobs,
        cache_root=args.cache,
        store_root=args.store,
        shard=_shard_arg(args),
        resume=not args.no_resume,
        retry=_retry_arg(args),
        timeout=args.timeout,
        hedge=args.hedge,
        batch_lanes=args.batch_lanes,
    )
    if args.json:
        import json as _json

        from repro.serve.protocol import campaign_summary

        print(_json.dumps(campaign_summary(result), indent=2,
                          sort_keys=True))
        return 0 if not result.harness_errors else 1
    print(result.render())
    return 0


def _parse_app_token(token: str):
    """Parse one --apps token: ``loopback:4``, ``edge:16x8``,
    ``tripledes``, ``tripledes:SomeText`` or ``pipeline:N`` with optional
    per-stage edits ``pipeline:N@STAGE=DELTA[@STAGE=DELTA...]`` (the
    incremental-synthesis workload: an edit changes exactly one stage's
    IR, so only that stage resynthesizes)."""
    from repro.lab.sweep import AppSpec, SweepError

    kind, _, arg = token.partition(":")
    if kind == "loopback":
        return AppSpec.make("loopback", n=int(arg) if arg else 4)
    if kind == "pipeline":
        stages_text, *edit_texts = arg.split("@") if arg else ["3"]
        edits = []
        for et in edit_texts:
            stage, eq, delta = et.partition("=")
            if not eq:
                raise SystemExit(
                    f"--apps pipeline edit wants STAGE=DELTA, got {token!r}")
            edits.append((int(stage), int(delta)))
        params = {"stages": int(stages_text or 3)}
        if edits:
            params["edits"] = tuple(sorted(edits))
        return AppSpec.make("pipeline", **params)
    if kind == "edge":
        if arg:
            w, _, h = arg.partition("x")
            if not h:
                raise SystemExit(
                    f"--apps edge wants WIDTHxHEIGHT, got {token!r}"
                )
            return AppSpec.make("edge", width=int(w), height=int(h))
        return AppSpec.make("edge", width=16, height=8)
    if kind == "tripledes":
        return AppSpec.make("tripledes",
                            **({"text": arg} if arg else {}))
    raise SweepError(
        f"unknown app {kind!r}; have loopback[:N], edge[:WxH], "
        f"tripledes[:TEXT], pipeline[:N[@STAGE=DELTA...]]", code="RPR-W005")


def cmd_sweep(args) -> int:
    from repro.lab.sweep import SweepError, SweepSpec, run_sweep

    try:
        apps = [_parse_app_token(tok)
                for tok in args.apps.split(",") if tok]
        spec = SweepSpec.cross(
            args.name,
            apps,
            levels=tuple(args.levels.split(",")),
            variants=tuple(args.variants.split(",")),
        )
    except SweepError as exc:
        raise SystemExit(str(exc)) from None
    try:
        result = run_sweep(
            spec,
            jobs=args.jobs,
            store_root=args.store,
            cache_root=args.cache,
            resume=not args.no_resume,
            timeout=args.timeout,
            shard=_shard_arg(args),
            retry=_retry_arg(args),
            hedge=args.hedge,
            validate_lanes=args.validate_lanes,
        )
    except KeyboardInterrupt:
        print("sweep interrupted; rerun the same command to resume",
              file=sys.stderr)
        return 130
    if args.json:
        import json as _json

        from repro.serve.protocol import sweep_summary

        print(_json.dumps(sweep_summary(result), indent=2, sort_keys=True))
        return 0 if result.ok else 1
    print(result.render())
    print(f"results: {result.run.results_path}")
    print(f"manifest: {result.run.manifest_path}")
    return 0 if result.ok else 1


def cmd_difftest(args) -> int:
    from repro.difftest import (
        DifftestError,
        DifftestSpec,
        GenConfig,
        replay_seed_file,
        run_difftest_campaign,
    )

    if args.replay:
        try:
            report = replay_seed_file(args.replay,
                                      max_cycles=args.max_cycles,
                                      reduced=not args.original)
        except DifftestError as exc:
            raise SystemExit(str(exc)) from None
        if report.ok:
            print(f"{args.replay}: models agree "
                  f"({report.cm_cycles} cycles)")
            return 0
        print(f"{args.replay}: {report.divergence.describe()}")
        return 1

    lo, _, hi = args.seeds.partition(":")
    try:
        seeds = (int(lo), int(hi))
    except ValueError:
        raise SystemExit(f"--seeds wants LO:HI, got {args.seeds!r}") from None
    if seeds[0] >= seeds[1]:
        raise SystemExit(f"--seeds range {args.seeds!r} is empty")
    spec = DifftestSpec(
        name=args.name,
        seeds=seeds,
        gen=GenConfig(max_stmts=args.stmts),
        max_cycles=args.max_cycles,
        reduce=not args.no_reduce,
        sim_backend=args.sim_backend,
        batch_lanes=args.batch_lanes,
    )
    try:
        result = run_difftest_campaign(
            spec,
            jobs=args.jobs,
            store_root=args.store,
            cache_root=args.cache,
            resume=not args.no_resume,
            timeout=args.timeout,
            shard=_shard_arg(args),
            retry=_retry_arg(args),
            hedge=args.hedge,
        )
    except KeyboardInterrupt:
        print("difftest interrupted; rerun the same command to resume",
              file=sys.stderr)
        return 130
    print(result.render())
    print(f"results: {result.run.results_path}")
    print(f"manifest: {result.run.manifest_path}")
    for path in result.seed_files:
        print(f"reproducer: {path}")
    return 0 if result.ok else 1


def cmd_merge(args) -> int:
    from repro.errors import ReproError
    from repro.lab.shard import merge_runs

    try:
        result = merge_runs(args.store, args.run, out_dir=args.out,
                            progress=sys.stderr)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    counts = ", ".join(f"{k}={v}" for k, v in sorted(result.counters.items()))
    print(f"merged run: {result.base_id} ({result.kind})")
    print(f"sources: {', '.join(result.sources)}")
    print(f"points: {len(result.records)} ({counts})")
    print(f"results: {result.run.results_path}")
    print(f"manifest: {result.run.manifest_path}")
    if result.matrix_path is not None:
        print(f"matrix: {result.matrix_path}")
        print()
        print(result.matrix_path.read_text(), end="")
    if result.corrupt:
        print(f"WARNING: {result.corrupt} torn/corrupt journal line(s) "
              "skipped while merging", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    import json

    from repro.simc.bench import compare_bench, render_bench, run_bench

    if args.suite == "synth":
        from repro.lab.bench import render_synth_bench, run_synth_bench

        doc = run_synth_bench(quick=args.quick)
        print(render_synth_bench(doc))
    else:
        doc = run_bench(quick=args.quick)
        print(render_bench(doc))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        notes: list[str] = []
        problems = compare_bench(doc, baseline, threshold=args.threshold,
                                 notes=notes)
        for msg in notes:
            print(f"note: {msg}", file=sys.stderr)
        if problems:
            for msg in problems:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline}, "
              f"threshold {args.threshold:.0%})")
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.serve.server import ReproServer, ServeConfig

    server = ReproServer(ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.jobs,
        queue_depth=args.queue_depth,
        per_client=args.per_client,
        inner_jobs=args.inner_jobs,
        cache_root=args.cache,
        store_root=args.store,
        job_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        name=args.name or "",
        peers=tuple(tok.strip() for tok in (args.peers or "").split(",")
                    if tok.strip()),
    ))
    host, port = server.address
    address = f"{host}:{port}"
    peers_note = (f", peers={len(server.config.peers)}"
                  if server.config.peers else "")
    print(f"repro serve: listening on {address} as {server.name!r} "
          f"(workers={args.jobs}, queue={args.queue_depth}, "
          f"per-client={args.per_client}{peers_note})", flush=True)
    if args.address_file:
        with open(args.address_file, "w") as fh:
            fh.write(address + "\n")

    def _on_signal(signum, frame):  # noqa: ARG001 - signal handler shape
        print(f"repro serve: received signal {signum}, draining",
              file=sys.stderr, flush=True)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    report = server.serve_forever()
    jobs = report["jobs"]
    print(f"repro serve: drained={report['drained']} "
          f"(submitted={jobs['submitted']} completed={jobs['completed']} "
          f"coalesced={jobs['coalesced']} rejected={jobs['rejected']}, "
          f"uptime {report['uptime_s']:.1f}s)", flush=True)
    return 0 if report["drained"] else 1


def _submit_app_params(args) -> dict:
    """--app token -> the serve protocol's app object."""
    spec = _parse_app_token(args.app)
    return {"kind": spec.kind, "params": dict(spec.params)}


#: `repro submit` exit codes, one per terminal outcome, so scripts and CI
#: can branch on *why* a job did not succeed without parsing output
SUBMIT_EXIT = {"ok": 0, "failed": 1, "timeout": 2, "rejected": 3,
               "error": 4}


def cmd_submit(args) -> int:
    import json as _json

    from repro.errors import ServeError
    from repro.serve.client import ServeClient

    try:
        client = ServeClient(args.address, client_id=args.client)
    except ServeError as exc:
        raise SystemExit(str(exc)) from None

    verb = args.verb
    try:
        if verb in ("stats", "ping", "shutdown"):
            event = getattr(client, verb)()
            print(_json.dumps(event, indent=2, sort_keys=True))
            return 0
        if verb == "synth":
            params = {"app": _submit_app_params(args),
                      "level": args.level, "variant": args.variant}
        elif verb == "sweep":
            params = {
                "name": args.name,
                "apps": [
                    {"kind": s.kind, "params": dict(s.params)}
                    for s in (_parse_app_token(tok)
                              for tok in args.apps.split(",") if tok)
                ],
                "levels": args.levels.split(","),
                "variants": args.variants.split(","),
            }
        elif verb == "campaign":
            params = {"app": args.app, "seed": args.seed,
                      "count": args.count,
                      "levels": args.levels.split(","),
                      "nabort": args.nabort}
        else:  # difftest
            lo, _, hi = args.seeds.partition(":")
            params = {"name": args.name, "seeds": [int(lo), int(hi)],
                      "max_stmts": args.stmts,
                      "max_cycles": args.max_cycles}
        reply = client.submit(verb, params, timeout=args.timeout)
    except ServeError as exc:
        raise SystemExit(str(exc)) from None

    if args.json:
        print(_json.dumps(reply.terminal, indent=2, sort_keys=True))
    else:
        term = reply.terminal
        if reply.rejected or term.get("event") == "error":
            print(f"submit {verb}: {term.get('event')} "
                  f"[{term.get('code')}] {term.get('message')}",
                  file=sys.stderr)
        else:
            note = "coalesced" if reply.coalesced else "led"
            print(f"submit {verb}: {reply.status} ({note}, "
                  f"{term.get('elapsed_s', 0.0)}s, "
                  f"fingerprint {reply.fingerprint})")
            if reply.ok and verb == "synth":
                rec = reply.record
                print(f"  {rec['point_id']}: ALUTs={rec['comb_aluts']} "
                      f"regs={rec['registers']} "
                      f"fmax={rec['fmax_mhz']:.1f}MHz "
                      f"cache_hit={rec['cache_hit']}")
            elif reply.ok:
                print(f"  ok={reply.record.get('ok')}")
            for diag in reply.diagnostics:
                print(f"  [{diag.get('code')}] {diag.get('message')}",
                      file=sys.stderr)
    # reply.status is the result's status (ok/failed/timeout) or, for
    # non-result terminals, the event name (rejected/error)
    return SUBMIT_EXIT.get(reply.status, SUBMIT_EXIT["error"])


def cmd_fabric(args) -> int:
    """Shard a job across N serve daemons with failover re-routing."""
    import json as _json

    from repro.errors import ReproError
    from repro.serve.fabric import FabricRouter
    from repro.serve.peers import PeerRegistry

    peers = [tok.strip() for tok in (args.peers or "").split(",")
             if tok.strip()]
    if not peers:
        raise SystemExit("repro fabric: need --peers HOST:PORT[,HOST:PORT..]")
    try:
        registry = PeerRegistry(peers)
        router = FabricRouter(
            registry, store_root=args.store,
            max_reroutes=args.reroutes, timeout=args.timeout,
            progress=None if args.json else sys.stderr)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None

    if args.verb == "status":
        snap = router.status()
        print(_json.dumps(snap, indent=2, sort_keys=True))
        return 0 if snap["routable"] else 1

    if args.verb == "sweep":
        params = {
            "name": args.name,
            "apps": [{"kind": s.kind, "params": dict(s.params)}
                     for s in (_parse_app_token(tok)
                               for tok in args.apps.split(",") if tok)],
            "levels": args.levels.split(","),
            "variants": args.variants.split(","),
        }
    elif args.verb == "campaign":
        params = {"app": args.app, "seed": args.seed, "count": args.count,
                  "levels": args.levels.split(","), "nabort": args.nabort}
    else:  # difftest
        lo, _, hi = args.seeds.partition(":")
        params = {"name": args.name, "seeds": [int(lo), int(hi)],
                  "max_stmts": args.stmts, "max_cycles": args.max_cycles}

    try:
        result = router.run(args.verb, params, shards=args.shards)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None

    if args.json:
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        for shard in result.shards:
            hops = " -> ".join(
                f"{h['peer']}[{h['outcome']}]" for h in shard.attempts)
            print(f"shard {shard.shard}: {shard.status} via {hops}")
        if result.merge is not None:
            print(f"fabric {args.verb}: ok "
                  f"({len(result.shards)} shards, "
                  f"{result.rerouted_shards} re-routed, "
                  f"merged {len(result.merge.records)} records -> "
                  f"{result.merge.run.dir}, {result.elapsed_s:.1f}s)")
        else:
            print(f"fabric {args.verb}: FAILED "
                  f"({sum(1 for s in result.shards if not s.ok)} of "
                  f"{len(result.shards)} shards did not land)",
                  file=sys.stderr)
    return 0 if result.ok else 1


def _fabric_flags(p) -> None:
    """Campaign-fabric flags shared by sweep/campaign/difftest."""
    p.add_argument("--shard", default=None, metavar="K/N",
                   help="run only the points hashing into slice K of N "
                        "(own run directory; fold back with 'repro merge')")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transiently-failing points up to N times "
                        "with exponential backoff")
    p.add_argument("--hedge", action="store_true",
                   help="speculatively re-submit straggling tail points "
                        "(first result wins)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HLS of in-circuit ANSI-C assertions "
                    "(Curreri/Stitt/George, IPDPS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("source", help="dialect C file with one process")
        p.add_argument("--assertions", default="optimized",
                       choices=("none", "unoptimized", "optimized"))
        p.add_argument("--no-parallelize", action="store_true")
        p.add_argument("--no-replicate", action="store_true")
        p.add_argument("--no-share", action="store_true")
        p.add_argument("--multichecker", action="store_true",
                       help="round-robin shared checker (Sec. 3.3 extension)")
        p.add_argument("--sim-backend", default="compiled",
                       choices=("interp", "compiled"),
                       help="simulation backend: specialize schedules to "
                            "Python bytecode (compiled, default) or walk "
                            "them (interp)")

    p = sub.add_parser("compile", help="emit Verilog + report")
    common(p)
    p.add_argument("-o", "--outdir", default="build")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "synth",
        help="collect-mode diagnostics: report every error in one pass",
    )
    p.add_argument("source", nargs="?", default=None,
                   help="dialect C file with one process")
    p.add_argument("--assertions", default="optimized",
                   choices=("none", "unoptimized", "optimized"))
    p.add_argument("--no-parallelize", action="store_true")
    p.add_argument("--no-replicate", action="store_true")
    p.add_argument("--no-share", action="store_true")
    p.add_argument("--multichecker", action="store_true")
    p.add_argument("--sim-backend", default="compiled",
                   choices=("interp", "compiled"))
    p.add_argument("--feed", default="", help="comma-separated input words")
    p.add_argument("--color", action="store_true",
                   help="ANSI-colored diagnostics")
    p.add_argument("--json", action="store_true",
                   help="machine-readable diagnostics on stdout")
    p.add_argument("--bundle", default=None, metavar="DIR",
                   help="on failure, write a replayable bundle here")
    p.add_argument("--help-codes", action="store_true",
                   help="print the RPR-* error-code category table")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser(
        "replay",
        help="re-run a failure bundle; exit 0 iff it reproduces exactly",
    )
    p.add_argument("bundle", help="bundle directory (manifest.json inside)")
    p.add_argument("--color", action="store_true",
                   help="ANSI-colored diagnostics")
    p.add_argument("--json", action="store_true",
                   help="machine-readable comparison on stdout")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("report", help="print the overhead table")
    common(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("simulate", help="software sim + hardware execution")
    common(p)
    p.add_argument("--feed", default="", help="comma-separated input words")
    p.add_argument("--max-cycles", type=int, default=2_000_000)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "campaign",
        help="seeded fault-injection sweep with coverage matrix",
    )
    p.add_argument("--app", default="loopback",
                   help="campaign target: loopback, edge or tripledes")
    p.add_argument("--levels", default="none,optimized",
                   help="comma-separated assertion levels to sweep")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--count", type=int, default=8,
                   help="number of generated fault scenarios")
    p.add_argument("--nabort", action="store_true",
                   help="report-don't-halt mode with watchdog quarantine")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the scenario grid")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="synthesis cache directory (one image per level)")
    p.add_argument("--sim-backend", default="compiled",
                   choices=("interp", "compiled"),
                   help="simulation backend for scenario execution")
    p.add_argument("--batch-lanes", type=int, default=1, metavar="N",
                   help="run up to N scenarios of one image as lanes of "
                        "the batched simulator (in-process; ignores "
                        "--jobs); 1 keeps the scalar path")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="journal cells into this resumable result store")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell timeout")
    p.add_argument("--no-resume", action="store_true",
                   help="with --store: discard previous results")
    p.add_argument("--json", action="store_true",
                   help="print one JSON summary object (coverage matrix, "
                        "detection rates, outcome records) instead of the "
                        "table — the serve protocol's campaign schema")
    _fabric_flags(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "sweep",
        help="parallel, cached, resumable design-space sweep",
    )
    p.add_argument("--name", default="sweep", help="sweep name (run id prefix)")
    p.add_argument("--apps", default="loopback:4",
                   help="comma-separated: loopback[:N], edge[:WxH], "
                        "tripledes[:TEXT]")
    p.add_argument("--levels", default="none,optimized",
                   help="comma-separated assertion levels")
    p.add_argument("--variants", default="default",
                   help="comma-separated SynthesisOptions variants "
                        "(default, noshare, noreplicate, noparallelize, "
                        "multichecker)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes")
    p.add_argument("--store", default="lab-runs", metavar="DIR",
                   help="resumable JSONL result store directory")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="content-addressed synthesis cache directory")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-point timeout")
    p.add_argument("--no-resume", action="store_true",
                   help="discard previous results for this sweep")
    p.add_argument("--validate-lanes", type=int, default=0, metavar="N",
                   help="execute every point with N batched replication "
                        "lanes and check them bit-for-bit against a "
                        "scalar run (journaled as lane_check)")
    p.add_argument("--json", action="store_true",
                   help="print one JSON summary object (manifest + stats + "
                        "records) instead of the table — the serve "
                        "protocol's sweep schema")
    _fabric_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "difftest",
        help="three-way differential fuzzing: interpreter vs cycle "
             "model vs RTL",
    )
    p.add_argument("--name", default="difftest",
                   help="campaign name (run id prefix)")
    p.add_argument("--seeds", default="0:50", metavar="LO:HI",
                   help="half-open seed range to fuzz")
    p.add_argument("--stmts", type=int, default=8,
                   help="max statements per generated program")
    p.add_argument("--max-cycles", type=int, default=200_000,
                   help="lockstep cycle budget per program")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes")
    p.add_argument("--store", default="lab-runs", metavar="DIR",
                   help="resumable JSONL result store directory")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="compilation cache directory")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-seed timeout")
    p.add_argument("--no-resume", action="store_true",
                   help="discard previous results for this campaign")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip reduction of diverging programs")
    p.add_argument("--replay", default=None, metavar="SEEDFILE",
                   help="re-run one saved seed file instead of a campaign")
    p.add_argument("--original", action="store_true",
                   help="with --replay: run the unreduced program")
    p.add_argument("--sim-backend", default="interp",
                   choices=("interp", "compiled"),
                   help="'compiled' adds the repro.simc specialized "
                        "simulators as strict lockstep legs")
    p.add_argument("--batch-lanes", type=int, default=0, metavar="N",
                   help="append a scalar-vs-batched phase running N feed "
                        "variants per seed program through the batched "
                        "executor (0 disables)")
    _fabric_flags(p)
    p.set_defaults(func=cmd_difftest)

    p = sub.add_parser(
        "serve",
        help="long-running synthesis daemon with request coalescing "
             "and admission control",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (local use only)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = kernel-assigned, printed on start)")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker threads = max concurrently running jobs")
    p.add_argument("--inner-jobs", type=int, default=1,
                   help="worker processes each sweep/campaign/difftest "
                        "job may use internally")
    p.add_argument("--queue-depth", type=int, default=16,
                   help="jobs allowed to wait beyond the running set "
                        "before capacity rejections start")
    p.add_argument("--per-client", type=int, default=16,
                   help="max in-flight jobs per client id")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="content-addressed synthesis cache shared by "
                        "every job (strongly recommended)")
    p.add_argument("--store", default="serve-runs", metavar="DIR",
                   help="result store journaled runs land under")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="default per-job timeout (a request's own wins)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="how long shutdown waits for in-flight jobs")
    p.add_argument("--address-file", default=None, metavar="FILE",
                   help="write the bound host:port here once listening")
    p.add_argument("--name", default=None,
                   help="stable daemon name keying the crash-recoverable "
                        "job journal (default host-port)")
    p.add_argument("--peers", default=None, metavar="HOST:PORT,...",
                   help="other fabric daemons: enables peer health "
                        "checking and cross-node coalescing hints")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one job to a running 'repro serve' daemon",
    )
    p.add_argument("--address", default=None, metavar="HOST:PORT",
                   help="daemon address (default: $REPRO_SERVE)")
    p.add_argument("--client", default=None,
                   help="client id for per-client admission (default "
                        "user@pid)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="give up waiting for the result after this long")
    p.add_argument("--json", action="store_true",
                   help="print the raw terminal event")
    subverb = p.add_subparsers(dest="verb", required=True)

    sp = subverb.add_parser("synth", help="one design point")
    sp.add_argument("--app", default="loopback:4",
                    help="loopback[:N], edge[:WxH], tripledes[:TEXT]")
    sp.add_argument("--level", default="optimized",
                    choices=("none", "unoptimized", "optimized"))
    sp.add_argument("--variant", default="default",
                    help="SynthesisOptions variant (default, noshare, "
                         "noreplicate, noparallelize, multichecker)")

    sp = subverb.add_parser("sweep", help="a design-space sweep")
    sp.add_argument("--name", default="serve-sweep")
    sp.add_argument("--apps", default="loopback:4")
    sp.add_argument("--levels", default="none,optimized")
    sp.add_argument("--variants", default="default")

    sp = subverb.add_parser("campaign", help="a fault-injection campaign")
    sp.add_argument("--app", default="loopback")
    sp.add_argument("--levels", default="none,optimized")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--count", type=int, default=4)
    sp.add_argument("--nabort", action="store_true")

    sp = subverb.add_parser("difftest", help="a differential-fuzz campaign")
    sp.add_argument("--name", default="serve-difftest")
    sp.add_argument("--seeds", default="0:10", metavar="LO:HI")
    sp.add_argument("--stmts", type=int, default=8)
    sp.add_argument("--max-cycles", type=int, default=200_000)

    subverb.add_parser("stats", help="print the daemon's /stats payload")
    subverb.add_parser("ping", help="liveness check")
    subverb.add_parser("shutdown", help="ask the daemon to drain and exit")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "fabric",
        help="shard a job across multiple serve daemons with peer "
             "health, failover re-routing and byte-identical merging",
    )
    p.add_argument("--peers", default=None, metavar="HOST:PORT,...",
                   help="the fabric's daemon addresses (required); all "
                        "must share one --store filesystem")
    p.add_argument("--store", default="serve-runs", metavar="DIR",
                   help="the shared result store the daemons journal "
                        "into (merging happens here)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-shard job timeout")
    p.add_argument("--reroutes", type=int, default=4, metavar="N",
                   help="max failover re-routes per shard")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="shard count (default: one per routable peer)")
    p.add_argument("--json", action="store_true",
                   help="print one JSON fabric summary object")
    fabverb = p.add_subparsers(dest="verb", required=True)

    fp = fabverb.add_parser("sweep", help="sharded design-space sweep")
    fp.add_argument("--name", default="fabric-sweep")
    fp.add_argument("--apps", default="loopback:4")
    fp.add_argument("--levels", default="none,optimized")
    fp.add_argument("--variants", default="default")

    fp = fabverb.add_parser("campaign",
                            help="sharded fault-injection campaign")
    fp.add_argument("--app", default="loopback")
    fp.add_argument("--levels", default="none,optimized")
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--count", type=int, default=4)
    fp.add_argument("--nabort", action="store_true")

    fp = fabverb.add_parser("difftest",
                            help="sharded differential-fuzz campaign")
    fp.add_argument("--name", default="fabric-difftest")
    fp.add_argument("--seeds", default="0:10", metavar="LO:HI")
    fp.add_argument("--stmts", type=int, default=8)
    fp.add_argument("--max-cycles", type=int, default=200_000)

    fabverb.add_parser("status", help="ping every peer and print the "
                                      "fabric's health view")
    p.set_defaults(func=cmd_fabric)

    p = sub.add_parser(
        "merge",
        help="fold per-shard run directories into one canonical run",
    )
    p.add_argument("run", help="base run id, shard run id, or unique prefix")
    p.add_argument("--store", default="lab-runs", metavar="DIR",
                   help="result store holding the shard runs")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write the merged run here instead of "
                        "<store>/<base>.merged")
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser(
        "bench",
        help="perf benches (simulation backends, incremental synthesis) "
             "with baseline gate",
    )
    p.add_argument("--suite", choices=("sim", "synth"), default="sim",
                   help="which bench suite to run: interp-vs-compiled "
                        "simulation (sim, default) or cold-vs-warm/edit "
                        "incremental synthesis (synth)")
    p.add_argument("--quick", action="store_true",
                   help="single timing repeat per leg (same workloads)")
    p.add_argument("--out", default=None, metavar="JSON",
                   help="write the bench document to this file")
    p.add_argument("--baseline", default=None, metavar="JSON",
                   help="fail if any speedup regresses vs this baseline")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="relative speedup loss that counts as a "
                        "regression (default 0.30)")
    p.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
