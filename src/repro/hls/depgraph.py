"""Intra-block dependency graph construction for scheduling.

Edges carry a minimum latency:

* data (RAW through temps): producer latency (0 = chainable same step)
* anti/output (WAR/WAW on temps): 0 — same step is fine because registers
  commit at the clock edge; a later step is implied only transitively
* memory, per array: store→load and store→store must be strictly ordered
  across steps (delay 1); load→load unordered (subject to ports)
* streams, per stream: totally ordered, strictly increasing steps (delay 1)
* taps, per channel: ordered among themselves (delay 0; a tap is wiring)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instr import BasicBlock, Instr
from repro.ir.ops import OpKind


def _addr_form(
    def_of: dict[str, "Instr"], value
) -> tuple[str | None, int, int | None]:
    """Reduce an address expression to (base temp, offset, mask).

    Recognizes chains of ``base + const`` and ``expr & const-mask`` (the
    canonical circular-buffer indexing idiom). ``base`` is None for a fully
    constant address. Unrecognized shapes return a unique opaque base so
    the caller stays conservative.
    """
    from repro.ir.values import Const, Temp

    offset = 0
    mask: int | None = None
    for _ in range(32):
        if isinstance(value, Const):
            return (None, offset + value.value, mask)
        if not isinstance(value, Temp):
            break
        instr = def_of.get(value.name)
        if instr is None:
            return (value.name, offset, mask)
        if instr.op == OpKind.MOV:
            value = instr.args[0]
            continue
        if instr.op == OpKind.ADD:
            a, b = instr.args
            if isinstance(b, Const):
                offset += b.value
                value = a
                continue
            if isinstance(a, Const):
                offset += a.value
                value = b
                continue
        if instr.op == OpKind.AND and mask is None:
            a, b = instr.args
            const = b if isinstance(b, Const) else (a if isinstance(a, Const) else None)
            other = a if const is b else b
            if const is not None and (const.value & (const.value + 1)) == 0:
                mask = const.value
                value = other
                continue
        break
    return (f"?{id(value)}", offset, mask)


def provably_distinct(block: BasicBlock, idx_a, idx_b, upto: int) -> bool:
    """True when two address expressions can never collide.

    Both must reduce to the same base and mask with offsets that differ
    modulo the mask period (or be distinct constants). Any doubt returns
    False (conservative).
    """
    def_of: dict[str, "Instr"] = {}
    for instr in block.instrs[:upto]:
        for d in instr.defs():
            def_of[d.name] = instr
    base_a, off_a, mask_a = _addr_form(def_of, idx_a)
    base_b, off_b, mask_b = _addr_form(def_of, idx_b)
    if base_a is not None and str(base_a).startswith("?"):
        return False
    if base_b is not None and str(base_b).startswith("?"):
        return False
    if mask_a != mask_b or base_a != base_b:
        return False
    if mask_a is None:
        return off_a != off_b if base_a is None else off_a != off_b
    period = mask_a + 1
    return (off_a - off_b) % period != 0


def stream_key(instr) -> str:
    """Resource key for a stream-like op (co_stream or tap channel)."""
    if "stream" in instr.attrs:
        return f"s:{instr.attrs['stream']}"
    return f"c:{instr.attrs['channel']}"


@dataclass
class DepGraph:
    """preds[i] = list of (j, min_delay) meaning instr i depends on j."""

    n: int
    preds: list[list[tuple[int, int]]] = field(default_factory=list)
    succs: list[list[tuple[int, int]]] = field(default_factory=list)

    def add_edge(self, src: int, dst: int, delay: int) -> None:
        if src == dst:
            return
        self.preds[dst].append((src, delay))
        self.succs[src].append((dst, delay))


def build_depgraph(block: BasicBlock) -> DepGraph:
    instrs = block.instrs
    g = DepGraph(n=len(instrs), preds=[[] for _ in instrs], succs=[[] for _ in instrs])

    last_def: dict[str, int] = {}
    uses_since_def: dict[str, list[int]] = {}
    last_store: dict[str, int] = {}
    loads_since_store: dict[str, list[int]] = {}
    last_stream_op: dict[str, int] = {}
    last_tap: dict[str, int] = {}

    for i, instr in enumerate(instrs):
        # RAW on temps
        for u in instr.uses():
            j = last_def.get(u.name)
            if j is not None:
                g.add_edge(j, i, instrs[j].info.latency)
            uses_since_def.setdefault(u.name, []).append(i)
        # WAR / WAW on temps (delay 0: commit at edge)
        for d in instr.defs():
            for j in uses_since_def.get(d.name, ()):
                g.add_edge(j, i, 0)
            j = last_def.get(d.name)
            if j is not None:
                g.add_edge(j, i, 0)
            last_def[d.name] = i
            uses_since_def[d.name] = []
        # memory ordering per array (address-disambiguated: circular-buffer
        # idioms like buf[i & 15] vs buf[(i + 8) & 15] provably differ)
        if instr.op in (OpKind.LOAD, OpKind.STORE):
            array = instr.attrs["array"]
            if instr.op == OpKind.LOAD:
                j = last_store.get(array)
                if j is not None and not provably_distinct(
                    block, block.instrs[j].args[0], instr.args[0], i
                ):
                    g.add_edge(j, i, 1)  # read-after-write: next step at best
                loads_since_store.setdefault(array, []).append(i)
            else:
                j = last_store.get(array)
                if j is not None and not provably_distinct(
                    block, block.instrs[j].args[0], instr.args[0], i
                ):
                    g.add_edge(j, i, 1)
                for j in loads_since_store.get(array, ()):
                    if not provably_distinct(
                        block, block.instrs[j].args[0], instr.args[0], i
                    ):
                        g.add_edge(j, i, 0)  # WAR: same step, ports permitting
                last_store[array] = i
                loads_since_store[array] = []
        # stream ordering per stream (tap_read is a stream-like pop)
        if instr.op in (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
                        OpKind.STREAM_CLOSE, OpKind.TAP_READ):
            stream = stream_key(instr)
            j = last_stream_op.get(stream)
            if j is not None:
                g.add_edge(j, i, 1)
            last_stream_op[stream] = i
        # tap ordering per channel
        if instr.op == OpKind.TAP:
            channel = instr.attrs["channel"]
            j = last_tap.get(channel)
            if j is not None:
                g.add_edge(j, i, 0)
            last_tap[channel] = i

    return g
