"""Cycle-accurate execution of scheduled processes ("hardware execution").

This is the authoritative timing model of the generated circuits: it
executes :class:`FunctionSchedule` objects state-by-state and pipelines
stage-by-stage, with the same stall behaviour the generated RTL has
(stream handshakes, block-RAM port reservations, pipeline initiation every
II cycles). Values are evaluated through :mod:`repro.ir.semantics`, so a
divergence from software simulation can only come from *timing* or from a
deliberately injected translation fault — the two bug classes the paper's
in-circuit assertions target.

Register semantics: within a clock cycle, instructions execute in schedule
order (combinational chaining); cross-iteration pipeline values commit at
the end of the cycle, so concurrent iterations observe start-of-cycle
state, as flip-flops do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.ir import semantics
from repro.ir.function import IRFunction
from repro.ir.instr import Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, Temp, Value
from repro.hls.schedule import FunctionSchedule
from repro.utils.bitops import truncate


class Channel:
    """A FIFO channel: co_stream between processes/CPU, or a tap channel.

    Tap channels carry tuples and are unbounded in the model: the paper's
    HDL instrumentation connects assertion data with dedicated wires/FIFOs
    sized so the checker (which pipelines at the application's rate) never
    back-pressures the application; the area model charges a fixed FIFO.

    ``faults`` holds runtime-fault hooks (:mod:`repro.faults.runtime`)
    attached by a :class:`~repro.faults.runtime.RuntimeFaultInjector`;
    ``clock`` is that injector (supplying the current cycle). Both the
    cycle model and the RTL simulator move words through these methods, so
    an attached fault is honored identically by either backend. A
    duplicated word may transiently exceed ``depth`` by one entry; the
    FIFO then back-pressures until it drains.
    """

    def __init__(self, name: str, width: int = 32, depth: int = 16,
                 unbounded: bool = False):
        self.name = name
        self.width = width
        self.depth = depth
        self.unbounded = unbounded
        self.queue: deque = deque()
        self.closed = False
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0
        self.faults: list = []
        self.clock = None

    def _now(self) -> int:
        return self.clock.cycle if self.clock is not None else 0

    def can_push(self) -> bool:
        if self.faults:
            now = self._now()
            if any(f.blocks_push(self, now) for f in self.faults):
                return False
        return self.unbounded or len(self.queue) < self.depth

    def push(self, value) -> None:
        if not self.can_push():
            raise SimulationError(f"push to full channel {self.name}", code="RPR-X201")
        self.pushes += 1
        values = [value]
        if self.faults:
            now = self._now()
            for fault in self.faults:
                values = [out for v in values for out in fault.on_push(v, self, now)]
        self.queue.extend(values)
        self.max_occupancy = max(self.max_occupancy, len(self.queue))

    def can_pop(self) -> bool:
        return bool(self.queue)

    def pop(self):
        self.pops += 1
        return self.queue.popleft()

    def close(self) -> None:
        self.closed = True

    @property
    def at_eos(self) -> bool:
        return self.closed and not self.queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Channel {self.name} n={len(self.queue)}"
                f"{' closed' if self.closed else ''}>")


@dataclass
class ProcessTrace:
    """Where a process is, for hang reports (paper Section 5.1, example 2)."""

    process: str
    mode: str
    location: str
    waiting_on: list[str] = field(default_factory=list)
    source_lines: list[tuple[str, int]] = field(default_factory=list)

    def __str__(self) -> str:
        wait = f" waiting on {', '.join(self.waiting_on)}" if self.waiting_on else ""
        src = ""
        if self.source_lines:
            src = " at " + "; ".join(f"{f}:{line}" for f, line in self.source_lines)
        return f"{self.process}: {self.mode} {self.location}{wait}{src}"


_STREAMLIKE = (OpKind.STREAM_READ, OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE,
               OpKind.TAP_READ)


class ProcessExec:
    """Executes one scheduled process cycle by cycle.

    ``streams`` binds each co_stream parameter to a :class:`Channel`;
    ``taps`` binds tap channel names (both the producing TAP side and the
    consuming TAP_READ side use the same mapping).
    """

    #: which simulation backend this class implements (repro.simc overrides)
    backend = "interp"

    def __init__(
        self,
        fsched: FunctionSchedule,
        streams: dict[str, Channel],
        taps: dict[str, Channel] | None = None,
        ext_funcs: dict[str, Callable[[int], int]] | None = None,
        name: str | None = None,
    ) -> None:
        self.fsched = fsched
        self.func: IRFunction = fsched.func
        self.name = name or self.func.name
        self.streams = streams
        self.taps = taps or {}
        self.ext_funcs = ext_funcs or {}
        missing = [s for s in self.func.stream_names() if s not in streams]
        if missing:
            raise SimulationError(f"{self.name}: unbound streams {missing}", code="RPR-X202")

        self.env: dict[str, int] = {n: 0 for n in self.func.scalars}
        self.memories: dict[str, list[int]] = {}
        for arr_name, arr in self.func.arrays.items():
            image = [0] * arr.size
            for i, v in enumerate(arr.init or ()):
                image[i] = truncate(v, arr.elem.width)
            self.memories[arr_name] = image

        self.mode = "seq"
        self.block = self.func.entry
        self.step = 0
        self.cycles = 0
        self.stall_cycles = 0
        self.iterations_started = 0
        #: successful stream handshakes (reads that popped, writes) — the
        #: forward-progress signal the runtime watchdog monitors
        self.stream_ops = 0
        self.done = False
        self.quarantined = False
        # pipeline state
        self._pipe = None
        self._inflight: list[dict] = []
        self._since_init = 10 ** 9
        self._draining = False
        self._pending_env: list[tuple[str, int]] = []
        self._pending_mem: list[tuple[str, int, int]] = []
        self._enter_block(self.func.entry)

    # ---- value plumbing -------------------------------------------------------

    def _read(self, value: Value, overlay: dict | None = None) -> int:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Temp):
            if overlay is not None and value.name in overlay:
                return overlay[value.name]
            return self.env[value.name]
        raise SimulationError(f"{self.name}: bad operand {value!r}", code="RPR-X203")

    def _write(self, temp: Temp, pattern: int, overlay: dict | None) -> None:
        pattern = truncate(pattern, temp.ty.width)
        if overlay is None:
            self.env[temp.name] = pattern
        else:
            overlay[temp.name] = pattern
            self._pending_env.append((temp.name, pattern))

    # ---- instruction execution ---------------------------------------------------

    def _channel_for(self, instr: Instr) -> Channel:
        if "stream" in instr.attrs:
            return self.streams[instr.attrs["stream"]]
        return self.taps[instr.attrs["channel"]]

    def _pred_value(self, instr: Instr, overlay: dict | None) -> bool:
        pred = instr.attrs.get("pred")
        if pred is None:
            return True
        return self._read(pred, overlay) != 0

    def _stream_ready(self, instr: Instr, overlay: dict | None) -> bool:
        if instr.op not in _STREAMLIKE:
            return True
        if not self._pred_value(instr, overlay):
            return True  # squashed handshake never stalls
        ch = self._channel_for(instr)
        if instr.op in (OpKind.STREAM_READ, OpKind.TAP_READ):
            return ch.can_pop() or ch.closed
        if instr.op == OpKind.STREAM_WRITE:
            return ch.can_push()
        return True  # close

    def _exec(self, instr: Instr, overlay: dict | None) -> None:
        """Execute one instruction; assumes readiness was established."""
        if not self._pred_value(instr, overlay):
            return
        op = instr.op
        if op in (OpKind.MOV, OpKind.TRUNC, OpKind.ZEXT, OpKind.SEXT):
            src = instr.args[0]
            self._write(instr.dest,
                        semantics.cast(op, self._read(src, overlay), src.ty),
                        overlay)
        elif op in (OpKind.NEG, OpKind.NOT, OpKind.LNOT):
            src = instr.args[0]
            self._write(instr.dest,
                        semantics.unop(op, self._read(src, overlay), src.ty),
                        overlay)
        elif op == OpKind.SELECT:
            cond, a, b = instr.args
            chosen = a if self._read(cond, overlay) != 0 else b
            self._write(instr.dest,
                        semantics.interpret(self._read(chosen, overlay), chosen.ty),
                        overlay)
        elif op in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
                    OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.SHL, OpKind.SHR):
            a, b = instr.args
            r = semantics.binop(op, self._read(a, overlay), a.ty,
                                self._read(b, overlay), b.ty, where=self.name)
            self._write(instr.dest, r, overlay)
        elif op in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
                    OpKind.GT, OpKind.GE):
            a, b = instr.args
            # ``force_compare_width`` is the narrow-compare translation
            # fault (paper Section 5.1): present only on hardware-side IR.
            r = semantics.compare(
                op, self._read(a, overlay), a.ty, self._read(b, overlay), b.ty,
                force_width=instr.attrs.get("force_compare_width"),
            )
            self._write(instr.dest, r, overlay)
        elif op == OpKind.LOAD:
            mem = self.memories[instr.attrs["array"]]
            idx = semantics.interpret(self._read(instr.args[0], overlay),
                                      instr.args[0].ty)
            # Hardware address decoding wraps rather than trapping.
            self._write(instr.dest, mem[idx % len(mem)], overlay)
        elif op == OpKind.STORE:
            mem_name = instr.attrs["array"]
            mem = self.memories[mem_name]
            idx = semantics.interpret(self._read(instr.args[0], overlay),
                                      instr.args[0].ty)
            value = truncate(self._read(instr.args[1], overlay),
                             self.func.arrays[mem_name].elem.width)
            if overlay is None:
                mem[idx % len(mem)] = value
            else:
                self._pending_mem.append((mem_name, idx % len(mem), value))
        elif op == OpKind.STREAM_READ:
            ch = self._channel_for(instr)
            ok_t, val_t = instr.dests
            if ch.can_pop():
                self.stream_ops += 1
                self._write(ok_t, 1, overlay)
                self._write(val_t, int(ch.pop()), overlay)
            else:  # closed and drained: end of stream
                self._write(ok_t, 0, overlay)
                self._write(val_t, 0, overlay)
        elif op == OpKind.TAP_READ:
            ch = self._channel_for(instr)
            if ch.can_pop():
                record = ch.pop()
                self._write(instr.dests[0], 1, overlay)
                for dest, v in zip(instr.dests[1:], record):
                    self._write(dest, int(v), overlay)
            else:
                for dest in instr.dests:
                    self._write(dest, 0, overlay)
        elif op == OpKind.STREAM_WRITE:
            ch = self._channel_for(instr)
            ch.push(truncate(self._read(instr.args[0], overlay), ch.width))
            self.stream_ops += 1
        elif op == OpKind.STREAM_CLOSE:
            self._channel_for(instr).close()
        elif op == OpKind.TAP:
            ch = self._channel_for(instr)
            record = tuple(
                truncate(self._read(a, overlay), a.ty.width) for a in instr.args
            )
            ch.push(record)
        elif op == OpKind.EXT_HDL:
            fn = self.ext_funcs.get("ext_hdl", lambda v: v)
            self._write(instr.dest,
                        fn(truncate(self._read(instr.args[0], overlay), 64)),
                        overlay)
        else:
            raise SimulationError(f"{self.name}: op {op} reached hardware model", code="RPR-X204")

    # ---- control ---------------------------------------------------------------

    def _enter_block(self, name: str) -> None:
        if name in self.fsched.pipelines:
            self.mode = "pipe"
            self._pipe = self.fsched.pipelines[name]
            self._inflight = []
            self._since_init = 10 ** 9  # initiate immediately
            self._draining = False
            self.block = name
        else:
            self.mode = "seq"
            self.block = name
            self.step = 0

    def tick(self) -> str:
        """Advance one clock. Returns 'active', 'stalled' or 'done'."""
        if self.done:
            return "done"
        self.cycles += 1
        if self.mode == "seq":
            status = self._tick_seq()
        else:
            status = self._tick_pipe()
        if status == "stalled":
            self.stall_cycles += 1
        return status

    def _tick_seq(self) -> str:
        bs = self.fsched.blocks[self.block]
        block = self.func.blocks[self.block]
        indices = bs.steps[self.step] if self.step < len(bs.steps) else []
        instrs = [block.instrs[i] for i in indices]
        if not all(self._stream_ready(i, None) for i in instrs):
            return "stalled"
        for instr in instrs:
            self._exec(instr, None)
        self.step += 1
        if self.step >= bs.length:
            term = block.term
            if isinstance(term, Jump):
                self._enter_block(term.target)
            elif isinstance(term, Branch):
                taken = self._read(term.cond, None) != 0
                self._enter_block(term.iftrue if taken else term.iffalse)
            elif isinstance(term, Return):
                self.done = True
                return "done"
        return "active"

    def _tick_pipe(self) -> str:
        ps = self._pipe
        plan: list[tuple[dict, list[Instr]]] = []
        for it in self._inflight:
            ops = [ps.instrs[i] for i, s in ps.instr_step.items()
                   if s == it["stage"]]
            plan.append((it, ops))

        # a handshake stuck mid-pipeline stalls everything (stage registers
        # hold their values)
        for it, ops in plan:
            if it["squashed"]:
                continue
            for instr in ops:
                if not self._stream_ready(instr, it["overlay"]):
                    return "stalled"

        # initiation: input starvation merely skips this cycle's initiation
        # (a bubble enters the pipeline); in-flight iterations still advance
        new_iter = None
        if not self._draining and self._since_init + 1 >= ps.ii:
            candidate = {"stage": 0, "overlay": {}, "squashed": False}
            ops = [ps.instrs[i] for i, s in ps.instr_step.items() if s == 0]
            if all(self._stream_ready(instr, candidate["overlay"])
                   for instr in ops):
                new_iter = candidate
                plan.append((new_iter, ops))
            elif not self._inflight:
                return "stalled"  # nothing to advance: the pipeline idles

        for it, ops in plan:
            if it["squashed"]:
                continue
            for instr in ops:
                self._exec(instr, it["overlay"])
            if ps.ok is not None and it["stage"] == 0:
                ok_val = it["overlay"].get(ps.ok.name, self.env.get(ps.ok.name, 0))
                if ok_val == 0:
                    it["squashed"] = True
                    self._draining = True

        if new_iter is not None:
            if not new_iter["squashed"]:
                self.iterations_started += 1
            self._inflight.append(new_iter)
            self._since_init = 0
        else:
            self._since_init += 1

        for it in self._inflight:
            it["stage"] += 1
        self._inflight = [
            it for it in self._inflight
            if it["stage"] < ps.latency and not it["squashed"]
        ]

        # commit end-of-cycle register/memory writes
        for name, value in self._pending_env:
            self.env[name] = value
        self._pending_env.clear()
        for mem_name, idx, value in self._pending_mem:
            self.memories[mem_name][idx] = value
        self._pending_mem.clear()

        if self._draining and not self._inflight:
            self._enter_block(ps.exit_block)
        return "active"

    # ---- helpers shared with the compiled/batched backends -----------------

    def _sc_div(self, a: int, b: int) -> int:
        """C truncating division (referenced from generated simc code)."""
        if b == 0:
            raise SimulationError(
                f"{self.name}: division by zero", code="RPR-X010")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q

    def _sc_mod(self, a: int, b: int) -> int:
        if b == 0:
            raise SimulationError(
                f"{self.name}: division by zero", code="RPR-X010")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return a - q * b

    # ---- fault / watchdog hooks -------------------------------------------

    def upset_register(self, reg_index: int, bit: int) -> tuple[str, int]:
        """Single-event-upset hook: flip one bit of one live register.

        The register is addressed by index into the sorted register file
        (names are unstable across instrumentation levels; indices are
        stable for a given compiled design). Returns what was flipped.
        """
        names = sorted(self.env)
        if not names:
            return "", 0
        reg = names[reg_index % len(names)]
        ty = self.func.scalars.get(reg)
        width = ty.width if ty is not None else 32
        pos = bit % width
        self.env[reg] = truncate(self.env[reg] ^ (1 << pos), width)
        return reg, pos

    def quarantine(self) -> None:
        """Graceful-degradation hook: retire this process immediately.

        The watchdog quarantines a faulted process (under ``NABORT``) so
        the rest of the application can drain to completion; the caller is
        responsible for closing the channels this process produced.
        """
        self.done = True
        self.quarantined = True

    # ---- diagnostics ----------------------------------------------------------

    def trace(self) -> ProcessTrace:
        waiting: list[str] = []
        lines: list[tuple[str, int]] = []
        if self.quarantined:
            return ProcessTrace(self.name, "quarantined", "-")
        if self.done:
            return ProcessTrace(self.name, "done", "-")
        if self.mode == "seq":
            bs = self.fsched.blocks[self.block]
            block = self.func.blocks[self.block]
            indices = bs.steps[self.step] if self.step < len(bs.steps) else []
            for i in indices:
                instr = block.instrs[i]
                if not self._stream_ready(instr, None):
                    waiting.append(self._channel_for(instr).name)
                coord = instr.attrs.get("coord")
                if coord:
                    lines.append(coord)
            loc = f"{self.block}[{self.step}]"
            return ProcessTrace(self.name, "state", loc, waiting, sorted(set(lines)))
        ps = self._pipe
        for it in self._inflight:
            for i, s in ps.instr_step.items():
                if s == it["stage"]:
                    instr = ps.instrs[i]
                    if not self._stream_ready(instr, it["overlay"]):
                        waiting.append(self._channel_for(instr).name)
                    coord = instr.attrs.get("coord")
                    if coord:
                        lines.append(coord)
        loc = f"pipeline {ps.header} ({len(self._inflight)} in flight)"
        return ProcessTrace(self.name, "pipe", loc, sorted(set(waiting)),
                            sorted(set(lines)))
