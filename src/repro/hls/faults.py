"""Translation-fault injection: reproducing the paper's Section 5.1 bugs.

The whole point of in-circuit assertions is catching behaviour that differs
between software simulation and the synthesized circuit. Since our HLS flow
is (intentionally) correct, the paper's two bug case studies are reproduced
by *injecting* the documented Impulse-C defects into the hardware-side IR
only. Software simulation still executes the clean source semantics, so an
assertion passes in simulation and fails in circuit — exactly the scenario
of Figure 3.

* :class:`NarrowCompare` — "Impulse-C performs an erroneous 5-bit
  comparison of c2 and c1 … The 64-bit comparison of 4294967286 >
  4294967296 (which evaluates to false) becomes a 5-bit comparison of
  22 > 0 (which evaluates to true)". We tag matching comparison
  instructions with ``force_compare_width``; the cycle model and the
  emitted Verilog then compare only the low bits.

* :class:`ReadForWrite` — the DES hang: "the memory read should have been
  a memory write". A selected store is turned into a read, so the flag the
  loop polls is never written and the process hangs in hardware while
  completing in software simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.ir.function import IRFunction
from repro.ir.instr import Instr
from repro.ir.ops import COMPARISONS, OpKind


class FaultError(ReproError):
    """Raised when a fault's selector matches nothing (misconfiguration)."""


def _coord_line(instr: Instr) -> int | None:
    coord = instr.attrs.get("coord")
    return coord[1] if coord else None


@dataclass(frozen=True)
class NarrowCompare:
    """Truncate matching comparisons to ``width`` bits in hardware.

    ``line`` restricts the fault to comparisons lowered from that source
    line; ``None`` hits every comparison whose operands are wider than
    ``width`` (rarely what an experiment wants, but useful for chaos
    testing).
    """

    width: int = 5
    line: int | None = None

    def apply(self, func: IRFunction) -> int:
        hits = 0
        for block in func.blocks.values():
            for instr in block.instrs:
                if instr.op not in COMPARISONS:
                    continue
                if self.line is not None and _coord_line(instr) != self.line:
                    continue
                if max(a.ty.width for a in instr.args) <= self.width:
                    continue
                instr.attrs["force_compare_width"] = self.width
                hits += 1
        return hits


@dataclass(frozen=True)
class ReadForWrite:
    """Replace a store to ``array`` with a read (write is lost) in hardware."""

    array: str
    line: int | None = None

    def apply(self, func: IRFunction) -> int:
        hits = 0
        for block in func.blocks.values():
            for idx, instr in enumerate(block.instrs):
                if instr.op != OpKind.STORE or instr.attrs.get("array") != self.array:
                    continue
                if self.line is not None and _coord_line(instr) != self.line:
                    continue
                dummy = func.new_temp(func.arrays[self.array].elem, "fault")
                replacement = Instr(
                    OpKind.LOAD,
                    [dummy],
                    [instr.args[0]],
                    {"array": self.array, "coord": instr.attrs.get("coord")},
                )
                block.instrs[idx] = replacement
                hits += 1
        return hits


def apply_faults(func: IRFunction, faults) -> IRFunction:
    """Clone ``func`` and apply each fault; raises if a fault matched nothing."""
    hw = func.clone()
    for fault in faults:
        hits = fault.apply(hw)
        if hits == 0:
            raise FaultError(f"{fault!r} matched nothing in {func.name!r}")
    return hw
