"""Backward-compatibility shim: translation faults moved to ``repro.faults``.

The fault engine grew beyond the two Section 5.1 translation bugs into a
full package (:mod:`repro.faults`) with runtime faults and campaign
machinery. The IR-level faults historically imported from here live in
:mod:`repro.faults.ir`; this module re-exports them so existing imports
keep working.
"""

from __future__ import annotations

from repro.faults.ir import (  # noqa: F401
    Fault,
    FaultError,
    NarrowCompare,
    ReadForWrite,
    apply_faults,
)

__all__ = ["Fault", "FaultError", "NarrowCompare", "ReadForWrite", "apply_faults"]
