"""Resource-constrained list scheduling of basic blocks into control steps.

State-machine model (matching the Impulse-C behaviour the paper measures):

* One control step = one clock cycle (stream handshakes may stall a step).
* **States never span basic-block boundaries** and every reachable block
  occupies at least one state. This is why converting an assertion into an
  inline ``if`` costs a cycle even when the comparison itself would chain:
  the control-flow split forces a state boundary (paper Section 3.1).
* Combinational ops chain within a step up to ``max_chain_levels`` LUT
  levels; deeper expressions spill into additional states ("an arbitrarily
  long delay depending on the complexity of the assertion statement").
* A block-RAM access is flow-through but consumes one of the array's ports
  for its step; with the default single datapath port, two accesses to the
  same array in the same candidate step serialize — the paper's
  "Array (consecutive)" +1 cycle.
* Stream ops occupy their stream's endpoint for a full step.
* Multipliers are registered (1 cycle), dividers take 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.hls.constraints import ScheduleConfig
from repro.hls.depgraph import build_depgraph, stream_key
from repro.ir.function import IRFunction
from repro.ir.instr import BasicBlock
from repro.ir.ops import OpKind

#: resources whose results are internally registered: a block must persist
#: long enough for the result to commit before control leaves it.
_REGISTERED_RESULT = {"mult", "divide", "exthdl"}

_STREAM_OPS = (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
               OpKind.STREAM_CLOSE, OpKind.TAP_READ)
_MEM_OPS = (OpKind.LOAD, OpKind.STORE)


@dataclass
class BlockSchedule:
    """Steps for one basic block: ``steps[s]`` lists instr indices in step s."""

    block: str
    steps: list[list[int]] = field(default_factory=list)
    instr_step: dict[int, int] = field(default_factory=dict)
    instr_depth: dict[int, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return max(1, len(self.steps))

    def step_of(self, idx: int) -> int:
        return self.instr_step[idx]


def schedule_block(
    func: IRFunction, block: BasicBlock, cfg: ScheduleConfig
) -> BlockSchedule:
    """List-schedule one block. Instructions are visited in program order
    (which is a topological order of the intra-block dependence graph)."""
    g = build_depgraph(block)
    sched = BlockSchedule(block=block.name)
    n = len(block.instrs)
    step: list[int] = [0] * n
    depth: list[int] = [0] * n

    mem_use: dict[tuple[int, str], int] = {}     # (step, array) -> accesses
    stream_use: dict[tuple[int, str], int] = {}  # (step, stream) -> ops

    for i, instr in enumerate(block.instrs):
        info = instr.info
        est = 0
        for j, delay in g.preds[i]:
            est = max(est, step[j] + delay)

        t = est
        for _ in range(n * 8 + 16):  # bounded search; raises below if stuck
            # chaining depth at candidate step t
            depth_in = 0
            for j, _delay in g.preds[i]:
                if step[j] == t:
                    depth_in = max(depth_in, depth[j])
            my_depth = depth_in + info.levels
            if info.levels and my_depth > cfg.max_chain_levels and depth_in > 0:
                t += 1
                continue
            my_depth = min(my_depth, cfg.max_chain_levels)
            # resource availability
            if instr.op in _MEM_OPS:
                array = instr.attrs["array"]
                if mem_use.get((t, array), 0) >= cfg.ports_for(array):
                    t += 1
                    continue
            if instr.op in _STREAM_OPS:
                stream = stream_key(instr)
                if stream_use.get((t, stream), 0) >= cfg.stream_ops_per_step:
                    t += 1
                    continue
            break
        else:
            raise SchedulingError(
                f"{func.name}/{block.name}: cannot place {instr} "
                f"(resource conflict search exhausted)", code="RPR-H001")

        step[i] = t
        # zero-level ops (moves/casts) are wires: they inherit the
        # chain depth of their same-step producers instead of
        # resetting it, so depth accounting sees through them
        depth[i] = my_depth if info.levels else depth_in
        if instr.op in _MEM_OPS:
            key = (t, instr.attrs["array"])
            mem_use[key] = mem_use.get(key, 0) + 1
        if instr.op in _STREAM_OPS:
            key = (t, stream_key(instr))
            stream_use[key] = stream_use.get(key, 0) + 1

    # block length: at least one state; registered-result ops extend it
    length = 1
    for i, instr in enumerate(block.instrs):
        extra = instr.info.latency if instr.info.resource in _REGISTERED_RESULT else 0
        length = max(length, step[i] + 1 + extra)
    sched.steps = [[] for _ in range(length)]
    for i in range(n):
        sched.steps[step[i]].append(i)
        sched.instr_step[i] = step[i]
        sched.instr_depth[i] = depth[i]
    return sched


@dataclass
class FunctionSchedule:
    """Complete schedule for one process.

    ``blocks`` covers every block *not* inside a pipelined loop region;
    pipelined regions live in ``pipelines`` (header block name ->
    :class:`~repro.hls.pipeline.PipelineSchedule`).
    """

    func: IRFunction
    config: ScheduleConfig
    blocks: dict[str, BlockSchedule] = field(default_factory=dict)
    pipelines: dict[str, object] = field(default_factory=dict)

    def state_count(self) -> int:
        """Total FSM states (pipelined regions count their stages once)."""
        total = sum(bs.length for bs in self.blocks.values())
        for ps in self.pipelines.values():
            total += ps.latency  # type: ignore[attr-defined]
        return total

    def block_latency(self, name: str) -> int:
        return self.blocks[name].length


def schedule_function(
    func: IRFunction, cfg: ScheduleConfig | None = None
) -> FunctionSchedule:
    """Schedule every block of ``func``; pipelined loops are modulo-scheduled.

    Raises :class:`SchedulingError` if an ``assert_check`` pseudo-op is still
    present — assertion synthesis (:mod:`repro.core`) must decide the
    implementation strategy before hardware scheduling.
    """
    from repro.hls.pipeline import schedule_pipelined_loop
    from repro.ir.cfg import CFG

    cfg = cfg or ScheduleConfig()
    for instr in func.instructions():
        if instr.op == OpKind.ASSERT_CHECK:
            raise SchedulingError(
                f"{func.name}: assert_check reached the scheduler; run "
                "assertion synthesis (repro.core) or compile with NDEBUG first", code="RPR-H002")

    fsched = FunctionSchedule(func=func, config=cfg)
    cfg_graph = CFG.build(func)
    pipelined_blocks: set[str] = set()
    for loop in cfg_graph.pipelined_loops():
        ps = schedule_pipelined_loop(func, cfg_graph, loop, cfg)
        fsched.pipelines[loop.header] = ps
        pipelined_blocks |= set(loop.body)

    reachable = cfg_graph.reachable()
    for name, block in func.blocks.items():
        if name in pipelined_blocks or name not in reachable:
            continue
        fsched.blocks[name] = schedule_block(func, block, cfg)
    return fsched
