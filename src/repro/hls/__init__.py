"""High-level synthesis: scheduling, pipelining, binding, faults, cycle model."""

from repro.hls.binding import BindingReport, FunctionalUnit, bind_function
from repro.hls.compiler import CompiledProcess, compile_process
from repro.hls.constraints import HLSConfig, ScheduleConfig
from repro.hls.cyclemodel import Channel, ProcessExec, ProcessTrace
from repro.hls.faults import FaultError, NarrowCompare, ReadForWrite, apply_faults
from repro.hls.pipeline import PipelineSchedule, schedule_pipelined_loop
from repro.hls.schedule import (
    BlockSchedule,
    FunctionSchedule,
    schedule_block,
    schedule_function,
)

__all__ = [
    "BindingReport",
    "FunctionalUnit",
    "bind_function",
    "CompiledProcess",
    "compile_process",
    "HLSConfig",
    "ScheduleConfig",
    "Channel",
    "ProcessExec",
    "ProcessTrace",
    "FaultError",
    "NarrowCompare",
    "ReadForWrite",
    "apply_faults",
    "PipelineSchedule",
    "schedule_pipelined_loop",
    "BlockSchedule",
    "FunctionSchedule",
    "schedule_block",
    "schedule_function",
]
