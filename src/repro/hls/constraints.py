"""Scheduling constraints and HLS configuration.

The defaults model the Impulse-C / Stratix-II behaviour the paper measures:

* ``max_chain_levels`` — LUT levels of combinational logic allowed in one
  control step before the scheduler breaks the chain into a new state.
* ``array_ports`` — simultaneous accesses per block RAM per cycle available
  to the process datapath. Impulse-C's wrapper reserves the second physical
  port of the M4K/M-RAM blocks, so the default is 1: this is the port
  contention that produces the paper's "Array (consecutive)" overhead row
  and the pipelined-array rate degradation (Sections 3.2 and 5.4).
* ``stream_ops_per_step`` — a stream endpoint performs one handshake per
  cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScheduleConfig:
    max_chain_levels: int = 4
    array_ports: int = 1
    stream_ops_per_step: int = 1
    #: Extra read ports granted per array by the resource-replication pass
    #: (array name -> additional ports). A replicated (shadow) array arrives
    #: here as a real second array instead, so this stays empty in the
    #: standard flow; it exists for ablation experiments.
    extra_array_ports: dict = field(default_factory=dict)

    def ports_for(self, array: str) -> int:
        return self.array_ports + self.extra_array_ports.get(array, 0)


@dataclass(frozen=True)
class HLSConfig:
    """Top-level knobs for one process compilation."""

    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    #: Translation faults to inject (see :mod:`repro.hls.faults`).
    faults: tuple = ()
