"""Per-process hardware compilation driver.

``compile_process`` takes an IR function whose assertions have already been
synthesized away by :mod:`repro.core` (or compiled out via ``NDEBUG``) and
produces everything downstream consumers need: the schedule (timing), the
binding (area sharing), and — lazily, via :mod:`repro.hls.codegen` — the
RTL module and Verilog text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.binding import BindingReport, bind_function
from repro.hls.constraints import HLSConfig, ScheduleConfig
from repro.hls.faults import apply_faults
from repro.hls.schedule import FunctionSchedule, schedule_function
from repro.ir.function import IRFunction
from repro.ir.verify import verify_function


@dataclass
class CompiledProcess:
    """One FPGA process after hardware compilation."""

    hw_func: IRFunction
    schedule: FunctionSchedule
    binding: BindingReport
    config: HLSConfig
    _rtl: object = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.hw_func.name

    def pipeline_report(self) -> dict[str, tuple[int, int]]:
        """{loop header: (latency, rate)} for every pipelined loop."""
        return {
            header: (ps.latency, ps.ii)
            for header, ps in self.schedule.pipelines.items()
        }

    def sequential_latency(self, block: str) -> int:
        return self.schedule.block_latency(block)

    @property
    def rtl(self):
        """The RTL module, generated on first access."""
        if self._rtl is None:
            from repro.hls.codegen import generate_rtl

            self._rtl = generate_rtl(self)
        return self._rtl

    def verilog(self) -> str:
        from repro.rtl.verilog import emit_module

        return emit_module(self.rtl)

    def __getstate__(self):
        """Drop the lazily generated RTL when pickled (cache entries,
        executor transfers): it regenerates deterministically on first
        access, and excluding it keeps per-process cache artifacts
        byte-stable regardless of whether RTL was materialized before
        the store."""
        state = self.__dict__.copy()
        state["_rtl"] = None
        return state


def compile_process(
    func: IRFunction, config: HLSConfig | None = None
) -> CompiledProcess:
    """Compile one process to a scheduled, bound hardware description.

    The input function is cloned before fault injection, so the caller's IR
    (used for software simulation) is never mutated.
    """
    config = config or HLSConfig()
    hw = apply_faults(func, config.faults) if config.faults else func.clone()
    verify_function(hw)
    sched = schedule_function(hw, config.schedule)
    binding = bind_function(sched)
    return CompiledProcess(hw_func=hw, schedule=sched, binding=binding,
                           config=config)


def default_schedule_config() -> ScheduleConfig:
    return ScheduleConfig()
