"""Functional-unit binding and resource sharing.

Classic high-level synthesis resource sharing [De Micheli 1994], cited by
the paper as the basis for its assertion resource-sharing optimization:
operations that can never be active in the same clock cycle share one
functional unit, at the price of operand multiplexers.

Conflict rules:

* ops of a sequential (non-pipelined) FSM conflict iff they execute in the
  same block *and* the same control step — distinct states are mutually
  exclusive in time;
* ops of a pipelined region conflict iff they occupy the same modulo slot
  (``step % II``), because every slot is live each initiation;
* sequential ops never conflict with pipelined ops of the same process
  (the FSM is either in the pipeline region or outside it).

The binder is also what makes multiple assertions inside one process cheap:
their comparison/arithmetic ops land in different states or slots and fold
onto shared units exactly as Section 3.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.schedule import FunctionSchedule
from repro.ir.instr import Instr
from repro.ir.ops import OpKind

#: resource classes that occupy real functional units (sharable)
_SHARABLE = {"addsub", "mult", "divide", "compare", "shift", "logic"}


@dataclass
class BoundOp:
    """One operation with its temporal placement."""

    instr: Instr
    region: str           # block name or "pipe:<header>"
    slot: int             # step (sequential) or step % II (pipelined)
    pipelined: bool
    width: int


@dataclass
class FunctionalUnit:
    resource: str
    width: int
    ops: list[BoundOp] = field(default_factory=list)

    @property
    def share_count(self) -> int:
        return len(self.ops)

    @property
    def mux_inputs(self) -> int:
        """Operand mux fan-in added by sharing (0 when unshared)."""
        return 0 if len(self.ops) <= 1 else len(self.ops)


@dataclass
class BindingReport:
    """Binding result for one process."""

    fus: list[FunctionalUnit] = field(default_factory=list)
    #: ops that existed before sharing (for the area-savings report)
    total_ops: int = 0

    def fu_count(self, resource: str | None = None) -> int:
        return sum(
            1 for fu in self.fus if resource is None or fu.resource == resource
        )

    def mux_bits(self) -> int:
        """Total multiplexer bits introduced by sharing (2 operands/unit)."""
        bits = 0
        for fu in self.fus:
            if fu.share_count > 1:
                bits += (fu.share_count - 1) * 2 * fu.width
        return bits

    def shared_away(self) -> int:
        """How many functional units sharing eliminated."""
        return self.total_ops - len(self.fus)


def _conflicts(a: BoundOp, b: BoundOp) -> bool:
    # Different regions (distinct FSM states / pipeline vs. sequential code)
    # are mutually exclusive in time; within a region, same step or same
    # modulo slot means simultaneously active.
    return a.region == b.region and a.slot == b.slot


def _op_width(instr: Instr) -> int:
    widths = [d.ty.width for d in instr.dests]
    widths += [a.ty.width for a in instr.args if hasattr(a, "ty")]
    return max(widths) if widths else 1


def bind_function(fsched: FunctionSchedule) -> BindingReport:
    """Greedy width-aware binding over all sharable ops of a process."""
    ops: list[BoundOp] = []
    for bname, bs in fsched.blocks.items():
        block = fsched.func.blocks[bname]
        for idx, step in bs.instr_step.items():
            instr = block.instrs[idx]
            if instr.info.resource in _SHARABLE:
                ops.append(BoundOp(instr, bname, step, False, _op_width(instr)))
    for header, ps in fsched.pipelines.items():
        for idx, step in ps.instr_step.items():  # type: ignore[attr-defined]
            instr = ps.instrs[idx]  # type: ignore[attr-defined]
            if instr.info.resource in _SHARABLE:
                ops.append(
                    BoundOp(
                        instr,
                        f"pipe:{header}",
                        step % ps.ii,  # type: ignore[attr-defined]
                        True,
                        _op_width(instr),
                    )
                )

    report = BindingReport(total_ops=len(ops))
    # Greedy: widest first so narrow ops fold into wide units.
    by_class: dict[str, list[BoundOp]] = {}
    for op in ops:
        by_class.setdefault(op.instr.info.resource, []).append(op)
    for resource, group in sorted(by_class.items()):
        group.sort(key=lambda o: -o.width)
        units: list[FunctionalUnit] = []
        for op in group:
            placed = False
            for fu in units:
                if all(not _conflicts(op, other) for other in fu.ops):
                    fu.ops.append(op)
                    fu.width = max(fu.width, op.width)
                    placed = True
                    break
            if not placed:
                units.append(FunctionalUnit(resource, op.width, [op]))
        report.fus.extend(units)
    return report


#: ops that never occupy functional units but still cost area (wires/regs)
FREE_OPS = {
    OpKind.MOV,
    OpKind.TRUNC,
    OpKind.ZEXT,
    OpKind.SEXT,
    OpKind.TAP,
}
