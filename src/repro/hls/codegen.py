"""RTL generation: schedules → :class:`repro.rtl.core.Module`.

The generated structure mirrors what Impulse-C emits: one FSMD per process
— a state machine whose states are the scheduler's control steps, with
blocking-assignment datapath chains inside each state, flow-through memory
reads, ready/valid stream endpoints, and (for pipelined loops) a
stage-registered datapath with valid bits.

Semantics are encoded structurally (explicit zero/sign extensions, signed
comparison flags), so the RTL simulator evaluates the same integer
operations as the IR interpreter. Sequential (non-pipelined) modules are
cross-validated against the cycle model in the test suite; pipelined
regions are emitted for inspection/synthesis and their timing is owned by
the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodegenError
from repro.frontend.ctypes_ import CType, common_type
from repro.hls.compiler import CompiledProcess
from repro.ir.instr import Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, Temp, Value
from repro.rtl import core as R
from repro.utils.bitops import clog2

_BIN_VERILOG = {
    OpKind.ADD: "+",
    OpKind.SUB: "-",
    OpKind.MUL: "*",
    OpKind.DIV: "/",
    OpKind.MOD: "%",
    OpKind.AND: "&",
    OpKind.OR: "|",
    OpKind.XOR: "^",
    OpKind.EQ: "==",
    OpKind.NE: "!=",
    OpKind.LT: "<",
    OpKind.LE: "<=",
    OpKind.GT: ">",
    OpKind.GE: ">=",
}


@dataclass
class _StreamPorts:
    """Endpoint signals for one stream parameter."""

    name: str
    is_reader: bool
    data: R.Signal
    flag_a: R.Signal   # reader: empty; writer: full
    flag_b: R.Signal   # reader: eos;   writer: close (output)
    strobe: R.Signal   # reader: re;    writer: we
    #: (state index, extra gate expr or None) pairs that drive the strobe
    drivers: list[tuple[int, R.Expr | None]] = field(default_factory=list)
    close_states: list[int] = field(default_factory=list)


class _Builder:
    def __init__(self, cp: CompiledProcess):
        self.cp = cp
        self.func = cp.hw_func
        self.module = R.Module(name=self.func.name)
        self.reg_of: dict[str, R.Signal] = {}
        self.streams: dict[str, _StreamPorts] = {}
        self.state_index: dict[tuple[str, int], int] = {}
        self._exthdl_wires = 0

    # ---- signal helpers ----------------------------------------------------

    def _reg(self, name: str, ty: CType) -> R.Signal:
        if name not in self.reg_of:
            sig = R.Signal(f"r_{name}", ty.width, ty.signed)
            self.reg_of[name] = sig
            self.module.regs.append(sig)
        return self.reg_of[name]

    def _operand(self, value: Value, ct: CType | None = None) -> R.Expr:
        if isinstance(value, Const):
            width = ct.width if ct else value.ty.width
            from repro.utils.bitops import truncate

            return R.Lit(truncate(value.value, width), width)
        if isinstance(value, Temp):
            expr: R.Expr = R.Ref(self._reg(value.name, value.ty))
            if ct is not None and ct.width != value.ty.width:
                op = "sext" if value.ty.signed else "zext"
                if ct.width < value.ty.width:
                    expr = R.SliceExpr(expr, ct.width - 1, 0)
                else:
                    expr = R.UnExpr(op, expr, ct.width)
            return expr
        raise CodegenError(f"bad operand {value!r}", code="RPR-C001")

    # ---- interface construction ------------------------------------------------

    def _declare_ports(self) -> None:
        m = self.module
        m.ports.append(R.Port(R.Signal("clk", 1), R.PortDir.IN))
        m.ports.append(R.Port(R.Signal("rst", 1), R.PortDir.IN))
        reads, writes = _stream_directions(self.func)
        for sp in self.func.streams:
            is_reader = sp.name in reads
            prefix = sp.name
            if is_reader:
                ports = _StreamPorts(
                    name=sp.name,
                    is_reader=True,
                    data=R.Signal(f"{prefix}_data", sp.width),
                    flag_a=R.Signal(f"{prefix}_empty", 1),
                    flag_b=R.Signal(f"{prefix}_eos", 1),
                    strobe=R.Signal(f"{prefix}_re", 1),
                )
                m.ports.append(R.Port(ports.data, R.PortDir.IN))
                m.ports.append(R.Port(ports.flag_a, R.PortDir.IN))
                m.ports.append(R.Port(ports.flag_b, R.PortDir.IN))
                m.ports.append(R.Port(ports.strobe, R.PortDir.OUT))
            else:
                ports = _StreamPorts(
                    name=sp.name,
                    is_reader=False,
                    data=R.Signal(f"{prefix}_data", sp.width),
                    flag_a=R.Signal(f"{prefix}_full", 1),
                    flag_b=R.Signal(f"{prefix}_close", 1),
                    strobe=R.Signal(f"{prefix}_we", 1),
                )
                m.ports.append(R.Port(ports.data, R.PortDir.OUT))
                m.ports.append(R.Port(ports.flag_a, R.PortDir.IN))
                m.ports.append(R.Port(ports.flag_b, R.PortDir.OUT))
                m.ports.append(R.Port(ports.strobe, R.PortDir.OUT))
            self.streams[sp.name] = ports
        # tap channels become simple valid/data output bundles
        taps_out: dict[str, int] = {}
        for instr in self.func.instructions():
            if instr.op == OpKind.TAP:
                width = sum(a.ty.width for a in instr.args)
                taps_out[instr.attrs["channel"]] = width
        for channel, width in sorted(taps_out.items()):
            m.ports.append(
                R.Port(R.Signal(f"tap_{_san(channel)}_data", width), R.PortDir.OUT)
            )
            m.ports.append(
                R.Port(R.Signal(f"tap_{_san(channel)}_valid", 1), R.PortDir.OUT)
            )
        # tap_read inputs (checker processes)
        taps_in: dict[str, int] = {}
        for instr in self.func.instructions():
            if instr.op == OpKind.TAP_READ:
                width = sum(d.ty.width for d in instr.dests[1:]) or 1
                taps_in[instr.attrs["channel"]] = width
        for channel, width in sorted(taps_in.items()):
            base = f"tapin_{_san(channel)}"
            m.ports.append(R.Port(R.Signal(f"{base}_data", width), R.PortDir.IN))
            m.ports.append(R.Port(R.Signal(f"{base}_empty", 1), R.PortDir.IN))
            m.ports.append(R.Port(R.Signal(f"{base}_re", 1), R.PortDir.OUT))

    # ---- instruction lowering -----------------------------------------------------

    def _instr_stmts(self, instr: Instr, state_idx: int) -> list[R.Stmt]:
        op = instr.op
        if op in (OpKind.MOV, OpKind.TRUNC, OpKind.ZEXT, OpKind.SEXT):
            src = instr.args[0]
            dest = self._reg(instr.dest.name, instr.dest.ty)
            ext = "sext" if (op == OpKind.SEXT) else "zext"
            expr = self._operand(src)
            if instr.dest.ty.width > src.ty.width:
                expr = R.UnExpr(ext, expr, instr.dest.ty.width)
            elif instr.dest.ty.width < src.ty.width:
                expr = R.SliceExpr(expr, instr.dest.ty.width - 1, 0)
            return [R.BlockingAssign(dest, expr)]
        if op in (OpKind.NEG, OpKind.NOT):
            dest = self._reg(instr.dest.name, instr.dest.ty)
            vop = "-" if op == OpKind.NEG else "~"
            return [
                R.BlockingAssign(
                    dest,
                    R.UnExpr(vop, self._operand(instr.args[0]), instr.dest.ty.width),
                )
            ]
        if op == OpKind.LNOT:
            dest = self._reg(instr.dest.name, instr.dest.ty)
            return [
                R.BlockingAssign(
                    dest, R.UnExpr("!", self._operand(instr.args[0]), 1)
                )
            ]
        if op == OpKind.SELECT:
            cond, a, b = instr.args
            dest = self._reg(instr.dest.name, instr.dest.ty)
            return [
                R.BlockingAssign(
                    dest,
                    R.CondExpr(
                        self._operand(cond),
                        self._operand(a, instr.dest.ty),
                        self._operand(b, instr.dest.ty),
                        instr.dest.ty.width,
                    ),
                )
            ]
        if op in _BIN_VERILOG and op != OpKind.SHL:
            a, b = instr.args
            ct = common_type(a.ty, b.ty)
            dest = self._reg(instr.dest.name, instr.dest.ty)
            from repro.ir.ops import COMPARISONS

            if op in COMPARISONS:
                force = instr.attrs.get("force_compare_width")
                if force is not None:
                    # the paper's narrow-compare translation fault: compare
                    # only the low ``force`` bits
                    ea = R.SliceExpr(self._operand(a), force - 1, 0)
                    eb = R.SliceExpr(self._operand(b), force - 1, 0)
                    return [
                        R.BlockingAssign(
                            dest,
                            R.BinExpr(_BIN_VERILOG[op], ea, eb, 1),
                        )
                    ]
                return [
                    R.BlockingAssign(
                        dest,
                        R.BinExpr(
                            _BIN_VERILOG[op],
                            self._operand(a, ct),
                            self._operand(b, ct),
                            1,
                            signed_cmp=ct.signed,
                        ),
                    )
                ]
            return [
                R.BlockingAssign(
                    dest,
                    R.BinExpr(
                        _BIN_VERILOG[op],
                        self._operand(a, ct),
                        self._operand(b, ct),
                        ct.width,
                        signed_cmp=ct.signed,
                    ),
                )
            ]
        if op in (OpKind.SHL, OpKind.SHR):
            a, b = instr.args
            dest = self._reg(instr.dest.name, instr.dest.ty)
            vop = "<<" if op == OpKind.SHL else (">>>" if a.ty.signed else ">>")
            return [
                R.BlockingAssign(
                    dest,
                    R.BinExpr(
                        vop,
                        self._operand(a, instr.dest.ty if op == OpKind.SHL else None),
                        self._operand(b),
                        instr.dest.ty.width,
                        signed_cmp=a.ty.signed and op == OpKind.SHR,
                    ),
                )
            ]
        if op == OpKind.LOAD:
            arr = self.func.arrays[instr.attrs["array"]]
            dest = self._reg(instr.dest.name, instr.dest.ty)
            idx_w = clog2(max(2, arr.size))
            idx = self._operand(instr.args[0])
            if instr.args[0].ty.width > idx_w:
                idx = R.SliceExpr(idx, idx_w - 1, 0)
            return [
                R.BlockingAssign(
                    dest, R.MemRead(arr.name, idx, arr.elem.width)
                )
            ]
        if op == OpKind.STORE:
            arr = self.func.arrays[instr.attrs["array"]]
            idx_w = clog2(max(2, arr.size))
            idx = self._operand(instr.args[0])
            if instr.args[0].ty.width > idx_w:
                idx = R.SliceExpr(idx, idx_w - 1, 0)
            return [
                R.MemWrite(
                    arr.name, idx, self._operand(instr.args[1], arr.elem)
                )
            ]
        if op == OpKind.STREAM_READ:
            ports = self.streams[instr.attrs["stream"]]
            ok_t, val_t = instr.dests
            ok = self._reg(ok_t.name, ok_t.ty)
            val = self._reg(val_t.name, val_t.ty)
            not_empty = R.UnExpr("!", R.Ref(ports.flag_a), 1)
            data = R.Ref(ports.data)
            if val_t.ty.width < ports.data.width:
                data = R.SliceExpr(data, val_t.ty.width - 1, 0)
            elif val_t.ty.width > ports.data.width:
                data = R.UnExpr("zext", data, val_t.ty.width)
            ports.drivers.append((state_idx, None))
            return [
                R.BlockingAssign(ok, not_empty),
                R.If(not_empty, [R.BlockingAssign(val, data)],
                     [R.BlockingAssign(val, R.Lit(0, val_t.ty.width))]),
            ]
        if op == OpKind.STREAM_WRITE:
            ports = self.streams[instr.attrs["stream"]]
            pred = instr.attrs.get("pred")
            gate = self._operand(pred) if pred is not None else None
            ports.drivers.append((state_idx, gate))
            data_expr = self._operand(
                instr.args[0], CType(ports.data.width, False)
            )
            # blocking: the endpoint samples data in the same cycle the
            # write-enable fires (Mealy-style output, as Impulse-C emits)
            stmt: R.Stmt = R.BlockingAssign(
                R.Signal(f"{ports.name}_data_r", ports.data.width), data_expr
            )
            return [stmt if gate is None else R.If(gate, [stmt], [])]
        if op == OpKind.STREAM_CLOSE:
            ports = self.streams[instr.attrs["stream"]]
            ports.close_states.append(state_idx)
            return []
        if op == OpKind.TAP:
            channel = _san(instr.attrs["channel"])
            width = sum(a.ty.width for a in instr.args)
            # concatenated capture register; valid strobed from this state
            parts: list[R.Expr] = [
                self._operand(a) for a in instr.args
            ]
            expr: R.Expr = parts[0]
            acc_w = parts[0].width
            for p in parts[1:]:
                acc_w += p.width
                expr = R.BinExpr("concat", expr, p, acc_w)
            self.module.meta.setdefault("tap_states", {}).setdefault(
                channel, []
            ).append(state_idx)
            return [R.BlockingAssign(R.Signal(f"tap_{channel}_r", width), expr)]
        if op == OpKind.TAP_READ:
            channel = _san(instr.attrs["channel"])
            base = f"tapin_{channel}"
            ok = self._reg(instr.dests[0].name, instr.dests[0].ty)
            stmts: list[R.Stmt] = [
                R.BlockingAssign(
                    ok, R.UnExpr("!", R.Ref(R.Signal(f"{base}_empty", 1)), 1)
                )
            ]
            lsb = 0
            total = sum(d.ty.width for d in instr.dests[1:]) or 1
            for dest in instr.dests[1:]:
                sig = self._reg(dest.name, dest.ty)
                stmts.append(
                    R.BlockingAssign(
                        sig,
                        R.SliceExpr(
                            R.Ref(R.Signal(f"{base}_data", total)),
                            lsb + dest.ty.width - 1,
                            lsb,
                        ),
                    )
                )
                lsb += dest.ty.width
            self.module.meta.setdefault("tapin_states", {}).setdefault(
                channel, []
            ).append(state_idx)
            return stmts
        if op == OpKind.EXT_HDL:
            dest = self._reg(instr.dest.name, instr.dest.ty)
            self._exthdl_wires += 1
            return [
                R.BlockingAssign(
                    dest,
                    R.MemRead("$ext_hdl", self._operand(instr.args[0]),
                              instr.dest.ty.width),
                )
            ]
        raise CodegenError(f"{self.func.name}: cannot generate RTL for {instr}", code="RPR-C002")

    def _state_stall(self, instrs: list[Instr]) -> R.Expr | None:
        terms: list[R.Expr] = []
        for instr in instrs:
            if instr.op in (OpKind.STREAM_READ,):
                p = self.streams[instr.attrs["stream"]]
                terms.append(
                    R.BinExpr(
                        "&&",
                        R.Ref(p.flag_a),
                        R.UnExpr("!", R.Ref(p.flag_b), 1),
                        1,
                    )
                )
            elif instr.op == OpKind.STREAM_WRITE:
                p = self.streams[instr.attrs["stream"]]
                terms.append(R.Ref(p.flag_a))
            elif instr.op == OpKind.TAP_READ:
                base = f"tapin_{_san(instr.attrs['channel'])}"
                terms.append(R.Ref(R.Signal(f"{base}_empty", 1)))
        if not terms:
            return None
        expr = terms[0]
        for t in terms[1:]:
            expr = R.BinExpr("||", expr, t, 1)
        return expr

    # ---- top level -----------------------------------------------------------------

    def build(self) -> R.Module:
        cp, func, m = self.cp, self.func, self.module
        self._declare_ports()
        for arr in func.arrays.values():
            m.memories.append(
                R.Memory(arr.name, arr.elem.width, arr.size, arr.init)
            )

        # enumerate sequential states
        order: list[tuple[str, int]] = []
        for bname, bs in cp.schedule.blocks.items():
            for step in range(bs.length):
                order.append((bname, step))
        # pipeline placeholder states (one per pipelined region)
        for header in cp.schedule.pipelines:
            order.append((header, -1))
        done_index = len(order)
        for idx, key in enumerate(order):
            self.state_index[key] = idx
        m.state_width = clog2(max(2, done_index + 1))

        def first_state(block: str) -> int:
            if block in cp.schedule.pipelines:
                return self.state_index[(block, -1)]
            return self.state_index[(block, 0)]

        for bname, bs in cp.schedule.blocks.items():
            block = func.blocks[bname]
            for step in range(bs.length):
                idx = self.state_index[(bname, step)]
                instrs = [block.instrs[i] for i in bs.steps[step]] \
                    if step < len(bs.steps) else []
                body: list[R.Stmt] = []
                for instr in instrs:
                    body.extend(self._instr_stmts(instr, idx))
                stall = self._state_stall(instrs)
                if step + 1 < bs.length:
                    nxt: R.Expr = R.Lit(idx + 1, m.state_width)
                else:
                    term = block.term
                    if isinstance(term, Jump):
                        nxt = R.Lit(first_state(term.target), m.state_width)
                    elif isinstance(term, Branch):
                        nxt = R.CondExpr(
                            self._operand(term.cond),
                            R.Lit(first_state(term.iftrue), m.state_width),
                            R.Lit(first_state(term.iffalse), m.state_width),
                            m.state_width,
                        )
                    elif isinstance(term, Return):
                        nxt = R.Lit(done_index, m.state_width)
                    else:  # pragma: no cover
                        raise CodegenError(f"bad terminator {term!r}", code="RPR-C003")
                m.states.append(
                    R.StateCase(idx, f"{bname}_{step}", stall, body, nxt)
                )

        # pipelined regions: a stage-registered datapath with valid bits;
        # the FSM treats each as one state that exits when the pipeline
        # drains (executable timing semantics live in the cycle model)
        for header, ps in cp.schedule.pipelines.items():
            idx = self.state_index[(header, -1)]
            m.meta.setdefault("pipelines", {})[header] = {
                "state": idx,
                "ii": ps.ii,
                "latency": ps.latency,
                "exit_state": first_state(ps.exit_block),
                "schedule": ps,
                "stages": self._build_pipeline_stages(header, ps, idx),
            }
            m.states.append(
                R.StateCase(idx, f"pipe_{header}", None, [],
                            R.Lit(first_state(ps.exit_block), m.state_width))
            )

        # stream strobes / close / tap valids as continuous assigns
        self._finalize_interface()
        m.meta["done_state"] = done_index
        return m

    def _build_pipeline_stages(self, header: str, ps, state_idx: int):
        """Lower a modulo schedule to per-stage statements over
        stage-suffixed registers.

        A value defined at stage ``d`` and used at stage ``u`` travels
        through pipeline registers ``p_<t>_s{d}..p_<t>_s{u}``; an
        upward-exposed use (loop-carried) reads the architectural register,
        which the defining stage also commits to. This is the conventional
        stage-register structure — the emitted Verilog is synthesizable in
        shape, while its cycle-exact semantics are owned by the cycle model.
        """
        m = self.module
        def_stage: dict[str, int] = {}
        last_use: dict[str, int] = {}
        arch_names: set[str] = set()  # loop-carried: read architecturally
        for i, instr in enumerate(ps.instrs):
            stage = ps.instr_step[i]
            for u in instr.uses():
                if u.name not in def_stage:  # upward-exposed: architectural
                    arch_names.add(u.name)
                    continue
                last_use[u.name] = max(last_use.get(u.name, 0), stage)
            pred = instr.attrs.get("pred")
            if pred is not None and pred.name in def_stage:
                last_use[pred.name] = max(last_use.get(pred.name, 0), stage)
            for d in instr.defs():
                if d.name not in def_stage:
                    def_stage[d.name] = stage
                # later redefinitions (diamond arms) extend the register chain
                last_use[d.name] = max(last_use.get(d.name, stage), stage)

        pipe_regs: list[R.Signal] = []
        for name, d in def_stage.items():
            ty = self.func.scalars[name]
            for k in range(d, last_use.get(name, d) + 1):
                pipe_regs.append(R.Signal(f"p_{name}_s{k}", ty.width,
                                          ty.signed))
        m.regs.extend(pipe_regs)

        defined_so_far: set[str] = set()

        def staged_name(name: str, width: int, signed: bool,
                        stage: int) -> R.Signal:
            # an upward-exposed use (no def earlier in this iteration's
            # program order) reads the architectural register committed by
            # the previous iteration
            if (name in defined_so_far
                    and def_stage.get(name, 99) <= stage
                    <= last_use.get(name, def_stage.get(name, -1))):
                return R.Signal(f"p_{name}_s{stage}", width, signed)
            return R.Signal(f"r_{name}", width, signed)

        def rename_expr(expr: R.Expr, stage: int) -> R.Expr:
            if isinstance(expr, R.Ref):
                n = expr.signal.name
                if n.startswith("r_"):
                    return R.Ref(staged_name(n[2:], expr.signal.width,
                                             expr.signal.signed, stage))
                return expr
            if isinstance(expr, R.UnExpr):
                return R.UnExpr(expr.op, rename_expr(expr.operand, stage),
                                expr.width)
            if isinstance(expr, R.BinExpr):
                return R.BinExpr(expr.op, rename_expr(expr.left, stage),
                                 rename_expr(expr.right, stage), expr.width,
                                 expr.signed_cmp)
            if isinstance(expr, R.CondExpr):
                return R.CondExpr(rename_expr(expr.cond, stage),
                                  rename_expr(expr.iftrue, stage),
                                  rename_expr(expr.iffalse, stage),
                                  expr.width)
            if isinstance(expr, R.SliceExpr):
                return R.SliceExpr(rename_expr(expr.operand, stage),
                                   expr.msb, expr.lsb)
            if isinstance(expr, R.MemRead):
                return R.MemRead(expr.memory, rename_expr(expr.index, stage),
                                 expr.width)
            return expr

        def rename_stmt(stmt: R.Stmt, stage: int) -> R.Stmt:
            if isinstance(stmt, (R.BlockingAssign, R.RegAssign)):
                target = stmt.target
                if target.name.startswith("r_") and target.name[2:] in def_stage:
                    # defs always write their stage register (never the
                    # architectural one; carried values get an explicit
                    # commit below)
                    target = R.Signal(f"p_{target.name[2:]}_s{stage}",
                                      target.width, target.signed)
                new = type(stmt)(target, rename_expr(stmt.expr, stage))
                return new
            if isinstance(stmt, R.MemWrite):
                return R.MemWrite(stmt.memory,
                                  rename_expr(stmt.index, stage),
                                  rename_expr(stmt.value, stage))
            if isinstance(stmt, R.If):
                return R.If(rename_expr(stmt.cond, stage),
                            [rename_stmt(s, stage) for s in stmt.then],
                            [rename_stmt(s, stage) for s in stmt.otherwise])
            return stmt

        stages: list[list[R.Stmt]] = [[] for _ in range(ps.latency)]
        for i, instr in enumerate(ps.instrs):
            stage = ps.instr_step[i]
            # lower with the sequential path, then rename operands/dests to
            # their stage-registered versions
            stmts = self._instr_stmts(instr, state_idx)
            renamed = [rename_stmt(s, stage) for s in stmts]
            pred = instr.attrs.get("pred")
            if pred is not None and instr.op != OpKind.STREAM_WRITE:
                guard = R.Ref(staged_name(pred.name, pred.ty.width,
                                          pred.ty.signed, stage))
                renamed = [R.If(guard, renamed, [])]
            defined_so_far.update(d.name for d in instr.defs())
            stages[stage].extend(renamed)
        # shift chains
        for name, d in def_stage.items():
            ty = self.func.scalars[name]
            for k in range(d, last_use.get(name, d)):
                stages[k + 1 if k + 1 < ps.latency else ps.latency - 1].append(
                    R.RegAssign(
                        R.Signal(f"p_{name}_s{k + 1}", ty.width, ty.signed),
                        R.Ref(R.Signal(f"p_{name}_s{k}", ty.width, ty.signed)),
                    )
                )
        # loop-carried values commit to the architectural register at their
        # defining stage, so the next initiation's upward-exposed read works
        for name in sorted(arch_names & set(def_stage)):
            ty = self.func.scalars[name]
            d = def_stage[name]
            stages[d].append(
                R.RegAssign(
                    self._reg(name, ty),
                    R.Ref(R.Signal(f"p_{name}_s{d}", ty.width, ty.signed)),
                )
            )
        return stages

    def _finalize_interface(self) -> None:
        m = self.module

        def state_eq(idx: int) -> R.Expr:
            return R.BinExpr(
                "==",
                R.Ref(R.Signal("state", m.state_width)),
                R.Lit(idx, m.state_width),
                1,
            )

        for ports in self.streams.values():
            terms: list[R.Expr] = []
            for idx, gate in ports.drivers:
                sc = next(s for s in m.states if s.index == idx)
                e: R.Expr = state_eq(idx)
                if sc.stall is not None:
                    e = R.BinExpr("&&", e, R.UnExpr("!", sc.stall, 1), 1)
                if gate is not None:
                    e = R.BinExpr("&&", e, gate, 1)
                terms.append(e)
            expr: R.Expr = R.Lit(0, 1)
            for t in terms:
                expr = t if expr == R.Lit(0, 1) else R.BinExpr("||", expr, t, 1)
            m.assigns.append((ports.strobe, expr))
            if not ports.is_reader:
                close_terms = [state_eq(i) for i in ports.close_states]
                cexpr: R.Expr = R.Lit(0, 1)
                for t in close_terms:
                    cexpr = t if cexpr == R.Lit(0, 1) else R.BinExpr(
                        "||", cexpr, t, 1
                    )
                m.assigns.append((ports.flag_b, cexpr))
                m.assigns.append(
                    (ports.data,
                     R.Ref(R.Signal(f"{ports.name}_data_r", ports.data.width)))
                )
                m.regs.append(R.Signal(f"{ports.name}_data_r", ports.data.width))
        for channel, states in m.meta.get("tap_states", {}).items():
            terms = [state_eq(i) for i in states]
            expr = terms[0]
            for t in terms[1:]:
                expr = R.BinExpr("||", expr, t, 1)
            width = next(
                p.signal.width for p in m.ports
                if p.signal.name == f"tap_{channel}_data"
            )
            m.assigns.append(
                (R.Signal(f"tap_{channel}_valid", 1), expr)
            )
            m.assigns.append(
                (R.Signal(f"tap_{channel}_data", width),
                 R.Ref(R.Signal(f"tap_{channel}_r", width)))
            )
            m.regs.append(R.Signal(f"tap_{channel}_r", width))
        for channel, states in m.meta.get("tapin_states", {}).items():
            terms = [state_eq(i) for i in states]
            expr = terms[0]
            for t in terms[1:]:
                expr = R.BinExpr("||", expr, t, 1)
            m.assigns.append(
                (R.Signal(f"tapin_{channel}_re", 1), expr)
            )


def _san(name: str) -> str:
    return name.replace("-", "_").replace(".", "_")


def _stream_directions(func) -> tuple[set[str], set[str]]:
    reads: set[str] = set()
    writes: set[str] = set()
    for instr in func.instructions():
        if instr.op == OpKind.STREAM_READ:
            reads.add(instr.attrs["stream"])
        elif instr.op in (OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE):
            writes.add(instr.attrs["stream"])
    return reads, writes


def generate_rtl(cp: CompiledProcess) -> R.Module:
    """Generate the RTL module for one compiled process."""
    return _Builder(cp).build()
