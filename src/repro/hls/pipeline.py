"""Loop pipelining: if-conversion and modulo scheduling.

A loop marked ``#pragma CO PIPELINE`` is flattened into a single linear
iteration body (simple ``if``/``else`` diamonds inside the body are
predicated) and modulo-scheduled. The initiation interval (the paper's
*rate*) is the maximum of:

* resource MII — ``ceil(accesses / ports)`` per block RAM and per stream
  endpoint per iteration, and
* **predicated-stream serialization** — ``1 + (number of predicated stream
  operations)``. A stream handshake guarded by a condition computed inside
  the iteration cannot overlap the next initiation: the handshake's stall
  behaviour is unknown until the predicate resolves, so the control logic
  serializes around it. This models the behaviour the paper measured for
  Impulse-C, where adding the (conditional) assertion-failure send to a
  pipelined body degraded the rate from 1 to 2 even though the failure
  stream was otherwise idle (Section 5.4: "This overhead comes from adding
  a streaming communication call").

Additionally a predicated stream op must sit in a stage strictly after the
stage computing its predicate (no chaining a handshake enable off fresh
logic) — this produces the paper's +1 pipeline-latency overhead for
unoptimized in-pipeline assertions.

The *latency* is the number of pipeline stages. Loop-carried scalar
recurrences are honoured (``II`` grows until the recurrence fits);
cross-iteration array dependences are the programmer's responsibility, as
in Impulse-C, where the PIPELINE pragma asserts their absence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.frontend.ctypes_ import U1
from repro.hls.constraints import ScheduleConfig
from repro.hls.depgraph import build_depgraph, stream_key
from repro.ir.cfg import CFG, Loop
from repro.ir.function import IRFunction
from repro.ir.instr import BasicBlock, Branch, Instr, Jump
from repro.ir.ops import OpKind
from repro.ir.values import Temp

_STREAM_OPS = (OpKind.STREAM_READ, OpKind.STREAM_WRITE,
               OpKind.STREAM_CLOSE, OpKind.TAP_READ)
_MEM_OPS = (OpKind.LOAD, OpKind.STORE)
_REGISTERED_RESULT = {"mult", "divide", "exthdl"}


@dataclass
class PipelineSchedule:
    """Modulo schedule of one pipelined loop."""

    header: str
    exit_block: str
    ok: Temp | None                    # iteration-continue condition
    instrs: list[Instr] = field(default_factory=list)
    instr_step: dict[int, int] = field(default_factory=dict)
    instr_depth: dict[int, int] = field(default_factory=dict)
    ii: int = 1
    latency: int = 1                   # pipeline depth in stages

    @property
    def rate(self) -> int:
        """The paper's 'rate': cycles per loop iteration in steady state."""
        return self.ii


# ---- if-conversion ------------------------------------------------------------


def linearize_loop(
    func: IRFunction, cfg_graph: CFG, loop: Loop
) -> tuple[list[Instr], Temp | None, str]:
    """Flatten the loop into a predicated straight-line iteration body.

    Returns (instrs, ok_temp, exit_block). The header's branch condition
    becomes ``ok``; all body instructions are predicated on it (``while``
    semantics: the body does not execute on the exit iteration). Simple
    if/else diamonds inside the body are predicated with conjunctions.
    """
    header = func.blocks[loop.header]
    if not isinstance(header.term, Branch):
        raise SchedulingError(
            f"{func.name}/{loop.header}: pipelined loop header must be a branch", code="RPR-H101")
    t, f = header.term.iftrue, header.term.iffalse
    if t in loop.body and f not in loop.body:
        body_entry, exit_block = t, f
    elif f in loop.body and t not in loop.body:
        body_entry, exit_block = f, t
    else:
        raise SchedulingError(
            f"{func.name}/{loop.header}: cannot identify loop exit edge", code="RPR-H102")
    cond = header.term.cond
    ok = cond if isinstance(cond, Temp) else None

    out: list[Instr] = [i.copy() for i in header.instrs]

    def conj(a: Temp | None, b: Temp | None) -> Temp | None:
        if a is None:
            return b
        if b is None:
            return a
        dest = func.new_temp(U1, "p")
        instr = Instr(OpKind.AND, [dest], [a, b])
        out.append(instr)
        return dest

    def negate(p: Temp) -> Temp:
        dest = func.new_temp(U1, "np")
        out.append(Instr(OpKind.LNOT, [dest], [p]))
        return dest

    def is_join(name: str) -> bool:
        preds_in_loop = [p for p in cfg_graph.predecessors(name) if p in loop.body]
        return len(preds_in_loop) > 1

    def emit_block(name: str, pred: Temp | None) -> str | None:
        """Emit one block under ``pred``; return the block control continues
        at (None when the latch back to the header is reached)."""
        block = func.blocks[name]
        for instr in block.instrs:
            copy = instr.copy()
            if pred is not None:
                copy.attrs["pred"] = pred
                # The loop guard squashes in-flight work on the exit
                # iteration; it is known combinationally at stage 0 and does
                # not serialize stream handshakes the way an intra-iteration
                # condition does.
                copy.attrs["pred_is_guard"] = pred == ok
            out.append(copy)
        term = block.term
        if isinstance(term, Jump):
            return None if term.target == loop.header else term.target
        if isinstance(term, Branch):
            bt, bf = term.iftrue, term.iffalse
            if bt not in loop.body or bf not in loop.body:
                raise SchedulingError(
                    f"{func.name}/{name}: control flow leaving a pipelined "
                    "loop body (break/return) is not pipelinable", code="RPR-H103")
            c = term.cond
            if not isinstance(c, Temp):
                raise SchedulingError(f"{func.name}/{name}: non-temp branch cond", code="RPR-H104")
            join_t = walk_arm(bt, lambda: conj(pred, c))
            join_f = walk_arm(bf, lambda: conj(pred, negate(c)))
            if join_t is not None and join_f is not None and join_t != join_f:
                raise SchedulingError(
                    f"{func.name}/{name}: irreducible diamond in pipelined loop", code="RPR-H105")
            return join_t if join_t is not None else join_f
        raise SchedulingError(
            f"{func.name}/{name}: unsupported terminator in pipelined loop", code="RPR-H106")

    def walk_arm(start: str, make_pred) -> str | None:
        """Emit one arm of a diamond until its join (returned, not emitted)
        or the latch (None). A join as the immediate target means the arm is
        empty; no predicate is materialized for it."""
        if is_join(start):
            return start
        pred = make_pred()
        name: str | None = start
        guard = 0
        while name is not None and not is_join(name):
            name = emit_block(name, pred)
            guard += 1
            if guard > len(func.blocks) * 4:
                raise SchedulingError(
                    f"{func.name}/{loop.header}: non-converging diamond arm", code="RPR-H107")
        return name

    # main linear walk from the body entry under predicate ``ok``
    name: str | None = body_entry
    guard = 0
    while name is not None:
        name = emit_block(name, ok)
        guard += 1
        if guard > len(func.blocks) * 4:
            raise SchedulingError(
                f"{func.name}/{loop.header}: pipelined loop body does not "
                "converge to the latch (irreducible or nested loop?)", code="RPR-H108")
    return out, ok, exit_block


# ---- modulo scheduling -----------------------------------------------------------


def _resource_mii(instrs: list[Instr], cfg: ScheduleConfig) -> int:
    mem: dict[str, int] = {}
    stream: dict[str, int] = {}
    predicated_streams = 0
    for instr in instrs:
        if instr.op in _MEM_OPS:
            mem[instr.attrs["array"]] = mem.get(instr.attrs["array"], 0) + 1
        if instr.op in _STREAM_OPS:
            key = stream_key(instr)
            stream[key] = stream.get(key, 0) + 1
            if (instr.attrs.get("pred") is not None
                    and not instr.attrs.get("pred_is_guard")):
                predicated_streams += 1
    mii = 1
    for array, uses in mem.items():
        ports = cfg.ports_for(array)
        mii = max(mii, -(-uses // ports))
    for _s, uses in stream.items():
        mii = max(mii, -(-uses // cfg.stream_ops_per_step))
    mii = max(mii, 1 + predicated_streams)
    return mii


def _try_modulo_schedule(
    instrs: list[Instr], ii: int, cfg: ScheduleConfig
) -> tuple[dict[int, int], dict[int, int]] | None:
    """Attempt placement at initiation interval ``ii``; None on failure."""
    fake = BasicBlock("pipe", instrs=instrs)
    g = build_depgraph(fake)

    # extra edges: predicate definition -> predicated op. A predicated
    # stream op must be a full stage after the predicate (delay 1).
    def_index: dict[str, int] = {}
    for i, instr in enumerate(instrs):
        for d in instr.defs():
            def_index.setdefault(d.name, i)
    for i, instr in enumerate(instrs):
        pred = instr.attrs.get("pred")
        if pred is not None and pred.name in def_index:
            # A stream handshake may not share a stage with the logic that
            # computes its enable (guard included): the cycle model resolves
            # readiness before executing a stage, so predicates of stream
            # ops must come from an earlier stage's registers.
            delay = 1 if instr.op in _STREAM_OPS else 0
            g.add_edge(def_index[pred.name], i, delay)

    n = len(instrs)
    step: list[int] = [0] * n
    depth: list[int] = [0] * n
    mem_slot: dict[tuple[int, str], int] = {}
    stream_slot: dict[tuple[int, str], int] = {}

    for i, instr in enumerate(instrs):
        info = instr.info
        est = 0
        for j, delay in g.preds[i]:
            est = max(est, step[j] + delay)
        placed = False
        for t in range(est, est + ii * 8 + 8):
            depth_in = 0
            for j, _d in g.preds[i]:
                if step[j] == t:
                    depth_in = max(depth_in, depth[j])
            my_depth = depth_in + info.levels
            if info.levels and my_depth > cfg.max_chain_levels and depth_in > 0:
                continue
            slot = t % ii
            if instr.op in _MEM_OPS:
                array = instr.attrs["array"]
                if mem_slot.get((slot, array), 0) >= cfg.ports_for(array):
                    continue
            if instr.op in _STREAM_OPS:
                stream = stream_key(instr)
                if stream_slot.get((slot, stream), 0) >= cfg.stream_ops_per_step:
                    continue
            step[i] = t
            depth[i] = (min(my_depth, cfg.max_chain_levels)
                        if info.levels else depth_in)
            if instr.op in _MEM_OPS:
                key = (slot, instr.attrs["array"])
                mem_slot[key] = mem_slot.get(key, 0) + 1
            if instr.op in _STREAM_OPS:
                key = (slot, stream_key(instr))
                stream_slot[key] = stream_slot.get(key, 0) + 1
            placed = True
            break
        if not placed:
            return None

    # loop-carried scalar recurrences: a value defined at step d and used
    # (upward-exposed) at step u by the next iteration needs u + II > d.
    defined: set[str] = set()
    first_use: dict[str, int] = {}
    for i, instr in enumerate(instrs):
        for u in instr.uses():
            if u.name not in defined and u.name not in first_use:
                first_use[u.name] = step[i]
        for d in instr.defs():
            defined.add(d.name)
    for i, instr in enumerate(instrs):
        for d in instr.defs():
            if d.name in first_use:
                lat = instr.info.latency if instr.info.resource in _REGISTERED_RESULT else 0
                if first_use[d.name] + ii <= step[i] + lat:
                    return None
    return {i: step[i] for i in range(n)}, {i: depth[i] for i in range(n)}


def schedule_pipelined_loop(
    func: IRFunction, cfg_graph: CFG, loop: Loop, cfg: ScheduleConfig
) -> PipelineSchedule:
    instrs, ok, exit_block = linearize_loop(func, cfg_graph, loop)
    mii = _resource_mii(instrs, cfg)
    for ii in range(mii, mii + 64):
        result = _try_modulo_schedule(instrs, ii, cfg)
        if result is not None:
            placement, depths = result
            latency = 1
            for i, instr in enumerate(instrs):
                extra = (
                    instr.info.latency
                    if instr.info.resource in _REGISTERED_RESULT
                    else 0
                )
                latency = max(latency, placement[i] + 1 + extra)
            ps = PipelineSchedule(
                header=loop.header,
                exit_block=exit_block,
                ok=ok,
                instrs=instrs,
                instr_step=placement,
                instr_depth=depths,
                ii=ii,
                latency=latency,
            )
            return ps
    raise SchedulingError(
        f"{func.name}/{loop.header}: no feasible initiation interval up to "
        f"{mii + 63}", code="RPR-H109")
